#!/usr/bin/env python3
"""Watch the conflict detector at work: a loop with genuine cross-iteration
memory dependences that speculation keeps getting wrong — and repairing.

Every iteration read-modify-writes a shared accumulator behind an
unpredictable branch, so younger threadlets regularly consume stale values.
Algorithm 1 (paper section 4.2) catches each violation, squashes the
offending threadlet (restarting it from its checkpoint) and the final
memory state is bit-exact with sequential execution.

Run:  python examples/conflict_recovery.py
"""

import random

from repro.compiler import compile_frog
from repro.uarch import BaselineCore, LoopFrogCore, SparseMemory

SOURCE = """
fn main(data: ptr<int>, noise: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        var v: int = data[0];
        if (noise[i] % 3 == 0) {
            data[0] = v + 2;
        } else {
            data[0] = v + 1;
        }
    }
}
"""

DATA, NOISE, N = 0x1000, 0x4000, 200


def main() -> None:
    program = compile_frog(SOURCE).program
    rng = random.Random(11)
    noise = [rng.randrange(1 << 20) for _ in range(N)]
    expected = sum(2 if v % 3 == 0 else 1 for v in noise)

    def fresh():
        memory = SparseMemory()
        memory.store_int_array(NOISE, noise)
        return memory

    regs = {"r1": DATA, "r2": NOISE, "r3": N}
    base = BaselineCore().run(program, fresh(), dict(regs))
    memory = fresh()
    frog = LoopFrogCore().run(program, memory, dict(regs))

    got = memory.load_int(DATA)
    print(f"sequential result: {expected}, speculative result: {got}")
    assert got == expected, "speculation must never change semantics"

    s = frog.stats
    print(f"baseline {base.stats.cycles} cycles, LoopFrog {s.cycles} cycles "
          f"({base.stats.cycles / s.cycles:.2f}x)")
    print(f"threadlets spawned:   {s.threadlets_spawned}")
    print(f"conflict squashes:    {s.squash_conflicts}")
    print(f"failed instructions:  {s.failed_spec_instructions} "
          f"(committed speculatively, then thrown away)")
    print()
    print("every stale read was caught by the conflict detector's")
    print("read/write-set check (algorithm 1) and repaired by a")
    print("checkpoint restart — correctness never depends on speculation")
    print("being right.")


if __name__ == "__main__":
    main()
