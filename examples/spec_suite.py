#!/usr/bin/env python3
"""Reproduce the paper's headline result (figure 6): whole-program
speedups across the SPEC CPU 2017 stand-in suite.

Run:  python examples/spec_suite.py [spec2017|spec2006]
"""

import sys

from repro.analysis import format_bars
from repro.experiments import run_suite, suite_geomean


def main() -> None:
    suite_name = sys.argv[1] if len(sys.argv) > 1 else "spec2017"
    print(f"running {suite_name} (baseline + LoopFrog per benchmark)...")
    runs = run_suite(suite_name)

    items = [
        (run.name, run.speedup_percent)
        for run in sorted(runs, key=lambda r: -r.speedup)
    ]
    geomean = (suite_geomean(runs) - 1) * 100
    print()
    print(format_bars(
        items,
        title=f"whole-program speedup, {suite_name} "
              f"(geomean {geomean:+.1f}%; paper: +9.5% on 2017, +9.2% on 2006)",
    ))
    print()
    deselected = [r.name for r in runs if r.deselected]
    if deselected:
        print("dynamically deselected (unprofitable loops, hints ignored):",
              ", ".join(deselected))
    profitable = [r for r in runs if r.speedup_percent > 1.0]
    print(f"accelerated >1%: {len(profitable)} of {len(runs)}")


if __name__ == "__main__":
    main()
