#!/usr/bin/env python3
"""Quickstart: compile a Frog kernel with LoopFrog hints and race the
baseline core against the LoopFrog core.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_frog
from repro.uarch import BaselineCore, LoopFrogCore, SparseMemory

# A classic LoopFrog target: independent iterations that write memory,
# marked for parallelization with #pragma loopfrog (paper section 5.1).
SOURCE = """
fn main(dst: ptr<int>, src: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        var x: int = src[i];
        if (x > 0) {
            dst[i] = x * x + 3;
        } else {
            dst[i] = 1 - x;
        }
    }
}
"""

DST, SRC, N = 0x1000, 0x8000, 256


def fresh_memory() -> SparseMemory:
    memory = SparseMemory()
    memory.store_int_array(SRC, [(7 * i) % 23 - 5 for i in range(N)])
    return memory


def main() -> None:
    result = compile_frog(SOURCE)
    print("compiled", result.program.name, f"({len(result.program)} instructions)")
    for report in result.hint_reports:
        status = "annotated" if report.annotated else f"rejected: {report.message}"
        print(f"  loop at {report.header}: {status}")
    print()
    print(result.program.disassemble())
    print()

    regs = {"r1": DST, "r2": SRC, "r3": N}
    base = BaselineCore().run(result.program, fresh_memory(), dict(regs))
    frog_memory = fresh_memory()
    frog = LoopFrogCore().run(result.program, frog_memory, dict(regs))

    # Speculation never changes semantics (paper section 3.2).
    expected = [x * x + 3 if x > 0 else 1 - x
                for x in ((7 * i) % 23 - 5 for i in range(N))]
    assert frog_memory.load_int_array(DST, N) == expected

    print(f"baseline: {base.stats.cycles} cycles, IPC {base.stats.ipc:.2f}")
    print(f"LoopFrog: {frog.stats.cycles} cycles, "
          f"IPC {frog.stats.total_committed_ipc:.2f}")
    print(f"speedup:  {base.stats.cycles / frog.stats.cycles:.2f}x")
    print()
    print(f"threadlets spawned/committed/squashed: "
          f"{frog.stats.threadlets_spawned}/"
          f"{frog.stats.threadlets_committed}/"
          f"{frog.stats.threadlets_squashed}")
    print(f">=2 threadlets active {frog.stats.threadlet_utilization(2):.0%} "
          f"of cycles")


if __name__ == "__main__":
    main()
