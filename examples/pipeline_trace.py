#!/usr/bin/env python3
"""Visualise threadlets in the pipeline: a cycle-accurate trace diagram.

Each row is one dynamic instruction (T<slot>.e<epoch> prefix); you can see
the main thread spawn threadlets at `detach`, the four fetch streams
interleave, and epochs commit in order — the paper's figure-2(c) "window
split across multiple quasi-independent regions", live.

Run:  python examples/pipeline_trace.py
"""

from repro.compiler import compile_frog
from repro.uarch import SparseMemory, default_machine
from repro.uarch.core import Engine
from repro.uarch.trace import Tracer

SOURCE = """
fn main(dst: ptr<int>, src: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        var x: int = src[i];
        dst[i] = x * x - x;
    }
}
"""


def main() -> None:
    program = compile_frog(SOURCE).program
    memory = SparseMemory()
    memory.store_int_array(0x8000, list(range(16)))
    engine = Engine(default_machine(), program, memory,
                    {"r1": 0x1000, "r2": 0x8000, "r3": 16})
    tracer = Tracer.attach(engine)
    engine.run()

    print("threadlet events:")
    print(tracer.render_events())
    print()
    print(tracer.render_pipeline(first=0, count=40, width=72))
    print()
    latencies = tracer.stage_latencies()
    print("mean stage gaps (cycles): "
          + ", ".join(f"{k}={v:.1f}" for k, v in latencies.items()))
    print(f"total: {engine.stats.cycles} cycles, "
          f"{engine.stats.threadlets_spawned} threadlets spawned")


if __name__ == "__main__":
    main()
