#!/usr/bin/env python3
"""End-to-end walkthrough: write a Frog kernel, inspect what the compiler
did with it, and understand why a loop was (or wasn't) annotated.

Run:  python examples/write_your_own_kernel.py
"""

from repro.compiler import CompileOptions, compile_frog
from repro.uarch import LoopFrogCore, SparseMemory

GOOD = """
fn main(out: ptr<float>, xs: ptr<float>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        var x: float = xs[i];
        out[i] = sqrt(x * x + 1.0) * 0.5;
    }
}
"""

# A register reduction: `s` is defined in the body and consumed by later
# iterations, so there is NO legal detach/reattach placement (paper
# section 3: "no register dataflow is permitted between the body and the
# continuation").
BAD = """
fn main(xs: ptr<float>, n: int) -> float {
    var s: float = 0.0;
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        s = s + xs[i];
    }
    return s;
}
"""

# The fix the paper's compiler story suggests: carry the reduction through
# memory instead (the conflict detector handles the rest at run time).
FIXED = """
fn main(xs: ptr<float>, partial: ptr<float>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        partial[i] = xs[i] * 2.0;
    }
}
"""


def describe(label: str, source: str) -> None:
    result = compile_frog(source)
    print(f"--- {label} ---")
    for report in result.hint_reports:
        if report.annotated:
            print(f"  annotated; region {report.region}, "
                  f"body blocks {report.body_blocks}")
        else:
            print(f"  rejected: {report.message}")
    print()


def main() -> None:
    describe("independent loop (annotated)", GOOD)
    describe("register reduction (rejected)", BAD)
    describe("reduction through memory (annotated)", FIXED)

    # Run the good kernel to completion and show the speculation summary.
    result = compile_frog(GOOD)
    memory = SparseMemory()
    n = 128
    memory.store_float_array(0x8000, [0.25 * i for i in range(n)])
    sim = LoopFrogCore().run(
        result.program, memory, {"r1": 0x1000, "r2": 0x8000, "r3": n}
    )
    print(f"ran {sim.instructions} instructions in {sim.cycles} cycles "
          f"(IPC {sim.ipc:.2f})")
    print(f"epochs committed: {sim.stats.threadlets_committed}, "
          f"mean packing factor {sim.stats.mean_packing_factor:.1f}x")


if __name__ == "__main__":
    main()
