#!/usr/bin/env python3
"""Pointer-chasing workload (omnetpp-style): linked-list traversal with
data-dependent branches.

The list-walk (`node = next[node]`) is a register loop-carried dependence,
so the compiler puts it in the *continuation*; the per-node work becomes
the parallel *body* (paper section 3: "linked-list traversals" are
canonical header/continuation content).  Threadlets leapfrog down the list
while older nodes are still being processed.

Run:  python examples/pointer_chase.py
"""

import random

from repro.compiler import compile_frog
from repro.uarch import BaselineCore, LoopFrogCore, SparseMemory

SOURCE = """
fn main(next: ptr<int>, data: ptr<int>, out: ptr<int>, node: int) {
    var k: int = 0;
    #pragma loopfrog
    while (node != 0) {
        var v: int = data[node];
        if (v % 3 == 0) {
            out[k] = v * 5 + 1;
        } else {
            if (v % 3 == 1) { out[k] = v + 7; }
            else { out[k] = (v >> 1) - 2; }
        }
        k = k + 1;
        node = next[node];
    }
}
"""

NEXT, DATA, OUT = 0x10000, 0x40000, 0x80000
NODES, SPREAD = 300, 6000


def build_list(seed: int = 42):
    """A linked list scattered over a wide address range (cache-hostile)."""
    rng = random.Random(seed)
    ids = rng.sample(range(1, SPREAD), NODES)
    memory = SparseMemory()
    values = {}
    for pos, node in enumerate(ids):
        nxt = ids[pos + 1] if pos + 1 < NODES else 0
        memory.store_int(NEXT + 8 * node, nxt)
        values[node] = rng.randrange(1 << 30)
        memory.store_int(DATA + 8 * node, values[node])
    return memory, ids, values


def expected_output(ids, values):
    out = []
    for node in ids:
        v = values[node]
        if v % 3 == 0:
            out.append(v * 5 + 1)
        elif v % 3 == 1:
            out.append(v + 7)
        else:
            out.append((v >> 1) - 2)
    return out


def main() -> None:
    program = compile_frog(SOURCE).program
    regs = {"r1": NEXT, "r2": DATA, "r3": OUT, "r4": 0}

    memory, ids, values = build_list()
    regs["r4"] = ids[0]
    base = BaselineCore().run(program, memory, dict(regs))

    memory, ids, values = build_list()
    frog = LoopFrogCore().run(program, memory, dict(regs))
    assert memory.load_int_array(OUT, NODES) == expected_output(ids, values)

    print(f"walked {NODES} nodes scattered over {SPREAD * 8 // 1024} KiB")
    print(f"baseline: {base.stats.cycles:6d} cycles "
          f"(branch MPKI {base.stats.branch_mpki:.1f}, "
          f"L1D miss rate {base.stats.l1d_miss_rate:.0%})")
    print(f"LoopFrog: {frog.stats.cycles:6d} cycles "
          f"-> {base.stats.cycles / frog.stats.cycles:.2f}x")
    print()
    print("why it wins: each threadlet runs the walk for a different node,")
    print("so one node's mispredicted branches and cache misses no longer")
    print("stall the others (paper sections 6.4.1).")


if __name__ == "__main__":
    main()
