"""Section 6.3: per-loop speedup distribution."""

from repro.experiments import run_loops_report


def test_loop_speedup_distribution(bench_once):
    result = bench_once(run_loops_report)
    # Paper: loop speedups up to 2.9x; 6 loops over 2x; 44 loops >= +20%.
    assert result.count >= 30
    assert result.max_speedup > 1.8
    assert result.loops_over(1.2) >= 10
    assert 1.05 < result.geomean < 2.0
