"""Table 2: sources of performance gains."""

from repro.experiments import run_table2
from repro.workloads import (
    CATEGORY_BRANCH_PREFETCH,
    CATEGORY_CONTROL,
    CATEGORY_DATA_PREFETCH,
    CATEGORY_DEPCHAIN,
    CATEGORY_MEMORY,
)


def test_table2_gain_sources(bench_once):
    result = bench_once(run_table2)
    # All five of the paper's categories are populated.
    for category in (CATEGORY_MEMORY, CATEGORY_CONTROL, CATEGORY_DEPCHAIN,
                     CATEGORY_BRANCH_PREFETCH):
        assert result.loops_in(category) >= 1, category
    assert result.loops_in(CATEGORY_DATA_PREFETCH) >= 1
    # True parallelism carries most of the loop count, as in the paper.
    true_parallel = (
        result.loops_in(CATEGORY_MEMORY)
        + result.loops_in(CATEGORY_CONTROL)
        + result.loops_in(CATEGORY_DEPCHAIN)
    )
    prefetch = (
        result.loops_in(CATEGORY_BRANCH_PREFETCH)
        + result.loops_in(CATEGORY_DATA_PREFETCH)
    )
    assert true_parallel > prefetch
    # The heuristic classification matches the engineered behaviours.
    assert result.classification_agreement > 0.8
