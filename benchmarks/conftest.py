"""Shared configuration for the benchmark harness.

Each ``benchmarks/test_*.py`` regenerates one of the paper's figures or
tables: the benchmark body runs the full experiment and the rendered
rows/series are printed so the output can be compared against the paper
(see EXPERIMENTS.md for the recorded comparison).

Experiments are heavyweight (whole-suite simulations), so each benchmark
runs one round.
"""

import pytest


@pytest.fixture
def bench_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing and
    print its rendered output."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        print()
        print(result.render())
        return result

    return runner
