"""Section 6.6: SSB associativity and victim buffer."""

from repro.experiments import run_assoc_sensitivity


def test_assoc_sensitivity(bench_once):
    result = bench_once(run_assoc_sensitivity)
    # Paper: the associativity hit lands almost exclusively on specific
    # benchmarks (omnetpp -6.9%, imagick -8.8%), and an 8-entry victim
    # buffer recovers most of it.  Our aliasing phase lives in imagick.
    victim = result.worst_hit("4-way")
    assert victim == "imagick"
    full = result.benchmark("full (headline)", victim)
    limited = result.benchmark("4-way", victim)
    recovered = result.benchmark("4-way + 8-entry victim", victim)
    eight = result.benchmark("8-way", victim)
    assert limited < full - 3.0
    assert recovered > limited + 1.5
    assert eight > limited
    # The rest of the suite is essentially unaffected (geomean barely moves).
    assert abs(result.geomean("4-way") - result.geomean("full (headline)")) < 2.0
