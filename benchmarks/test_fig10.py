"""Figure 10: sensitivity to conflict granule size."""

from repro.experiments import run_fig10


def test_fig10_granule_sweep(bench_once):
    result = bench_once(run_fig10)
    base = result.speedup_at(4)
    # Paper: 1-4 B equivalent; >=16 B costs measurable speedup via false
    # sharing; 8 B hurts only x264 (~5%).
    assert abs(result.speedup_at(1) - base) < 1.5
    assert abs(result.speedup_at(2) - base) < 1.5
    assert result.speedup_at(16) < base
    assert result.speedup_at(32) < base
    # Paper: 8-byte granules slow only x264.  Check x264 drops and that
    # it is the worst-affected benchmark at 8 B.
    drops = {
        name: result.benchmark_at(4, name) - result.benchmark_at(8, name)
        for name in result.per_benchmark[4]
    }
    assert drops["x264"] > 0.25
    assert max(drops, key=drops.get) == "x264"
