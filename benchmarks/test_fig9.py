"""Figure 9: sensitivity to SSB size."""

from repro.experiments import run_fig9


def test_fig9_ssb_size_sweep(bench_once):
    result = bench_once(run_fig9)
    full = result.speedup_at(8192)
    # Paper: 32 KiB changes <0.1pp; 2 KiB costs 0.4pp; 512 B still +6.2%.
    assert abs(result.speedup_at(32768) - full) < 2.0
    assert result.speedup_at(2048) <= full + 0.5
    assert result.speedup_at(512) > 0.4 * full
