"""Design-choice ablations: threadlet count and Bloom-filter conflict sets."""

from repro.experiments import run_bloom_ablation, run_threadlet_sweep


def test_threadlet_count_sweep(bench_once):
    result = bench_once(run_threadlet_sweep)
    # Two contexts already capture part of the gain; four (the paper's
    # choice) captures most of it; eight adds little on a shared 8-wide
    # back end.
    two, four, eight = (result.speedup_at(n) for n in (2, 4, 8))
    assert 0 < two < four + 1.0
    assert four > 5.0
    assert eight < four * 1.8


def test_bloom_filter_ablation(bench_once):
    result = bench_once(run_bloom_ablation)
    # The paper argues Bloom false aliasing is a second-order effect
    # (~2% of epochs with a naive design); real filters must not collapse
    # the speedup.
    assert result.bloom_percent > 0.5 * result.exact_percent
    assert abs(result.delta_pp) < 5.0
