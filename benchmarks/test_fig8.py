"""Figure 8: committed IPC decomposition vs baseline."""

from repro.experiments import run_fig8


def test_fig8_commit_decomposition(bench_once):
    result = bench_once(run_fig8)
    # Paper: arch threadlet ~6% slower on average; useful IPC above 1.0x;
    # failed speculation rides along (~31% of baseline IPC on average).
    assert 0.75 < result.mean_arch_ratio <= 1.1
    assert result.mean_useful_ratio > 1.0
    assert result.mean_failed_ratio >= 0.0
