"""Figure 1: IPC and commit utilisation vs front-end width."""

from repro.experiments import run_fig1


def test_fig1_width_sweep(bench_once):
    result = bench_once(run_fig1)
    assert result.ipc_increases_with_width
    assert result.utilization_decreases_with_width
