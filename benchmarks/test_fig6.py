"""Figure 6: whole-program speedups, SPEC CPU 2006 and 2017."""

from repro.experiments import run_fig6


def test_fig6_whole_program_speedups(bench_once):
    result = bench_once(run_fig6)
    # Paper: 9.5% (2017) and 9.2% (2006) geometric means.
    assert 7.0 < result.geomean_2017_percent < 13.0
    assert 7.0 < result.geomean_2006_percent < 15.0
    # Paper: imagick 87%, omnetpp 54%, nab 15%, gcc 12%, xalancbmk 11%.
    assert result.speedup_of("imagick") > 60
    assert result.speedup_of("omnetpp") > 35
    assert result.speedup_of("nab") > 8
    assert result.speedup_of("gcc") > 6
    assert result.speedup_of("xalancbmk") > 6
    # Paper: 34 of 47 benchmarks accelerated by >1% (we have 37 total).
    assert len(result.profitable()) >= 24
