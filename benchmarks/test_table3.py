"""Table 3: comparison with classic TLS/SpMT schemes."""

from repro.experiments import run_table3


def test_table3_scheme_comparison(bench_once):
    result = bench_once(run_table3)
    frog = result.row("LoopFrog")
    ms = result.row("MultiScalar")
    st = result.row("STAMPede")
    # Paper speedups: LoopFrog 1.1x, STAMPede 1.16x, Multiscalar 2.16x —
    # each over its own (very different) baseline.
    assert 1.05 < frog.speedup < 1.2
    assert ms.speedup > 1.3
    assert 0.8 < st.speedup < 2.0
    assert 5 < result.mean_task_size < 10_000
