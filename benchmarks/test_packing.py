"""Section 6.5: iteration-packing ablation."""

from repro.experiments import run_packing_ablation


def test_packing_ablation(bench_once):
    result = bench_once(run_packing_ablation)
    # Paper: +0.9pp from packing, mean factor 2.1x, max 25x.
    assert result.delta_pp > -1.0
    assert result.mean_packing_factor > 1.2
    assert result.max_packing_factor >= 8
    assert result.affected
