"""Section 6.8: area and power overheads."""

from repro.experiments import run_area_overheads


def test_area_overheads(bench_once):
    result = bench_once(run_area_overheads)
    # Paper: ~2% new structures; 12-17% total with SMT; +14% issued
    # instructions; Pollack expectation 6-8% below the achieved speedup.
    assert 1.0 < result.area.new_structures_percent < 3.0
    assert 11.0 < result.area.total_overhead_percent_low < 13.0
    assert 16.0 < result.area.total_overhead_percent_high < 18.0
    assert 0.0 < result.issued_increase_percent < 60.0
    assert 5.0 < result.pollack_low < 7.0
