"""Figure 7: threadlet utilisation over time."""

from repro.experiments import run_fig7, run_suite, in_region_geomean_speedup


def test_fig7_threadlet_utilization(bench_once):
    result = bench_once(run_fig7)
    # Paper: >=2 threadlets active 42% (profitable) / 29% (all);
    # 4 active 23% / 16%.  Shapes, not exact numbers.
    assert 0.10 < result.profitable_at_least_2 < 0.75
    assert 0.05 < result.profitable_all_4 < 0.60
    assert result.overall_at_least_2 > 0.05


def test_in_region_speedup(benchmark):
    # Paper section 6.3: 43% geometric-mean in-region speedup.
    runs = benchmark.pedantic(
        run_suite, args=("spec2017",), rounds=1, iterations=1
    )
    region = (in_region_geomean_speedup(runs) - 1) * 100
    print(f"\nin-region geomean speedup: {region:+.1f}% (paper: +43%)")
    assert region > 15
