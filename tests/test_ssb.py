"""Unit tests for the Speculative State Buffer (paper section 4.1)."""


from repro.uarch.config import LoopFrogConfig
from repro.uarch.memory_state import SparseMemory
from repro.uarch.ssb import SpeculativeStateBuffer, SSBSlice


def make_ssb(**kwargs):
    config = LoopFrogConfig(**kwargs)
    memory = SparseMemory()
    return SpeculativeStateBuffer(config, memory), memory


def test_write_then_read_own_slice():
    ssb, _ = make_ssb()
    assert ssb.write(0, 100, 8, 0xDEADBEEF, writer="w0")
    result = ssb.read(100, 8, older_slots=[], own_slot=0)
    assert result.value == 0xDEADBEEF
    assert result.hit_own_slice
    assert not result.forwarded_from


def test_read_falls_through_to_memory():
    ssb, memory = make_ssb()
    memory.store(200, 8, 42)
    result = ssb.read(200, 8, older_slots=[], own_slot=1)
    assert result.value == 42
    assert not result.hit_own_slice


def test_forwarding_from_older_slice():
    # Older threadlet (slot 0) wrote; younger (slot 1) must see it.
    ssb, _ = make_ssb()
    ssb.write(0, 300, 8, 7, writer="older")
    result = ssb.read(300, 8, older_slots=[0], own_slot=1)
    assert result.value == 7
    assert result.forwarded_from == {0}
    assert "older" in result.writers


def test_younger_slices_are_ignored():
    # A load must never observe values created later in program order
    # (figure 5: younger threadlets ignored).
    ssb, memory = make_ssb()
    memory.store(400, 8, 1)
    ssb.write(2, 400, 8, 99, writer="younger")   # slot 2 is younger
    result = ssb.read(400, 8, older_slots=[], own_slot=1)
    assert result.value == 1


def test_newest_older_value_wins():
    ssb, memory = make_ssb()
    memory.store(500, 8, 1)
    ssb.write(0, 500, 8, 2, writer="t0")
    ssb.write(1, 500, 8, 3, writer="t1")
    # Reader in slot 2; older slots newest-first: [1, 0].
    result = ssb.read(500, 8, older_slots=[1, 0], own_slot=2)
    assert result.value == 3


def test_per_granule_merge_across_slices():
    # Figure 5: each granule independently takes its newest older value.
    ssb, memory = make_ssb(granule_bytes=4)
    memory.store(600, 8, 0)
    ssb.write(0, 600, 4, 0x1111, writer="t0")        # low granule from t0
    ssb.write(1, 604, 4, 0x2222, writer="t1")        # high granule from t1
    result = ssb.read(600, 8, older_slots=[1, 0], own_slot=2)
    assert result.value == (0x2222 << 32) | 0x1111


def test_own_write_beats_older_writes():
    ssb, _ = make_ssb()
    ssb.write(0, 700, 8, 5, writer="old")
    ssb.write(1, 700, 8, 9, writer="own")
    result = ssb.read(700, 8, older_slots=[0], own_slot=1)
    assert result.value == 9
    assert result.hit_own_slice


def test_squash_bulk_invalidates():
    ssb, memory = make_ssb()
    memory.store(800, 8, 1)
    ssb.write(1, 800, 8, 99, writer="t1")
    ssb.squash(1)
    result = ssb.read(800, 8, older_slots=[1], own_slot=2)
    assert result.value == 1
    assert ssb.occupancy_bytes(1) == 0


def test_commit_flushes_to_memory():
    ssb, memory = make_ssb()
    ssb.write(0, 900, 8, 77, writer="t0")
    lines = ssb.commit(0)
    assert lines >= 1
    assert memory.load(900, 8) == 77
    assert ssb.occupancy_bytes(0) == 0


def test_capacity_limit_rejects_writes():
    # 2 KiB slice / 32-byte lines = 64 lines per slice.
    ssb, _ = make_ssb()
    lines = ssb.config.slice_lines
    for i in range(lines):
        assert ssb.write(0, i * 64, 8, i, writer=None)
    # One more distinct line must be rejected (write cannot be dropped).
    assert not ssb.write(0, lines * 64, 8, 1, writer=None)
    # But hitting an existing line still works.
    assert ssb.write(0, 0, 8, 123, writer=None)


def test_associativity_conflict_and_victim_buffer():
    config_kwargs = dict(ssb_associativity=2, ssb_total_bytes=8 * 1024)
    ssb, _ = make_ssb(**config_kwargs)
    sets = ssb.slice(0).num_sets
    # Three lines mapping to the same set overflow 2 ways.
    addrs = [i * sets * 32 for i in range(3)]
    assert ssb.write(0, addrs[0], 8, 1, writer=None)
    assert ssb.write(0, addrs[1], 8, 2, writer=None)
    assert not ssb.write(0, addrs[2], 8, 3, writer=None)

    ssb2, _ = make_ssb(ssb_victim_entries=4, **config_kwargs)
    for a in addrs:
        assert ssb2.write(0, a, 8, 1, writer=None)


def test_valid_granule_bitmask_tracking():
    config = LoopFrogConfig(granule_bytes=4, ssb_line_bytes=32)
    sl = SSBSlice(0, config)
    sl.write(64, 4, 0xAB, writer=None)
    line_mask = sl.lines[64 // 32]
    assert line_mask == 0b1  # first granule of the line valid
    sl.write(76, 4, 0xCD, writer=None)
    assert sl.lines[64 // 32] == 0b1001  # granule 3 also valid


def test_partial_byte_reads_merge_slice_and_memory():
    ssb, memory = make_ssb()
    memory.store(1000, 8, 0xFFFFFFFFFFFFFFFF)
    ssb.write(0, 1000, 4, 0, writer=None)  # overwrite low half only
    result = ssb.read(1000, 8, older_slots=[], own_slot=0)
    assert result.value == 0xFFFFFFFF00000000


def test_writer_tracking_per_granule():
    ssb, _ = make_ssb(granule_bytes=4)
    ssb.write(0, 2000, 8, 1, writer="storeA")
    result = ssb.read(2000, 8, older_slots=[0], own_slot=1)
    assert result.writers == ["storeA"]
