"""Unit tests for the cache hierarchy timing model."""


from repro.uarch.caches import MemoryHierarchy, _CacheLevel, _StridePrefetcher
from repro.uarch.config import MemoryConfig
from repro.uarch.statistics import SimStats


def hierarchy(**kwargs):
    stats = SimStats()
    return MemoryHierarchy(MemoryConfig(**kwargs), stats), stats


def test_cold_miss_pays_dram_latency():
    h, stats = hierarchy()
    ready = h.access_data(0x100000, cycle=0, is_write=False)
    assert ready >= MemoryConfig().dram_latency
    assert stats.l1d_misses == 1
    assert stats.l2_misses == 1


def test_second_access_hits_l1():
    h, stats = hierarchy()
    first = h.access_data(0x2000, 0, False)
    second = h.access_data(0x2000, first, False)
    assert second == first + MemoryConfig().l1d_latency
    assert stats.l1d_misses == 1


def test_same_line_misses_merge_in_flight():
    h, _ = hierarchy()
    a = h.access_data(0x4000, 0, False)
    b = h.access_data(0x4008, 1, False)  # same 64B line, still in flight
    assert b <= a


def test_lru_eviction():
    config = MemoryConfig()
    level = _CacheLevel("t", size=4 * 64, assoc=2, line=64, latency=1, mshrs=4)
    # Two sets of two ways each; fill one set then overflow it.
    level.insert(0)
    level.insert(2)  # same set as 0 (line_addr % 2)
    level.insert(4)  # evicts line 0 (LRU)
    assert not level.lookup(0)
    assert level.lookup(2)
    assert level.lookup(4)


def test_mshr_limit_delays_misses():
    h, _ = hierarchy(l1d_mshrs=2)
    lines = [i * 0x10000 for i in range(4)]
    times = [h.access_data(a, 0, False) for a in lines]
    # With only 2 MSHRs the 3rd/4th miss must wait for a slot.
    assert times[2] > times[0]
    assert times[3] > times[1]


def test_stride_prefetcher_detects_stride():
    p = _StridePrefetcher(degree=2)
    addrs = [1000 + 64 * i for i in range(5)]
    out = []
    for a in addrs:
        out = p.observe(7, a)
    assert out == [addrs[-1] + 64, addrs[-1] + 128]


def test_stride_prefetcher_resets_on_noise():
    p = _StridePrefetcher(degree=2)
    for a in (0, 64, 128, 192):
        p.observe(7, a)
    assert p.observe(7, 5000) == []


def test_prefetch_hides_latency_for_streaming():
    h, stats = hierarchy()
    # Stream through many lines; later accesses should increasingly hit.
    latencies = []
    cycle = 0
    for i in range(64):
        ready = h.access_data(0x80000 + 64 * i, cycle, False, pc=3)
        latencies.append(ready - cycle)
        cycle = ready
    assert min(latencies[10:]) < latencies[0]


def test_instruction_side_hits_after_fill():
    h, stats = hierarchy()
    first = h.access_instruction(100, 0)
    second = h.access_instruction(101, first)  # same 64B line (pc*4)
    assert second == first + MemoryConfig().l1i_latency
    assert stats.l1i_misses == 1


def test_writes_allocate_lines():
    h, stats = hierarchy()
    h.access_data(0x6000, 0, is_write=True)
    ready = h.access_data(0x6000, 500, is_write=False)
    assert ready == 500 + MemoryConfig().l1d_latency
