"""Tests for the perf-regression gate (tools/bench_compare.py).

ISSUE acceptance criterion: the gate must exit nonzero on an artificially
injected 20% slowdown. These tests exercise that end-to-end through
``main()`` with fabricated result records (no simulation), plus the
semantics gate and its schema-mismatch skip path.
"""

import copy
import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import bench_compare  # noqa: E402


BASE_RECORD = {
    "suite": "spec2017",
    "engine_schema": 1,
    "benchmarks": ["imagick", "omnetpp", "nab"],
    "simulations": 24,
    "instructions": 67662,
    "cycles": 68535,
    "wall_seconds": 1.358,
    "instructions_per_second": 49818.8,
    "cycles_per_second": 50461.5,
}


@pytest.fixture
def records(tmp_path):
    def write(name, **overrides):
        record = copy.deepcopy(BASE_RECORD)
        record.update(overrides)
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return str(path)

    return write


def _main(baseline, current, *extra):
    return bench_compare.main(
        ["--baseline", baseline, "--current", current, *extra]
    )


def test_identical_records_pass(records, capsys):
    assert _main(records("base.json"), records("cur.json")) == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out
    assert out.strip().endswith("OK")


def test_injected_20pct_slowdown_fails(records, capsys):
    """The ISSUE's acceptance criterion, verbatim."""
    slow = BASE_RECORD["instructions_per_second"] * 0.80
    rc = _main(records("base.json"),
               records("cur.json", instructions_per_second=slow))
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL throughput" in out
    assert out.strip().endswith("REGRESSION DETECTED")


def test_slowdown_within_tolerance_passes(records):
    ok_ips = BASE_RECORD["instructions_per_second"] * 0.90  # 10% < 15%
    assert _main(records("base.json"),
                 records("cur.json", instructions_per_second=ok_ips)) == 0


def test_speedup_passes(records):
    fast = BASE_RECORD["instructions_per_second"] * 1.5
    assert _main(records("base.json"),
                 records("cur.json", instructions_per_second=fast)) == 0


def test_custom_tolerance_is_respected(records):
    slow = BASE_RECORD["instructions_per_second"] * 0.80
    current = records("cur.json", instructions_per_second=slow)
    baseline = records("base.json")
    assert _main(baseline, current, "--tolerance", "0.25") == 0
    assert _main(baseline, current, "--tolerance", "0.10") == 1


def test_cycle_drift_fails_even_when_fast(records, capsys):
    """Timing-semantics drift without a schema bump is a hard failure no
    matter how fast the run was — it silently stales the result store."""
    rc = _main(
        records("base.json"),
        records("cur.json", cycles=BASE_RECORD["cycles"] + 1,
                instructions_per_second=1e9),
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL semantics" in out and "cycles" in out
    assert "ENGINE_SCHEMA_VERSION" in out


def test_instruction_drift_fails(records):
    assert _main(
        records("base.json"),
        records("cur.json", instructions=BASE_RECORD["instructions"] - 5),
    ) == 1


def test_throughput_failure_names_worst_regressing_benchmark(records, capsys):
    per_benchmark = {
        "imagick": {"instructions": 45000, "cycles": 36000,
                    "wall_seconds": 0.8, "instructions_per_second": 55000.0},
        "omnetpp": {"instructions": 11000, "cycles": 20000,
                    "wall_seconds": 0.2, "instructions_per_second": 46000.0},
    }
    regressed = copy.deepcopy(per_benchmark)
    regressed["omnetpp"]["instructions_per_second"] = 10000.0
    rc = _main(
        records("base.json", per_benchmark=per_benchmark),
        records("cur.json", per_benchmark=regressed,
                instructions_per_second=(
                    BASE_RECORD["instructions_per_second"] * 0.5
                )),
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "worst regressor: omnetpp" in out


def test_throughput_failure_without_breakdown_still_reports(records, capsys):
    """Records that predate ``per_benchmark`` must not crash the gate."""
    slow = BASE_RECORD["instructions_per_second"] * 0.5
    rc = _main(records("base.json"),
               records("cur.json", instructions_per_second=slow))
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL throughput" in out
    assert "worst regressor" not in out


def test_committed_baseline_has_fast_forward_rate():
    """The sampled-simulation speed claim (docs/sampling.md) is recorded
    next to the detailed rate: fast-forward must be >= 20x detailed."""
    record = bench_compare.load_record(str(TOOLS.parent / "BENCH_engine.json"))
    ff = record["fast_forward_instructions_per_second"]
    assert ff >= 20 * record["instructions_per_second"]
    assert set(record["per_benchmark"]) == set(record["benchmarks"])


def test_schema_bump_skips_semantics_gate(records, capsys):
    """A deliberate schema bump makes cycle totals incomparable — the gate
    must skip the exact check (but still enforce throughput)."""
    rc = _main(
        records("base.json"),
        records("cur.json", engine_schema=2,
                cycles=BASE_RECORD["cycles"] + 999),
    )
    assert rc == 0
    assert "semantics: skipped" in capsys.readouterr().out


def test_different_benchmark_subset_skips_semantics_gate(records, capsys):
    rc = _main(
        records("base.json"),
        records("cur.json", benchmarks=["imagick"], cycles=1,
                instructions=1),
    )
    assert rc == 0
    assert "semantics: skipped" in capsys.readouterr().out


def test_committed_baseline_is_loadable_and_current_schema():
    """BENCH_engine.json at the repo root must parse and carry the same
    ENGINE_SCHEMA_VERSION the code declares, or the semantics gate would
    silently skip on every CI run."""
    from repro.uarch.core import ENGINE_SCHEMA_VERSION

    record = bench_compare.load_record(
        Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    )
    assert record["engine_schema"] == ENGINE_SCHEMA_VERSION
    assert record["instructions_per_second"] > 0


def test_exp_dispatch_within_ceiling_passes(records, capsys):
    rc = _main(
        records("base.json"),
        records("cur.json", exp_dispatch_seconds=0.01,
                exp_dispatch_cells=32),
    )
    assert rc == 0
    assert "exp dispatch" in capsys.readouterr().out


def test_exp_dispatch_over_ceiling_fails(records, capsys):
    ceiling = bench_compare.EXP_DISPATCH_CEILING
    too_slow = BASE_RECORD["wall_seconds"] * ceiling * 2
    rc = _main(
        records("base.json"),
        records("cur.json", exp_dispatch_seconds=too_slow,
                exp_dispatch_cells=32),
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "FAIL exp dispatch" in out


def test_exp_dispatch_skipped_for_old_records(records, capsys):
    """Records that predate ``exp_dispatch_seconds`` must not crash or
    fail the gate."""
    rc = _main(records("base.json"), records("cur.json"))
    assert rc == 0
    assert "exp dispatch" not in capsys.readouterr().out


def test_committed_baseline_has_exp_dispatch_fields():
    """The committed record must carry the registry-overhead measurement
    (and sit comfortably under the ceiling), or the CI gate would
    silently skip it."""
    record = bench_compare.load_record(str(TOOLS.parent / "BENCH_engine.json"))
    assert record["exp_dispatch_cells"] > 0
    assert (
        record["exp_dispatch_seconds"]
        <= bench_compare.EXP_DISPATCH_CEILING * record["wall_seconds"]
    )


def test_invalid_record_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ValueError, match="not a bench_engine result"):
        bench_compare.load_record(str(bad))


def test_bad_tolerance_and_runs_rejected(records):
    baseline = records("base.json")
    current = records("cur.json")
    with pytest.raises(SystemExit):
        _main(baseline, current, "--tolerance", "1.5")
    with pytest.raises(SystemExit):
        _main(baseline, current, "--runs", "0")
