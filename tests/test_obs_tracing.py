"""Tests for span tracing (repro.obs.tracing).

The two load-bearing guarantees:

1. tracing is *purely observational* — simulated cycle counts are
   bit-identical whether a tracer is installed or not, and
2. the JSONL timeline round-trips through ``read_jsonl`` and
   ``summarize_records`` losslessly enough to rebuild the span tree.
"""

import json

from repro.compiler import compile_frog
from repro.obs.tracing import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    read_jsonl,
    span,
    summarize_records,
    trace_scope,
)
from repro.uarch import LoopFrogCore, SparseMemory

SOURCE = """
fn main(a: ptr<int>) {
    #pragma loopfrog
    for (var i: int = 0; i < 24; i = i + 1) {
        a[i] = a[i] * 3 + i;
    }
}
"""


def _run(core_factory=LoopFrogCore):
    program = compile_frog(SOURCE).program
    mem = SparseMemory()
    mem.store_int_array(0x1000, list(range(24)))
    return core_factory().run(program, mem, {"r1": 0x1000})


def _fake_clock():
    """Deterministic clock: each call advances by exactly 1.0s."""
    t = [0.0]

    def clock():
        t[0] += 1.0
        return t[0]

    return clock


# ---------------------------------------------------------------------------
# Core tracer mechanics
# ---------------------------------------------------------------------------

def test_span_nesting_and_parentage():
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("outer", label="x"):
        with tracer.span("inner"):
            tracer.event("tick", cycle=7)
        tracer.event("tock")
    assert [s.name for s in tracer.spans] == ["outer", "inner"]
    outer, inner = tracer.spans
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert outer.attrs == {"label": "x"}
    assert outer.end is not None and outer.end > outer.start
    assert inner.start >= outer.start and inner.end <= outer.end
    tick, tock = tracer.events
    assert tick.parent_id == inner.span_id
    assert tick.attrs == {"cycle": 7}
    assert tock.parent_id == outer.span_id


def test_span_closes_on_exception():
    tracer = Tracer(clock=_fake_clock())
    try:
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracer.spans[0].end is not None
    # The stack unwound: the next span is a root again.
    with tracer.span("next"):
        pass
    assert tracer.spans[1].parent_id is None


def test_records_are_timeline_ordered():
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("a"):
        tracer.event("e1")
    with tracer.span("b"):
        pass
    kinds = [(r["type"], r["name"]) for r in tracer.records()]
    assert kinds == [("span", "a"), ("event", "e1"), ("span", "b")]


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("outer", program="k"):
        tracer.event("epoch.spawn", cycle=3, slot=1)
        with tracer.span("inner"):
            pass

    path = tmp_path / "trace.jsonl"
    count = tracer.write_jsonl(path)
    assert count == 3

    # Every line is standalone JSON.
    lines = path.read_text().strip().splitlines()
    assert len(lines) == count
    for line in lines:
        json.loads(line)

    records = read_jsonl(path)
    assert records == tracer.records()


def test_read_jsonl_skips_junk(tmp_path):
    path = tmp_path / "trace.jsonl"
    good = {"type": "event", "parent": None, "name": "e", "t": 0.1,
            "attrs": {}}
    path.write_text(
        "not json\n\n[1,2]\n" + json.dumps({"type": "mystery"}) + "\n"
        + json.dumps(good) + "\n"
    )
    assert read_jsonl(path) == [good]


def test_summarize_records():
    tracer = Tracer(clock=_fake_clock())
    with tracer.span("simulate", program="k"):
        tracer.event("epoch.spawn", cycle=1)
        tracer.event("epoch.squash", cycle=5, reason="conflict")
        with tracer.span("phase"):
            pass
    text = summarize_records(tracer.records())
    assert "simulate" in text and "program=k" in text
    assert "ms" in text
    assert "epoch.spawn" in text and "x1" in text
    assert "epoch.squash" in text and "conflict=1" in text
    # Child span is indented under its parent.
    sim_line = next(l for l in text.splitlines() if "simulate" in l)
    phase_line = next(l for l in text.splitlines() if "phase" in l)
    assert not sim_line.startswith(" ") and phase_line.startswith("  ")
    assert summarize_records([]) == "(empty timeline)"


# ---------------------------------------------------------------------------
# Process-wide tracer management
# ---------------------------------------------------------------------------

def test_trace_scope_restores_previous_tracer():
    assert current_tracer() is None
    outer = enable_tracing()
    try:
        with trace_scope() as inner:
            assert current_tracer() is inner
            assert inner is not outer
        assert current_tracer() is outer
    finally:
        disable_tracing()
    assert current_tracer() is None


def test_module_span_is_noop_when_disabled():
    assert current_tracer() is None
    with span("ignored", attr=1) as record:
        assert record is None
    with trace_scope() as tracer:
        with span("seen") as record:
            assert record is not None
    assert [s.name for s in tracer.spans] == ["seen"]


# ---------------------------------------------------------------------------
# The observational guarantee
# ---------------------------------------------------------------------------

def test_cycles_bit_identical_with_and_without_tracing():
    plain = _run()
    with trace_scope() as tracer:
        traced = _run()
    assert traced.stats.cycles == plain.stats.cycles
    assert traced.stats.arch_instructions == plain.stats.arch_instructions
    assert traced.registers == plain.registers
    # And the trace actually captured the run.
    names = {s.name for s in tracer.spans}
    assert {"compile", "simulate"} <= names
    spawns = [e for e in tracer.events if e.name == "epoch.spawn"]
    assert spawns and all("cycle" in e.attrs for e in spawns)


def test_engine_caches_tracer_at_construction():
    """The Engine looks up the active tracer once, at construction — an
    engine built while tracing is off stays silent even if a tracer is
    installed before run() (the documented one-global-read contract)."""
    from repro.uarch.config import default_machine
    from repro.uarch.core import Engine

    program = compile_frog(SOURCE).program
    mem = SparseMemory()
    mem.store_int_array(0x1000, list(range(24)))
    engine = Engine(default_machine(), program, mem, {"r1": 0x1000})
    with trace_scope() as tracer:
        engine.run()
    assert tracer.spans == [] and tracer.events == []
