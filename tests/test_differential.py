"""Differential fuzzing of the timing cores: LoopFrog vs serial baseline.

Generates seed-pinned random Frog programs — annotated loops over arrays
with cross-iteration register and memory dependencies, data-dependent
branches, and scalar parameters — and asserts that the LoopFrog core's
final *architectural* state (registers + memory) is identical to the
serial baseline core's, and that both match the functional executor.

This is the paper's core guarantee (section 3: hints never change
sequential semantics) exercised mechanically: speculation may squash,
forward through the SSB, mispredict packing — but whatever happens
microarchitecturally, the committed state must be exactly the serial one.

The program generator deliberately produces loop bodies that stress the
speculation machinery: reads of ``a[i - 1]``/``a[i + 1]`` create true
cross-iteration memory dependencies (conflict squashes), scalar
accumulators create IV-misprediction pressure (packing squashes), and
``if``s on loaded data create divergent speculative paths.
"""

import random

import pytest

from repro.compiler import compile_frog
from repro.uarch import BaselineCore, LoopFrogCore, SparseMemory
from repro.uarch.executor import Executor

NUM_PROGRAMS = 50
A_BASE = 0x1_0000   # array a
B_BASE = 0x2_0000   # array b
OUT_BASE = 0x3_0000  # scalar results


# ---------------------------------------------------------------------------
# Random program generator (seeded, self-contained)
# ---------------------------------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^"]


def _gen_expr(rng: random.Random, depth: int = 0) -> str:
    atoms = ["i", "acc", "s0", "s1", "a[i]", "b[i]",
             str(rng.randint(-50, 50))]
    if depth >= 2 or rng.random() < 0.4:
        return rng.choice(atoms)
    op = rng.choice(_BINOPS)
    return f"({_gen_expr(rng, depth + 1)} {op} {_gen_expr(rng, depth + 1)})"


def _gen_stmt(rng: random.Random) -> str:
    kind = rng.randrange(6)
    if kind == 0:
        return f"a[i] = {_gen_expr(rng)};"
    if kind == 1:
        return f"b[i] = {_gen_expr(rng)};"
    if kind == 2:
        return f"acc = acc + {_gen_expr(rng)};"
    if kind == 3:
        # True cross-iteration memory dependency: iteration i reads what
        # iteration i-1 wrote (or i+1's future value — stale until the
        # conflict detector catches the overwrite).
        neighbour = rng.choice(["a[i - 1]", "a[i + 1]", "b[i - 1]"])
        target = rng.choice(["a[i]", "b[i]"])
        return f"{target} = {neighbour} + {_gen_expr(rng)};"
    if kind == 4:
        body = rng.choice([
            f"a[i] = {_gen_expr(rng)};",
            f"b[i] = {_gen_expr(rng)};",
            f"acc = acc ^ {_gen_expr(rng)};",
        ])
        return f"if ({_gen_expr(rng)} < {_gen_expr(rng)}) {{ {body} }}"
    return f"acc = {_gen_expr(rng)};"


def generate_program(seed: int) -> str:
    """One random Frog program; same seed, same source, forever."""
    rng = random.Random(seed)
    n = rng.choice([8, 12, 16, 24])
    stmts = "\n            ".join(
        _gen_stmt(rng) for _ in range(rng.randint(2, 5))
    )
    second_loop = ""
    if rng.random() < 0.5:
        pragma = "#pragma loopfrog\n        " if rng.random() < 0.7 else ""
        second_loop = f"""
        {pragma}for (var j: int = 0; j < {n}; j = j + 1) {{
            acc = acc + a[j] - b[j];
        }}"""
    return f"""
    fn main(a: ptr<int>, b: ptr<int>, out: ptr<int>, s0: int) {{
        var s1: int = {rng.randint(-100, 100)};
        var acc: int = {rng.randint(-20, 20)};
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            {stmts}
        }}{second_loop}
        out[0] = acc;
    }}
    """


def _fresh_memory(seed: int) -> SparseMemory:
    rng = random.Random(seed + 1_000_003)
    mem = SparseMemory()
    mem.store_int_array(A_BASE, [rng.randint(-1000, 1000) for _ in range(32)])
    mem.store_int_array(B_BASE, [rng.randint(-1000, 1000) for _ in range(32)])
    return mem


def _initial_regs(seed: int):
    rng = random.Random(seed + 2_000_003)
    return {
        "r1": A_BASE, "r2": B_BASE, "r3": OUT_BASE,
        "r4": rng.randint(-100, 100),
    }


def _memory_image(mem: SparseMemory):
    return {addr: mem.load_byte(addr) for addr in mem.written_addresses()}


@pytest.mark.parametrize("seed", range(NUM_PROGRAMS))
def test_loopfrog_state_matches_serial_baseline(seed):
    source = generate_program(seed)
    program = compile_frog(source).program

    base = BaselineCore().run(
        program, _fresh_memory(seed), _initial_regs(seed)
    )
    frog = LoopFrogCore().run(
        program, _fresh_memory(seed), _initial_regs(seed)
    )

    assert _memory_image(frog.memory) == _memory_image(base.memory), (
        f"seed {seed}: speculative memory state diverged\n{source}"
    )
    assert frog.registers == base.registers, (
        f"seed {seed}: architectural registers diverged\n{source}"
    )

    # Third oracle: the functional executor (golden reference model).
    ex = Executor(program, _fresh_memory(seed))
    ex.regs.update(_initial_regs(seed))
    ex.run()
    assert _memory_image(ex.memory) == _memory_image(base.memory), (
        f"seed {seed}: baseline timing model diverged from the functional "
        f"executor\n{source}"
    )


def test_generator_is_deterministic():
    """Seed-pinning contract: the same seed must regenerate byte-identical
    sources across sessions, or failures would be unreproducible."""
    for seed in (0, 7, 49):
        assert generate_program(seed) == generate_program(seed)


def test_generated_programs_speculate():
    """The corpus must actually exercise the speculation machinery —
    a fuzzer whose programs never spawn threadlets proves nothing."""
    spawned = squashed = 0
    for seed in range(NUM_PROGRAMS):
        program = compile_frog(generate_program(seed)).program
        frog = LoopFrogCore().run(
            program, _fresh_memory(seed), _initial_regs(seed)
        )
        spawned += frog.stats.threadlets_spawned
        squashed += frog.stats.threadlets_squashed
    assert spawned > NUM_PROGRAMS  # well over one epoch per program
    assert squashed > 0            # and some real misspeculation
