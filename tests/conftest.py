"""Shared fixtures: result-store isolation and test determinism.

Store isolation
    The runner reads through :mod:`repro.results` by default, which would
    drop a ``.repro-results/`` tree in the working directory and let
    results persist *between* test sessions — test runs must never depend
    on what a previous run left behind.  Point the default store at a
    session-scoped temp directory instead: within-session caching stays
    (the experiment tests rely on it for speed), cross-session state does
    not.

Determinism
    Every test starts from a ``random`` state seeded from its own node id,
    so (a) no test's outcome depends on how many ``random()`` calls the
    tests before it made, and (b) a test reproduces identically when run
    alone (``pytest tests/x.py::test_y``) or in the full suite.  The
    global state is restored afterwards so the pinning itself cannot leak.

    Setting ``REPRO_TEST_ORDER_SEED=<int>`` shuffles test collection
    order; CI runs the suite twice with different seeds to flush out
    hidden inter-test coupling the per-test seeding might miss (module
    import order, shared caches, leaked process-wide singletons).
"""

import os
import random
import zlib

import pytest

from repro.results import ResultStore, set_default_store


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("repro-results")
    set_default_store(ResultStore(store_dir))
    yield
    set_default_store(None)


@pytest.fixture(autouse=True)
def _deterministic_random(request):
    saved = random.getstate()
    random.seed(zlib.crc32(request.node.nodeid.encode("utf-8")))
    yield
    random.setstate(saved)


def pytest_collection_modifyitems(config, items):
    seed = os.environ.get("REPRO_TEST_ORDER_SEED")
    if not seed:
        return
    random.Random(int(seed)).shuffle(items)