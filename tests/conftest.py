"""Shared fixtures: isolate the persistent result store from the repo.

The runner reads through :mod:`repro.results` by default, which would
drop a ``.repro-results/`` tree in the working directory and let results
persist *between* test sessions — test runs must never depend on what a
previous run left behind.  Point the default store at a session-scoped
temp directory instead: within-session caching stays (the experiment
tests rely on it for speed), cross-session state does not.
"""

import pytest

from repro.results import ResultStore, set_default_store


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("repro-results")
    set_default_store(ResultStore(store_dir))
    yield
    set_default_store(None)
