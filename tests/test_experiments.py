"""Integration tests for the experiment harnesses.

These check the *shape* of each reproduced figure/table against the
paper's qualitative claims (see EXPERIMENTS.md for the quantitative
comparison).  Sweeps use benchmark subsets to stay fast; the benchmark
harness under ``benchmarks/`` runs the full versions.
"""

import pytest

from repro.experiments import (
    run_area_overheads,
    run_assoc_sensitivity,
    run_benchmark,
    run_fig1,
    run_fig9,
    run_fig10,
    run_packing_ablation,
    run_suite,
    run_table3,
    suite_geomean,
)
from repro.workloads import get_benchmark

SUBSET = ["imagick", "omnetpp", "mcf", "x264", "xz", "leela"]


@pytest.fixture(scope="module")
def subset_runs():
    return run_suite("spec2017", only=SUBSET)


def test_fig1_width_trends():
    result = run_fig1(only=["imagick", "mcf", "omnetpp", "namd"],
                      widths=(4, 8))
    assert result.ipc_increases_with_width
    assert result.utilization_decreases_with_width


def test_fig6_subset_winners_and_losers(subset_runs):
    by_name = {r.name: r for r in subset_runs}
    assert by_name["imagick"].speedup_percent > 50
    assert by_name["omnetpp"].speedup_percent > 25
    assert by_name["mcf"].speedup_percent > 1
    assert abs(by_name["xz"].speedup_percent) < 1      # deselected
    assert abs(by_name["leela"].speedup_percent) < 1


def test_fig6_dynamic_deselection_prevents_slowdowns(subset_runs):
    for run in subset_runs:
        assert run.speedup >= 0.999


def test_benchmark_run_accessors():
    run = run_benchmark(get_benchmark("imagick"))
    assert run.baseline_cycles > run.loopfrog_cycles
    assert 0.0 < run.parallel_fraction() <= 1.0
    assert run.region_speedups()
    result = run.to_result()
    assert result.speedup == pytest.approx(run.speedup)


def test_fig9_ssb_size_binary_behaviour():
    result = run_fig9(sizes=(512, 8192), only=SUBSET)
    # Smaller SSBs lose speedup, but even 512 B keeps a good chunk
    # (paper: 6.2% of 9.5%).
    small, full = result.speedup_at(512), result.speedup_at(8192)
    assert small < full
    assert small > 0.3 * full


def test_fig10_granule_sensitivity():
    result = run_fig10(granules=(4, 16), only=SUBSET)
    # 16-byte granules introduce false sharing and lose speedup.
    assert result.speedup_at(16) < result.speedup_at(4)


def test_fig10_one_to_four_bytes_equivalent():
    result = run_fig10(granules=(1, 4), only=["imagick", "mcf"])
    assert result.speedup_at(1) == pytest.approx(
        result.speedup_at(4), abs=1.5
    )


def test_packing_ablation_positive_delta():
    result = run_packing_ablation(only=["libquantum", "mcf06", "namd06"],
                                  suite_name="spec2006")
    assert result.mean_packing_factor > 1.5
    assert result.max_packing_factor >= 8
    assert result.delta_pp > 0.0
    assert result.affected


def test_assoc_sensitivity_victim_buffer_recovers():
    result = run_assoc_sensitivity(only=["imagick", "omnetpp", "x264"])
    full = result.geomean("full (headline)")
    limited = result.geomean("4-way")
    recovered = result.geomean("4-way + 8-entry victim")
    assert limited < full
    assert recovered > limited
    assert result.worst_hit("4-way") == "imagick"


def test_table3_rows_and_orderings():
    result = run_table3(only=["imagick", "omnetpp", "x264"])
    frog = result.row("LoopFrog")
    ms = result.row("MultiScalar")
    st = result.row("STAMPede")
    assert frog.speedup > 1.0
    assert ms.speedup > 1.0
    # Static rows match table 3.
    assert "SMT" in frog.cores
    assert ms.cores.startswith("8")
    assert st.cores == "4"
    assert "hint" in frog.deployment
    # Our parallel tasks sit inside the paper's 100-10,000 range.
    assert 5 < result.mean_task_size < 10_000


def test_area_overheads_shape():
    result = run_area_overheads(suite_name="spec2017")
    assert result.issued_increase_percent > 0
    assert result.area.new_structures_percent < 5
    # The render must not crash and must carry the headline rows.
    text = result.render()
    assert "SSB granule cache" in text
    assert "Pollack" in text


def test_suite_geomean_subset(subset_runs):
    geomean = (suite_geomean(subset_runs) - 1) * 100
    assert geomean > 5.0  # the subset includes the big winners
