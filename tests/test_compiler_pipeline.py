"""End-to-end compiler tests: Frog source -> Program -> functional run.

These check both code correctness (results match a Python oracle) and hint
placement (pragma loops get detach/reattach/sync; unsuitable loops are
rejected with a diagnostic).
"""

import pytest

from repro.compiler import CompileOptions, compile_frog
from repro.isa import Opcode
from repro.uarch import SparseMemory


def compile_and_run(source, memory=None, args=(), fargs=(), options=None):
    result = compile_frog(source, options)
    mem = memory if memory is not None else SparseMemory()
    from repro.uarch.executor import Executor

    ex = Executor(result.program, mem)
    for reg, value in zip(("r1", "r2", "r3", "r4"), args):
        ex.regs[reg] = value
    for reg, value in zip(("f1", "f2", "f3", "f4"), fargs):
        ex.regs[reg] = value
    run = ex.run()
    return result, run


def test_simple_return():
    _, run = compile_and_run("fn main() -> int { return 41 + 1; }")
    assert run.registers["r1"] == 42


def test_arithmetic_expression():
    _, run = compile_and_run(
        "fn main(a: int, b: int) -> int { return (a + b) * (a - b) / 2; }",
        args=(7, 3),
    )
    assert run.registers["r1"] == (7 + 3) * (7 - 3) // 2


def test_float_arithmetic():
    _, run = compile_and_run(
        "fn main(x: float) -> float { return sqrt(x) * 2.0 + 1.0; }", fargs=(9.0,)
    )
    assert run.registers["f1"] == pytest.approx(7.0)


def test_mixed_int_float_promotion():
    _, run = compile_and_run(
        "fn main(a: int) -> float { return a * 1.5; }", args=(4,)
    )
    assert run.registers["f1"] == pytest.approx(6.0)


def test_if_else():
    src = "fn main(x: int) -> int { if (x > 10) { return 1; } else { return 2; } }"
    _, run = compile_and_run(src, args=(20,))
    assert run.registers["r1"] == 1
    _, run = compile_and_run(src, args=(5,))
    assert run.registers["r1"] == 2


def test_while_loop_countdown():
    _, run = compile_and_run(
        """
        fn main(n: int) -> int {
            var s: int = 0;
            while (n > 0) { s = s + n; n = n - 1; }
            return s;
        }
        """,
        args=(10,),
    )
    assert run.registers["r1"] == 55


def test_for_loop_sum_of_squares():
    _, run = compile_and_run(
        """
        fn main(n: int) -> int {
            var s: int = 0;
            for (var i: int = 1; i <= n; i = i + 1) { s = s + i * i; }
            return s;
        }
        """,
        args=(5,),
    )
    assert run.registers["r1"] == 55


def test_array_store_and_load():
    mem = SparseMemory()
    mem.store_int_array(1000, [5, 7, 11], size=8)
    _, run = compile_and_run(
        """
        fn main(a: ptr<int>, n: int) -> int {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                a[i] = a[i] * 2;
                s = s + a[i];
            }
            return s;
        }
        """,
        memory=mem,
        args=(1000, 3),
    )
    assert run.registers["r1"] == 2 * (5 + 7 + 11)
    assert run.memory.load_int_array(1000, 3) == [10, 14, 22]


def test_int32_array_sign_extension():
    mem = SparseMemory()
    mem.store_int_array(64, [-3, 4], size=4)
    _, run = compile_and_run(
        """
        fn main(a: ptr<int32>) -> int { return a[0] + a[1]; }
        """,
        memory=mem,
        args=(64,),
    )
    assert run.registers["r1"] == 1


def test_float_array_kernel():
    mem = SparseMemory()
    mem.store_float_array(0, [1.0, 2.0, 3.0, 4.0])
    _, run = compile_and_run(
        """
        fn main(a: ptr<float>, n: int) -> float {
            var s: float = 0.0;
            for (var i: int = 0; i < n; i = i + 1) { s = s + a[i] * a[i]; }
            return s;
        }
        """,
        memory=mem,
        args=(0, 4),
    )
    assert run.registers["f1"] == pytest.approx(30.0)


def test_pointer_indirection():
    mem = SparseMemory()
    # a[0] points at another array of ints.
    mem.store_int(100, 200)
    mem.store_int_array(200, [9, 8])
    _, run = compile_and_run(
        "fn main(a: ptr<ptr<int>>) -> int { return a[0][1]; }",
        memory=mem,
        args=(100,),
    )
    assert run.registers["r1"] == 8


def test_break_and_continue():
    _, run = compile_and_run(
        """
        fn main(n: int) -> int {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 7) { break; }
                s = s + i;
            }
            return s;
        }
        """,
        args=(100,),
    )
    assert run.registers["r1"] == 1 + 3 + 5 + 7


def test_short_circuit_and():
    # A null pointer must not be dereferenced thanks to &&.
    _, run = compile_and_run(
        """
        fn main(p: ptr<int>) -> int {
            if (p != 0 && p[0] > 0) { return 1; }
            return 0;
        }
        """,
        args=(0,),
    )
    assert run.registers["r1"] == 0


def test_short_circuit_or():
    _, run = compile_and_run(
        "fn main(a: int, b: int) -> int { if (a > 0 || b > 0) { return 1; } return 0; }",
        args=(0, 3),
    )
    assert run.registers["r1"] == 1


def test_function_inlining():
    _, run = compile_and_run(
        """
        fn square(x: int) -> int { return x * x; }
        fn main(a: int) -> int { return square(a) + square(a + 1); }
        """,
        args=(3,),
    )
    assert run.registers["r1"] == 9 + 16


def test_inlined_function_with_loop():
    _, run = compile_and_run(
        """
        fn sum_to(n: int) -> int {
            var s: int = 0;
            for (var i: int = 1; i <= n; i = i + 1) { s = s + i; }
            return s;
        }
        fn main() -> int { return sum_to(4) + sum_to(10); }
        """
    )
    assert run.registers["r1"] == 10 + 55


def test_recursion_rejected():
    from repro.errors import CompilerError

    with pytest.raises(CompilerError):
        compile_frog("fn f(x: int) -> int { return f(x); } fn main() -> int { return f(1); }")


def test_intrinsics():
    _, run = compile_and_run(
        """
        fn main(x: float) -> float {
            return fabs(0.0 - x) + min(3, 5) + max(3, 5) + fmin(x, 1.0);
        }
        """,
        fargs=(2.0,),
    )
    assert run.registers["f1"] == pytest.approx(2.0 + 3 + 5 + 1.0)


def test_abs_intrinsic_int():
    _, run = compile_and_run(
        "fn main(x: int) -> int { return abs(x) + abs(0 - x); }", args=(-6,)
    )
    assert run.registers["r1"] == 12


def test_casts():
    _, run = compile_and_run(
        "fn main(x: float) -> int { return int(x) + int(x * 2.0); }", fargs=(2.9,)
    )
    assert run.registers["r1"] == 2 + 5


# ---------------------------------------------------------------------------
# Hint insertion behaviour
# ---------------------------------------------------------------------------

MEMCOPY_KERNEL = """
fn main(dst: ptr<int>, src: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        dst[i] = src[i] * 3 + 1;
    }
}
"""


def test_pragma_loop_gets_hints():
    result = compile_frog(MEMCOPY_KERNEL)
    assert len(result.annotated_loops) == 1
    opcodes = [i.opcode for i in result.program]
    assert Opcode.DETACH in opcodes
    assert Opcode.REATTACH in opcodes
    assert Opcode.SYNC in opcodes


def test_hints_preserve_semantics():
    mem1 = SparseMemory()
    mem1.store_int_array(2000, list(range(10)))
    mem2 = mem1.copy()

    hinted = compile_frog(MEMCOPY_KERNEL)
    plain = compile_frog(MEMCOPY_KERNEL, CompileOptions(insert_hints=False))
    assert not plain.program.has_hints

    from repro.uarch.executor import Executor

    for result, mem in ((hinted, mem1), (plain, mem2)):
        ex = Executor(result.program, mem)
        ex.regs["r1"], ex.regs["r2"], ex.regs["r3"] = 1000, 2000, 10
        ex.run()
    assert mem1.load_int_array(1000, 10) == mem2.load_int_array(1000, 10)
    assert mem1.load_int_array(1000, 10) == [i * 3 + 1 for i in range(10)]


def test_register_reduction_loop_rejected():
    # `s` is defined in the body and carried to later iterations: the hint
    # pass must refuse (paper: loops with complex register LCDs in the body
    # need DoACROSS and are unsuitable).
    result = compile_frog(
        """
        fn main(a: ptr<int>, n: int) -> int {
            var s: int = 0;
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                s = s + a[i];
            }
            return s;
        }
        """
    )
    assert len(result.annotated_loops) == 0
    assert len(result.rejected_loops) == 1
    from repro.compiler.hints import REASON_BODY_REGISTER_DEPENDENCE

    assert result.rejected_loops[0].reason == REASON_BODY_REGISTER_DEPENDENCE
    assert "loop-carried" in result.rejected_loops[0].detail


def test_unmarked_loop_gets_no_hints():
    result = compile_frog(
        """
        fn main(dst: ptr<int>, n: int) {
            for (var i: int = 0; i < n; i = i + 1) { dst[i] = i; }
        }
        """
    )
    assert not result.program.has_hints
    assert result.hint_reports == []


def test_pointer_chase_loop_annotated():
    # Linked-list traversal: the LCD update (node = next) is the last
    # statement, so it lands in the continuation (paper section 3:
    # "linked-list traversals" are canonical header/continuation content).
    result = compile_frog(
        """
        fn main(next: ptr<int>, data: ptr<int>, out: ptr<int>, node: int) {
            var k: int = 0;
            #pragma loopfrog
            while (node != 0) {
                out[k] = data[node] * 2;
                k = k + 1;
                node = next[node];
            }
        }
        """
    )
    # k and node updates go to the continuation; the store stays in the body.
    assert len(result.annotated_loops) == 1


def test_hinted_pointer_chase_executes_correctly():
    mem = SparseMemory()
    # Build list 1 -> 2 -> 3 -> 0 with data[i] = 10*i.
    next_base, data_base, out_base = 1000, 2000, 3000
    for i, nxt in ((1, 2), (2, 3), (3, 0)):
        mem.store_int(next_base + 8 * i, nxt)
        mem.store_int(data_base + 8 * i, 10 * i)
    result = compile_frog(
        """
        fn main(next: ptr<int>, data: ptr<int>, out: ptr<int>, node: int) {
            var k: int = 0;
            #pragma loopfrog
            while (node != 0) {
                out[k] = data[node] * 2;
                k = k + 1;
                node = next[node];
            }
        }
        """
    )
    from repro.uarch.executor import Executor

    ex = Executor(result.program, mem)
    ex.regs["r1"], ex.regs["r2"], ex.regs["r3"], ex.regs["r4"] = (
        next_base, data_base, out_base, 1,
    )
    ex.run()
    assert mem.load_int_array(out_base, 3) == [20, 40, 60]


def test_loop_with_break_gets_sync_per_exit():
    result = compile_frog(
        """
        fn main(a: ptr<int>, n: int, out: ptr<int>) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                if (a[i] < 0) { break; }
                out[i] = a[i] + 1;
            }
        }
        """
    )
    assert len(result.annotated_loops) == 1
    syncs = [i for i in result.program if i.opcode == Opcode.SYNC]
    assert len(syncs) >= 2  # normal exit + break edge


def test_nested_loop_outer_pragma():
    mem = SparseMemory()
    mem.store_int_array(0, list(range(1, 7)))  # 2x3 matrix
    result = compile_frog(
        """
        fn main(a: ptr<int>, rows: int, cols: int, out: ptr<int>) {
            #pragma loopfrog
            for (var r: int = 0; r < rows; r = r + 1) {
                var acc: int = 0;
                for (var c: int = 0; c < cols; c = c + 1) {
                    acc = acc + a[r * cols + c];
                }
                out[r] = acc;
            }
        }
        """
    )
    assert len(result.annotated_loops) == 1
    from repro.uarch.executor import Executor

    ex = Executor(result.program, mem)
    ex.regs["r1"], ex.regs["r2"], ex.regs["r3"], ex.regs["r4"] = 0, 2, 3, 100
    ex.run()
    assert mem.load_int_array(100, 2) == [6, 15]


def test_compile_options_disable_optimize():
    result = compile_frog(MEMCOPY_KERNEL, CompileOptions(optimize=False))
    mem = SparseMemory()
    mem.store_int_array(2000, [1, 2])
    from repro.uarch.executor import Executor

    ex = Executor(result.program, mem)
    ex.regs["r1"], ex.regs["r2"], ex.regs["r3"] = 1000, 2000, 2
    ex.run()
    assert mem.load_int_array(1000, 2) == [4, 7]


def test_many_variables_spill_correctly():
    # More locals than allocatable registers forces spilling; results must
    # still be correct.
    decls = "\n".join(f"var v{i}: int = {i};" for i in range(40))
    total = "+".join(f"v{i}" for i in range(40))
    src = f"fn main() -> int {{ {decls} return {total}; }}"
    _, run = compile_and_run(src)
    assert run.registers["r1"] == sum(range(40))
