"""Differential parity: the fast-path engine vs the reference engine.

The fast path (``core.py``: compiled per-instruction closures, merged
single-threadlet step, slot-order caches, batched statistics) claims to
be *bit-identical* to the reference pipeline it replaced.  This suite is
that claim, mechanised:

* the 50 seeded fuzz programs from :mod:`tests.test_differential`, and
* every workload of every registered suite (spec2017, spec2006, longrun),

each run through both engine paths on both machine configurations, with
the full :class:`~repro.uarch.statistics.SimStats` record — cycles,
every counter, per-region breakdowns — plus the observability metric
snapshot asserted equal field-for-field.  A separate case proves
:meth:`Engine.run_window` (the sampled-simulation entry point) agrees on
warmup/measured boundaries too.

The fast leg pins reference mode *off* explicitly, so the suite still
compares fast-vs-reference (rather than reference-vs-reference) when CI
runs the whole test tier under ``REPRO_ENGINE_REFERENCE=1``.
"""

import dataclasses
import functools

import pytest

from repro.compiler import compile_frog
from repro.obs.metrics import load_all
from repro.uarch.config import baseline_machine, default_machine
from repro.uarch.core import Engine, set_engine_reference_mode
from repro.workloads.suites import SUITE_NAMES, suite

from tests.test_differential import (
    NUM_PROGRAMS,
    _fresh_memory,
    _initial_regs,
    generate_program,
)

MACHINES = {
    "baseline": baseline_machine,
    "loopfrog": default_machine,
}

_METRICS = load_all()


@functools.lru_cache(maxsize=None)
def _fuzz_program(seed: int):
    return compile_frog(generate_program(seed)).program


def _run_stats(program, memory, regs, machine, *, reference, max_cycles=None):
    """Construct and run one engine with the path pinned explicitly."""
    set_engine_reference_mode(reference)
    try:
        engine = Engine(machine, program, memory, regs)
    finally:
        set_engine_reference_mode(None)
    assert engine.reference_mode is reference
    if max_cycles is None:
        return engine.run()
    return engine.run(max_cycles=max_cycles)


def _assert_parity(ref_stats, fast_stats, label):
    assert fast_stats.cycles == ref_stats.cycles, (
        f"{label}: cycles diverged "
        f"(reference {ref_stats.cycles}, fast {fast_stats.cycles})"
    )
    ref_record = dataclasses.asdict(ref_stats)
    fast_record = dataclasses.asdict(fast_stats)
    if fast_record != ref_record:
        diverged = sorted(
            key for key in ref_record
            if fast_record.get(key) != ref_record[key]
        )
        raise AssertionError(
            f"{label}: SimStats diverged in fields {diverged}"
        )
    assert _METRICS.collect(fast_stats) == _METRICS.collect(ref_stats), (
        f"{label}: obs metric snapshot diverged"
    )


# ---------------------------------------------------------------------------
# Fuzz corpus parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("seed", range(NUM_PROGRAMS))
def test_fuzz_program_parity(seed, machine_name):
    program = _fuzz_program(seed)
    machine = MACHINES[machine_name]
    ref = _run_stats(
        program, _fresh_memory(seed), _initial_regs(seed), machine(),
        reference=True,
    )
    fast = _run_stats(
        program, _fresh_memory(seed), _initial_regs(seed), machine(),
        reference=False,
    )
    _assert_parity(ref, fast, f"fuzz seed {seed} on {machine_name}")


# ---------------------------------------------------------------------------
# Suite workload parity
# ---------------------------------------------------------------------------

def _suite_cases():
    for suite_name in SUITE_NAMES:
        for benchmark in suite(suite_name):
            yield pytest.param(
                suite_name, benchmark.name,
                id=f"{suite_name}-{benchmark.name}",
            )


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("suite_name,bench_name", list(_suite_cases()))
def test_suite_workload_parity(suite_name, bench_name, machine_name):
    benchmark = next(
        b for b in suite(suite_name) if b.name == bench_name
    )
    machine = MACHINES[machine_name]
    for workload, _weight in benchmark.phases:
        runs = {}
        for reference in (True, False):
            memory, regs = workload.fresh_input()
            runs[reference] = _run_stats(
                workload.program, memory, regs, machine(),
                reference=reference, max_cycles=workload.max_cycles,
            )
        _assert_parity(
            runs[True], runs[False],
            f"{suite_name}:{workload.name} on {machine_name}",
        )


# ---------------------------------------------------------------------------
# Sampled-window entry point parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("machine_name", sorted(MACHINES))
def test_run_window_parity(machine_name):
    workload = suite("spec2017")[0].phases[0][0]
    machine = MACHINES[machine_name]
    windows = {}
    for reference in (True, False):
        memory, regs = workload.fresh_input()
        set_engine_reference_mode(reference)
        try:
            engine = Engine(machine(), workload.program, memory, regs)
        finally:
            set_engine_reference_mode(None)
        windows[reference] = engine.run_window(
            2_000, warmup_instructions=500,
        )
    ref, fast = windows[True], windows[False]
    for field in (
        "warmup_instructions", "warmup_cycles",
        "measured_instructions", "measured_cycles", "finished",
    ):
        assert getattr(fast, field) == getattr(ref, field), (
            f"run_window {field} diverged on {machine_name}"
        )
    _assert_parity(
        ref.stats, fast.stats, f"run_window stats on {machine_name}"
    )
