"""Differential parity: every engine mode vs the reference engine.

The engine has three execution modes (``repro.uarch.core.ENGINE_MODES``):
the per-phase ``reference`` pipeline, the serial ``fast`` path (compiled
per-instruction closures, merged single-threadlet step, slot-order
caches, batched statistics), and ``epoch-parallel`` (the fast path plus
episode execution: cross-cycle monolithic loops with epoch-granularity
batched hazard and statistics bookkeeping).  Both optimized modes claim
to be *bit-identical* to the reference pipeline.  This suite is that
claim, mechanised as a three-way parity matrix:

* the 50 seeded fuzz programs from :mod:`tests.test_differential`, and
* every workload of every registered suite (spec2017, spec2006, longrun),

each run through all three engine modes on both machine configurations,
with the full :class:`~repro.uarch.statistics.SimStats` record — cycles,
every counter, per-region breakdowns — plus the observability metric
snapshot asserted equal field-for-field.  A separate case proves
:meth:`Engine.run_window` (the sampled-simulation entry point) agrees on
warmup/measured boundaries too.

Every leg pins its mode explicitly with ``set_engine_mode``, so the
suite still compares all three modes when CI runs the whole test tier
under ``REPRO_ENGINE_REFERENCE=1`` or ``REPRO_ENGINE_MODE=...``.
"""

import dataclasses
import functools

import pytest

from repro.compiler import compile_frog
from repro.obs.metrics import load_all
from repro.uarch.config import baseline_machine, default_machine
from repro.uarch.core import ENGINE_MODES, Engine, set_engine_mode
from repro.workloads.suites import SUITE_NAMES, suite

from tests.test_differential import (
    NUM_PROGRAMS,
    _fresh_memory,
    _initial_regs,
    generate_program,
)

MACHINES = {
    "baseline": baseline_machine,
    "loopfrog": default_machine,
}

# The optimized modes, each compared field-for-field to "reference".
OPTIMIZED_MODES = tuple(m for m in ENGINE_MODES if m != "reference")

_METRICS = load_all()


@functools.lru_cache(maxsize=None)
def _fuzz_program(seed: int):
    return compile_frog(generate_program(seed)).program


def _run_stats(program, memory, regs, machine, *, mode, max_cycles=None):
    """Construct and run one engine with the mode pinned explicitly."""
    set_engine_mode(mode)
    try:
        engine = Engine(machine, program, memory, regs)
    finally:
        set_engine_mode(None)
    assert engine.engine_mode == mode
    if max_cycles is None:
        return engine.run()
    return engine.run(max_cycles=max_cycles)


def _assert_parity(ref_stats, mode_stats, mode, label):
    assert mode_stats.cycles == ref_stats.cycles, (
        f"{label}: cycles diverged "
        f"(reference {ref_stats.cycles}, {mode} {mode_stats.cycles})"
    )
    ref_record = dataclasses.asdict(ref_stats)
    mode_record = dataclasses.asdict(mode_stats)
    if mode_record != ref_record:
        diverged = sorted(
            key for key in ref_record
            if mode_record.get(key) != ref_record[key]
        )
        raise AssertionError(
            f"{label}: SimStats diverged from reference in mode {mode} "
            f"in fields {diverged}"
        )
    assert _METRICS.collect(mode_stats) == _METRICS.collect(ref_stats), (
        f"{label}: obs metric snapshot diverged in mode {mode}"
    )


def _assert_matrix(runs, label):
    """``runs`` maps mode name -> SimStats for one (program, machine)."""
    for mode in OPTIMIZED_MODES:
        _assert_parity(runs["reference"], runs[mode], mode, label)


# ---------------------------------------------------------------------------
# Fuzz corpus parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("seed", range(NUM_PROGRAMS))
def test_fuzz_program_parity(seed, machine_name):
    program = _fuzz_program(seed)
    machine = MACHINES[machine_name]
    runs = {
        mode: _run_stats(
            program, _fresh_memory(seed), _initial_regs(seed), machine(),
            mode=mode,
        )
        for mode in ENGINE_MODES
    }
    _assert_matrix(runs, f"fuzz seed {seed} on {machine_name}")


# ---------------------------------------------------------------------------
# Suite workload parity
# ---------------------------------------------------------------------------

def _suite_cases():
    for suite_name in SUITE_NAMES:
        for benchmark in suite(suite_name):
            yield pytest.param(
                suite_name, benchmark.name,
                id=f"{suite_name}-{benchmark.name}",
            )


@pytest.mark.parametrize("machine_name", sorted(MACHINES))
@pytest.mark.parametrize("suite_name,bench_name", list(_suite_cases()))
def test_suite_workload_parity(suite_name, bench_name, machine_name):
    benchmark = next(
        b for b in suite(suite_name) if b.name == bench_name
    )
    machine = MACHINES[machine_name]
    for workload, _weight in benchmark.phases:
        runs = {}
        for mode in ENGINE_MODES:
            memory, regs = workload.fresh_input()
            runs[mode] = _run_stats(
                workload.program, memory, regs, machine(),
                mode=mode, max_cycles=workload.max_cycles,
            )
        _assert_matrix(
            runs, f"{suite_name}:{workload.name} on {machine_name}"
        )


# ---------------------------------------------------------------------------
# Sampled-window entry point parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("machine_name", sorted(MACHINES))
def test_run_window_parity(machine_name):
    workload = suite("spec2017")[0].phases[0][0]
    machine = MACHINES[machine_name]
    windows = {}
    for mode in ENGINE_MODES:
        memory, regs = workload.fresh_input()
        set_engine_mode(mode)
        try:
            engine = Engine(machine(), workload.program, memory, regs)
        finally:
            set_engine_mode(None)
        windows[mode] = engine.run_window(
            2_000, warmup_instructions=500,
        )
    ref = windows["reference"]
    for mode in OPTIMIZED_MODES:
        cur = windows[mode]
        for field in (
            "warmup_instructions", "warmup_cycles",
            "measured_instructions", "measured_cycles", "finished",
        ):
            assert getattr(cur, field) == getattr(ref, field), (
                f"run_window {field} diverged on {machine_name} "
                f"in mode {mode}"
            )
        _assert_parity(
            ref.stats, cur.stats, mode,
            f"run_window stats on {machine_name}",
        )
