"""Unit tests for the iteration-packing predictors (paper section 4.3)."""

import pytest

from repro.uarch.config import LoopFrogConfig
from repro.uarch.packing import (
    IterationPacker,
    RegionPackingState,
    StrideEntry,
)


def region(**config_kw) -> RegionPackingState:
    return RegionPackingState(0, LoopFrogConfig(**config_kw))


def trained_region(iters=10, stride=1, size=20):
    state = region()
    for i in range(iters):
        state.observe_detach({"r5": i * stride})
        state.observe_epoch_size(size)
    state.note_consumed({"r5"})
    return state


def test_stride_entry_learns_constant_stride():
    entry = StrideEntry()
    for v in range(0, 80, 8):
        entry.observe(v, conf_max=7)
    assert entry.stride == 8
    assert entry.confidence == 7  # saturates


def test_stride_entry_penalises_noise():
    entry = StrideEntry()
    for v in (0, 8, 16, 24, 32):
        entry.observe(v, conf_max=7)
    conf_before = entry.confidence
    entry.observe(1000, conf_max=7)
    assert entry.confidence < conf_before


def test_stride_entry_prediction():
    entry = StrideEntry()
    for v in (10, 13, 16, 19):
        entry.observe(v, conf_max=7)
    assert entry.predict(4) == 19 + 3 * 4


def test_stride_entry_multi_iteration_observation():
    # Under packing, observations arrive several iterations apart; the
    # per-iteration stride must still be recovered.
    entry = StrideEntry()
    entry.observe(0, conf_max=7)
    for v in (4, 8, 12, 16, 20):
        entry.observe(v, conf_max=7, iterations=4)
    assert entry.stride == 1


def test_ema_epoch_size():
    state = region(packing_ema_alpha=0.5)
    state.observe_epoch_size(100)
    assert state.ema_size == 100
    state.observe_epoch_size(50)
    assert state.ema_size == pytest.approx(75)


def test_decide_needs_training():
    state = region(packing_train_epochs=3)
    state.observe_detach({"r5": 0})
    state.observe_epoch_size(10)
    state.note_consumed({"r5"})
    assert state.decide(rob_size=1024).factor == 1


def test_decide_packs_small_iterations():
    state = trained_region(size=20)
    decision = state.decide(rob_size=1024)
    # Smallest P with P * 20 > 1024 is 52, capped at the configured max.
    assert decision.factor == state.config.packing_max_factor
    assert "r5" in decision.predicted_regs


def test_decide_does_not_pack_large_epochs():
    state = trained_region(size=2000)
    assert state.decide(rob_size=1024).factor == 1


def test_decide_predicts_strided_values():
    state = trained_region(iters=10, stride=3, size=100)
    decision = state.decide(rob_size=1024)
    assert decision.factor > 1
    # Last observed value is 27 (i=9); prediction for factor-1 ahead.
    assert decision.predicted_regs["r5"] == 27 + 3 * (decision.factor - 1)


def test_unconsumed_changing_registers_do_not_block_packing():
    # Body temporaries change every iteration but are never consumed by a
    # later iteration: they are not induction variables (paper's IV test).
    state = region()
    for i in range(10):
        state.observe_detach({"r5": i, "r9": (i * 7919) % 23})
        state.observe_epoch_size(20)
    state.note_consumed({"r5"})  # r9 is never consumed
    assert state.decide(rob_size=1024).factor > 1


def test_consumed_unpredictable_register_blocks_packing():
    state = region()
    for i in range(10):
        state.observe_detach({"r5": (i * 7919) % 23})
        state.observe_epoch_size(20)
    state.note_consumed({"r5"})
    assert state.decide(rob_size=1024).factor == 1


def test_misprediction_penalty_lowers_confidence():
    state = trained_region()
    assert state.decide(rob_size=1024).factor > 1
    state.note_misprediction()
    assert state.decide(rob_size=1024).factor == 1


def test_packing_disabled_by_config():
    state = trained_region()
    state.config = LoopFrogConfig(packing_enabled=False)
    assert state.decide(rob_size=1024).factor == 1


def test_packer_region_registry():
    packer = IterationPacker(LoopFrogConfig())
    a = packer.region(10)
    b = packer.region(10)
    c = packer.region(20)
    assert a is b and a is not c
