"""Differential tests of the sampled-simulation fast-forward path.

The fast-forward executor is the functional model sampled simulation
(docs/sampling.md) uses to skip between detailed windows, and its
checkpoints are where mid-program windows start.  Both must be
*architecturally invisible*:

* fast-forwarding a program to completion must reproduce the reference
  :class:`~repro.uarch.executor.Executor`'s final state exactly, and
* resuming the detailed engine from a mid-program checkpoint must land
  in exactly the architectural state a detailed run from instruction
  zero reaches.

Exercised over the same seed-pinned random Frog corpus as
``test_differential`` — cross-iteration memory dependencies,
data-dependent branches and speculation pressure included.
"""

import pytest

from repro.compiler import compile_frog
from repro.sampling.fastforward import (
    FastForwardExecutor,
    collect_checkpoints,
)
from repro.uarch.config import default_machine
from repro.uarch.core import Engine
from repro.uarch.executor import Executor

from tests.test_differential import (
    _fresh_memory,
    _initial_regs,
    _memory_image,
    generate_program,
)

NUM_SEEDS = 12


def _compiled(seed):
    return compile_frog(generate_program(seed)).program


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_fast_forward_matches_functional_executor(seed):
    program = _compiled(seed)

    ex = Executor(program, _fresh_memory(seed))
    ex.regs.update(_initial_regs(seed))
    ex.run()

    ff = FastForwardExecutor(program, _fresh_memory(seed), _initial_regs(seed))
    executed = ff.run_to_halt()

    assert ff.halted, f"seed {seed}: fast-forward did not reach halt"
    assert executed > 0
    assert _memory_image(ff.memory) == _memory_image(ex.memory), (
        f"seed {seed}: fast-forward memory state diverged from the "
        f"functional executor"
    )
    assert ff.regs == ex.regs, (
        f"seed {seed}: fast-forward registers diverged from the "
        f"functional executor"
    )


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_detail_from_checkpoint_matches_detail_from_zero(seed):
    """FF to a mid-program boundary + detailed engine from the checkpoint
    must finish in the same architectural state as a detailed run from
    instruction zero (with full speculation enabled)."""
    program = _compiled(seed)
    machine = default_machine()

    reference = Engine(
        machine, program, _fresh_memory(seed), _initial_regs(seed)
    )
    reference.run()
    ref_memory = _memory_image(reference.memory)
    ref_regs = dict(reference.order[0].regs)

    total = FastForwardExecutor(
        program, _fresh_memory(seed), _initial_regs(seed)
    ).run_to_halt()
    assert total > 3
    boundaries = sorted({total // 3, (2 * total) // 3})
    checkpoints = collect_checkpoints(
        program, _fresh_memory(seed), _initial_regs(seed), boundaries
    )

    for boundary, cp in checkpoints.items():
        assert cp.icount == boundary
        resumed = Engine(
            machine, program, cp.engine_memory(), dict(cp.regs),
            warm_caches=False, initial_pc=cp.pc,
        )
        resumed.run()
        assert _memory_image(resumed.memory) == ref_memory, (
            f"seed {seed}, boundary {boundary}: resumed memory state "
            f"diverged from the detailed run from zero"
        )
        assert dict(resumed.order[0].regs) == ref_regs, (
            f"seed {seed}, boundary {boundary}: resumed registers "
            f"diverged from the detailed run from zero"
        )


def test_checkpoint_memory_is_isolated_per_window():
    """Engines started from the same checkpoint must not see each other's
    stores — ``engine_memory`` hands out independent copies."""
    program = _compiled(0)
    total = FastForwardExecutor(
        program, _fresh_memory(0), _initial_regs(0)
    ).run_to_halt()
    cp = collect_checkpoints(
        program, _fresh_memory(0), _initial_regs(0), [total // 2]
    )[total // 2]

    snapshot = _memory_image(cp.memory)
    first = Engine(default_machine(), program, cp.engine_memory(),
                   dict(cp.regs), warm_caches=False, initial_pc=cp.pc)
    first.run()
    assert _memory_image(cp.memory) == snapshot, (
        "running a window mutated the checkpoint's private snapshot"
    )


def test_fast_forward_run_to_is_exact():
    """``run_to`` must stop at exactly the requested icount so checkpoint
    boundaries line up with BBV interval boundaries."""
    program = _compiled(1)
    ff = FastForwardExecutor(program, _fresh_memory(1), _initial_regs(1))
    total = FastForwardExecutor(
        program, _fresh_memory(1), _initial_regs(1)
    ).run_to_halt()
    target = total // 2
    ff.run_to(target)
    assert ff.icount == target
    assert not ff.halted
