"""Tests for constant folding and loop-invariant code motion."""

import pytest

from repro.compiler import (
    CompileOptions,
    compile_frog,
    fold_constants,
    hoist_invariants,
    lower_module,
    optimize,
)
from repro.compiler.ir import IROp
from repro.lang import parse
from repro.uarch import SparseMemory
from repro.uarch.executor import Executor


def lower(source):
    return lower_module(parse(source))["main"]


def run_main(source, args=(), memory=None, result_reg="r1", **opt):
    result = compile_frog(source, CompileOptions(**opt))
    ex = Executor(result.program, memory or SparseMemory())
    for reg, value in zip(("r1", "r2", "r3", "r4"), args):
        ex.regs[reg] = value
    ex.run()
    return ex.regs[result_reg], result


def test_fold_constants_evaluates_arithmetic():
    func = lower("fn main() -> int { return (2 + 3) * 4; }")
    folds = fold_constants(func)
    assert folds >= 2
    optimize(func)
    # The whole expression collapsed to a constant move.
    instrs = list(func.instructions())
    assert all(i.op in (IROp.MOV, IROp.FMOV) for i in instrs)


def test_fold_preserves_wraparound_semantics():
    src = "fn main() -> int { return 9223372036854775807 + 1; }"
    plain, _ = run_main(src)
    folded, _ = run_main(src, fold_constants=True)
    assert plain == folded == -(1 << 63)


def test_fold_float_constants():
    src = "fn main() -> float { return 1.5 * 4.0 - 0.5; }"
    plain, _ = run_main(src, result_reg="f1")
    folded, _ = run_main(src, result_reg="f1", fold_constants=True)
    assert plain == folded == 5.5


def test_licm_hoists_invariant_address_math():
    source = """
    fn main(a: ptr<int>, n: int, k: int) -> int {
        var s: int = 0;
        for (var i: int = 0; i < n; i = i + 1) {
            s = s + a[i] * (k * 3);
        }
        return s;
    }
    """
    func = lower(source)
    optimize(func)
    before = {b.name: len(b.instrs) for b in func.blocks}
    hoisted = hoist_invariants(func)
    assert hoisted >= 1
    func.validate()


def test_licm_does_not_hoist_loop_carried_defs():
    source = """
    fn main(n: int) -> int {
        var s: int = 0;
        for (var i: int = 0; i < n; i = i + 1) { s = s + 2; }
        return s;
    }
    """
    func = lower(source)
    optimize(func)
    hoist_invariants(func)
    value_plain, _ = run_main(source, args=(7,))
    value_licm, _ = run_main(source, args=(7,), licm=True)
    assert value_plain == value_licm == 14


def test_licm_zero_trip_loop_safe():
    source = """
    fn main(n: int, k: int) -> int {
        var t: int = 99;
        for (var i: int = 0; i < n; i = i + 1) {
            t = k * 5;
        }
        return t;
    }
    """
    # With n == 0, t must stay 99 even when the k*5 could be hoisted.
    plain, _ = run_main(source, args=(0, 7))
    licm, _ = run_main(source, args=(0, 7), licm=True)
    assert plain == licm == 99


@pytest.mark.parametrize("flags", [
    {}, {"fold_constants": True}, {"licm": True},
    {"fold_constants": True, "licm": True},
])
def test_optimised_kernel_equivalence(flags):
    source = """
    fn main(dst: ptr<int>, src: ptr<int>, n: int) -> int {
        var check: int = 0;
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            dst[i] = src[i] * (3 + 4) + n * 2;
        }
        for (var j: int = 0; j < n; j = j + 1) {
            check = check + dst[j];
        }
        return check;
    }
    """
    mem = SparseMemory()
    mem.store_int_array(0x8000, [(5 * i) % 11 for i in range(20)])
    value, result = run_main(source, args=(0x1000, 0x8000, 20), memory=mem,
                             **flags)
    expected = sum(((5 * i) % 11) * 7 + 40 for i in range(20))
    assert value == expected
    # Hints still inserted under the extra passes.
    assert len(result.annotated_loops) == 1


def test_licm_shrinks_loop_bodies():
    source = """
    fn main(a: ptr<float>, n: int, scale: float) {
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            a[i] = a[i] * (scale * 2.0 + 1.0);
        }
    }
    """
    plain = compile_frog(source)
    licm = compile_frog(source, CompileOptions(licm=True))
    assert len(licm.program) <= len(plain.program)
