"""Unit tests for the assembler and Program container."""

import pytest

from repro.errors import AssemblerError
from repro.isa import Instruction, OpClass, Opcode, Program, assemble


def test_assemble_simple_program():
    prog = assemble(
        """
        # sum the numbers 1..10
        li r1, 0
        li r2, 10
        loop:
        add r1, r1, r2
        sub r2, r2, 1
        bnez r2, loop
        halt
        """
    )
    assert len(prog) == 6
    assert prog.labels["loop"] == 2
    assert prog[4].target_index == 2


def test_labels_share_line_with_instruction():
    prog = assemble("start: li r1, 5\n jmp start\n")
    assert prog.labels["start"] == 0
    assert prog[1].target_index == 0


def test_comments_and_blank_lines_ignored():
    prog = assemble("\n# full comment\n  li r1, 1 ; trailing\n\nhalt\n")
    assert len(prog) == 2
    assert prog[0].opcode is Opcode.LI


def test_memory_size_suffixes():
    prog = assemble(
        """
        load r1, r2, 0
        load4 r1, r2, 4
        load2 r1, r2, 8
        load1 r1, r2, 12
        store8 r1, r2, 16
        fstore4 f1, r2, 24
        halt
        """
    )
    assert [i.size for i in prog][:6] == [8, 4, 2, 1, 8, 4]
    assert prog[5].opcode is Opcode.FSTORE


def test_alu_immediate_form():
    prog = assemble("add r1, r2, 42\nhalt\n")
    assert prog[0].imm == 42
    assert prog[0].srcs == ("r2",)


def test_alu_register_form():
    prog = assemble("add r1, r2, r3\nhalt\n")
    assert prog[0].imm is None
    assert prog[0].srcs == ("r2", "r3")


def test_hint_instructions_resolve_region():
    prog = assemble(
        """
        detach cont
        nop
        cont:
        reattach cont
        sync cont
        halt
        """
    )
    assert prog[0].opcode is Opcode.DETACH
    assert prog[0].region_index == prog.labels["cont"]
    assert prog.has_hints
    assert prog.hint_regions() == {"cont": prog.labels["cont"]}


def test_hex_and_float_immediates():
    prog = assemble("li r1, 0x10\nfli f1, 2.5\nhalt\n")
    assert prog[0].imm == 16
    assert prog[1].imm == 2.5


def test_negative_immediates():
    prog = assemble("li r1, -3\nadd r1, r1, -5\nhalt\n")
    assert prog[0].imm == -3
    assert prog[1].imm == -5


def test_undefined_label_raises():
    with pytest.raises(AssemblerError):
        assemble("jmp nowhere\nhalt\n")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError):
        assemble("a: nop\na: halt\n")


def test_unknown_opcode_raises():
    with pytest.raises(AssemblerError):
        assemble("frobnicate r1, r2\n")


def test_bad_register_raises():
    with pytest.raises(AssemblerError):
        assemble("add r1, r99, r2\nhalt\n")


def test_wrong_operand_count_raises():
    with pytest.raises(AssemblerError):
        assemble("add r1, r2\nhalt\n")


def test_trailing_label_gets_implicit_halt():
    prog = assemble("jmp end\nend:\n")
    assert prog[prog.labels["end"]].opcode is Opcode.HALT


def test_without_hints_replaces_hints_with_nops():
    prog = assemble(
        """
        detach cont
        nop
        cont: reattach cont
        halt
        """
    )
    stripped = prog.without_hints()
    assert not stripped.has_hints
    assert len(stripped) == len(prog)
    assert stripped[0].opcode is Opcode.NOP
    # Labels survive so branches still resolve.
    assert stripped.labels["cont"] == prog.labels["cont"]


def test_disassemble_roundtrip_contains_labels():
    prog = assemble("start: li r1, 1\njmp start\n")
    listing = prog.disassemble()
    assert "start" in listing
    assert "li" in listing


def test_op_classes():
    prog = assemble(
        "add r1, r2, r3\nmul r1, r2, r3\nfload f1, r2, 0\nbeqz r1, out\nout: halt\n"
    )
    assert prog[0].op_class is OpClass.INT_ALU
    assert prog[1].op_class is OpClass.INT_MUL
    assert prog[2].op_class is OpClass.MEM_READ
    assert prog[3].op_class is OpClass.BRANCH


def test_reads_and_writes_sets():
    prog = assemble("store r1, r2, 0\ncall f\nf: ret\n")
    store, call, ret = prog[0], prog[1], prog[2]
    assert store.reads() == ("r1", "r2")
    assert store.writes() == ()
    assert call.writes() == ("ra",)
    assert ret.reads() == ("ra",)


def test_program_out_of_band_labels():
    instrs = [Instruction(Opcode.NOP), Instruction(Opcode.HALT)]
    prog = Program(instrs, {"end": 1}, name="manual")
    assert prog.labels["end"] == 1
    assert prog.label_at(1) == "end"
