"""Keep docs/observability.md in lock-step with the code.

The metrics catalog is a public schema; a registered metric that is not
documented (or a documented metric that no longer exists) is a doc bug
this test catches mechanically.
"""

import re
from pathlib import Path

from repro.obs.metrics import load_all

DOC = Path(__file__).resolve().parent.parent / "docs" / "observability.md"


def _documented_metrics(text):
    # Catalog rows look like: | `uarch.ssb.reads` | counter | ... |
    return set(re.findall(r"^\| `([a-z0-9_.]+)` \|", text, re.MULTILINE))


def test_observability_doc_lists_every_metric():
    registry = load_all()
    documented = _documented_metrics(DOC.read_text())
    registered = {spec.name for spec in registry.specs()}

    missing = sorted(registered - documented)
    assert not missing, (
        f"metrics registered but absent from docs/observability.md "
        f"(regenerate the catalog section with "
        f"MetricsRegistry.catalog()): {missing}"
    )
    phantom = sorted(documented - registered)
    assert not phantom, (
        f"metrics documented in docs/observability.md but not registered "
        f"anywhere: {phantom}"
    )


def test_doc_mentions_every_subsystem():
    registry = load_all()
    text = DOC.read_text()
    for subsystem in registry.subsystems():
        assert f"### `{subsystem}`" in text, subsystem
