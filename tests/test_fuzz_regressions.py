"""Replay the checked-in fuzz corpus as a permanent regression suite.

Every file in ``tests/fuzz_corpus/`` is one minimized fuzz survivor.  The
replay contract depends on the entry's ``expect`` key.  ``oracle-fires``
entries pin live failure signals: the oracle that originally flagged the
program must fire again, on the fast *and* the reference engine path.
``states-match`` entries pin a *fixed* defect (the cross-region packing
divergence repaired in engine schema v2): the oracle must fire on
neither path, the LoopFrog core must commit exactly the functional
executor's memory, and the program must still reach the repaired path
(``fixed_path_trigger``).  In both cases the engine paths must stay
bit-identical to each other.
"""

import os

import pytest

from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    EXPECT_STATES_MATCH,
    entry_workload,
    fixed_path_trigger,
    load_corpus,
    replay_entry,
)
from repro.fuzz.engine import execute_spec
from repro.fuzz.oracles import ORACLES
from repro.uarch.core import set_engine_reference_mode

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


def _entries():
    return load_corpus(CORPUS_DIR)


ENTRIES = _entries()


def test_corpus_is_populated():
    assert len(ENTRIES) >= 5
    # More than one failure mode is represented.
    assert len({e.oracle for e in ENTRIES}) >= 2


def test_default_corpus_dir_matches():
    assert os.path.abspath(CORPUS_DIR) == os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", DEFAULT_CORPUS_DIR)
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.name for e in ENTRIES]
)
def test_replay_oracle_still_fires(entry):
    ok, message = replay_entry(entry)
    assert ok, f"{entry.name}: {message}"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.name for e in ENTRIES]
)
def test_replay_state_contract(entry):
    """Every survivor must now match the functional executor: the
    divergence entries were fixed (and flipped to ``states-match``), and
    no other oracle tolerates committed-state drift."""
    case = execute_spec(entry.program)
    assert case.frog_image == case.exec_image


def test_divergence_entries_flipped_and_triggering():
    """The former divergence pins are flipped and still reach the
    repaired cross-region packing path."""
    flipped = [e for e in ENTRIES if e.expect == EXPECT_STATES_MATCH]
    assert len(flipped) >= 4
    assert all(e.oracle == "state_divergence" for e in flipped)
    for entry in flipped:
        case = execute_spec(entry.program)
        assert fixed_path_trigger(case) is not None, (
            f"{entry.name}: no longer exercises the fixed path"
        )


def test_entries_are_minimized():
    """The minimizer must have reached a fixpoint on every entry: no
    strictly-simpler neighbour may still satisfy the entry's predicate
    (the recorded oracle, or — for flipped entries — the fixed-path
    trigger)."""
    from repro.fuzz.engine import _shrink_candidates

    for entry in ENTRIES:
        if entry.expect == EXPECT_STATES_MATCH:
            predicate = fixed_path_trigger
        else:
            predicate = ORACLES[entry.oracle]
        for candidate in _shrink_candidates(entry.program):
            try:
                detail = predicate(execute_spec(candidate))
            except Exception:
                detail = None
            assert detail is None, (
                f"{entry.name}: simpler neighbour still fires"
            )


def test_entries_convert_to_workloads():
    for entry in ENTRIES:
        workload = entry_workload(entry)
        assert workload.name == entry.name
        memory, regs = workload.fresh_input()
        ref_memory, ref_regs = entry.program.fresh_input()
        assert regs == ref_regs
        img = lambda m: {  # noqa: E731
            a: m.load_byte(a) for a in m.written_addresses()
        }
        assert img(memory) == img(ref_memory)


def test_replay_reports_engine_parity():
    """replay_entry's parity leg really exercises both engine paths."""
    entry = ENTRIES[0]
    set_engine_reference_mode(True)
    try:
        reference = execute_spec(entry.program)
    finally:
        set_engine_reference_mode(None)
    fast = execute_spec(entry.program)
    assert fast.stats.cycles == reference.stats.cycles
    assert fast.frog_image == reference.frog_image
