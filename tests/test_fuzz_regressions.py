"""Replay the checked-in fuzz corpus as a permanent regression suite.

Every file in ``tests/fuzz_corpus/`` is one minimized fuzz survivor.  The
replay contract: the oracle that originally flagged the program must fire
again, on the fast *and* the reference engine path, and the two paths
must stay bit-identical to each other.  For every oracle except
``state_divergence`` the LoopFrog core must also commit exactly the
functional executor's memory (divergence survivors *pin* a known engine
bug — see docs/workloads.md — so for those the mismatch is the expected
behaviour until the engine is fixed).
"""

import os

import pytest

from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    entry_workload,
    load_corpus,
    replay_entry,
)
from repro.fuzz.engine import execute_spec
from repro.fuzz.oracles import ORACLES
from repro.uarch.core import set_engine_reference_mode

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


def _entries():
    return load_corpus(CORPUS_DIR)


ENTRIES = _entries()


def test_corpus_is_populated():
    assert len(ENTRIES) >= 5
    # More than one failure mode is represented.
    assert len({e.oracle for e in ENTRIES}) >= 2


def test_default_corpus_dir_matches():
    assert os.path.abspath(CORPUS_DIR) == os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", DEFAULT_CORPUS_DIR)
    )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.name for e in ENTRIES]
)
def test_replay_oracle_still_fires(entry):
    ok, message = replay_entry(entry)
    assert ok, f"{entry.name}: {message}"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.name for e in ENTRIES]
)
def test_replay_state_contract(entry):
    """Non-divergence survivors must match the functional executor."""
    if entry.oracle == "state_divergence":
        pytest.skip("entry pins a known divergence (see docs/workloads.md)")
    case = execute_spec(entry.program)
    assert case.frog_image == case.exec_image


def test_entries_are_minimized():
    """The minimizer must have reached a fixpoint on every entry: no
    strictly-simpler neighbour may still fire the recorded oracle."""
    from repro.fuzz.engine import _shrink_candidates

    for entry in ENTRIES:
        oracle = ORACLES[entry.oracle]
        for candidate in _shrink_candidates(entry.program):
            try:
                detail = oracle(execute_spec(candidate))
            except Exception:
                detail = None
            assert detail is None, (
                f"{entry.name}: simpler neighbour still fires"
            )


def test_entries_convert_to_workloads():
    for entry in ENTRIES:
        workload = entry_workload(entry)
        assert workload.name == entry.name
        memory, regs = workload.fresh_input()
        ref_memory, ref_regs = entry.program.fresh_input()
        assert regs == ref_regs
        img = lambda m: {  # noqa: E731
            a: m.load_byte(a) for a in m.written_addresses()
        }
        assert img(memory) == img(ref_memory)


def test_replay_reports_engine_parity():
    """replay_entry's parity leg really exercises both engine paths."""
    entry = ENTRIES[0]
    set_engine_reference_mode(True)
    try:
        reference = execute_spec(entry.program)
    finally:
        set_engine_reference_mode(None)
    fast = execute_spec(entry.program)
    assert fast.stats.cycles == reference.stats.cycles
    assert fast.frog_image == reference.frog_image
