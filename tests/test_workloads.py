"""Tests for the SPEC-stand-in workloads and suite definitions."""

import pytest

from repro.errors import WorkloadError
from repro.uarch.executor import Executor
from repro.workloads import (
    ALL_CATEGORIES,
    get_benchmark,
    get_workload,
    profitable_2017,
    suite,
)


def test_suite_sizes():
    assert len(suite("spec2017")) == 20
    assert len(suite("spec2006")) == 17


def test_unknown_suite_raises():
    with pytest.raises(WorkloadError):
        suite("spec2029")


def test_unknown_workload_raises():
    with pytest.raises(WorkloadError):
        get_workload("nope")


def test_profitable_2017_is_thirteen():
    # The paper reports 13 of 20 CPU 2017 benchmarks profitable.
    assert len(profitable_2017()) == 13


def test_benchmark_weights_normalised():
    for name in ("spec2017", "spec2006"):
        for bench in suite(name):
            assert sum(w for _, w in bench.phases) == pytest.approx(1.0)


def test_every_workload_compiles_with_one_annotated_loop():
    for name in ("spec2017", "spec2006"):
        for bench in suite(name):
            for workload, _ in bench.phases:
                result = workload.compiled()
                assert len(result.annotated_loops) >= 1, workload.name
                assert not result.rejected_loops, (
                    workload.name,
                    [r.reason for r in result.rejected_loops],
                )


def test_every_workload_runs_functionally():
    for name in ("spec2017", "spec2006"):
        for bench in suite(name):
            for workload, _ in bench.phases:
                memory, regs = workload.fresh_input()
                ex = Executor(workload.program, memory)
                ex.regs.update(regs)
                ex.run(max_instructions=3_000_000)
                assert ex.halted, workload.name
                assert 500 < ex.instruction_count < 500_000, (
                    workload.name, ex.instruction_count,
                )


def test_inputs_are_deterministic():
    wl = get_workload("imagick_conv")
    m1, r1 = wl.fresh_input()
    m2, r2 = wl.fresh_input()
    assert r1 == r2
    assert m1 == m2


def test_compiled_results_cached():
    wl = get_workload("mcf_arcs")
    assert wl.compiled() is wl.compiled()
    assert wl.compiled(hints=False) is not wl.compiled()
    assert not wl.compiled(hints=False).program.has_hints


def test_categories_assigned_to_phases():
    for bench in suite("spec2017"):
        for workload, _ in bench.phases:
            if bench.profitable:
                assert workload.category in ALL_CATEGORIES, workload.name


def test_get_benchmark():
    bench = get_benchmark("imagick")
    assert bench.suite == "spec2017"
    assert bench.profitable
    with pytest.raises(WorkloadError):
        get_benchmark("quake")


def test_no_speedup_set_matches_paper():
    # Section 6.4.3 names these as showing little or no speedup.
    names = {b.name for b in suite("spec2017") if not b.profitable}
    for paper_name in ("namd", "lbm", "blender", "deepsjeng", "leela", "xz"):
        assert paper_name in names
