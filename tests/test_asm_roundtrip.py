"""Round-trip property: Program -> to_asm() -> assemble() is structurally
identical, for hand-written asm and for every compiled workload."""

import pytest

from repro.compiler import compile_frog
from repro.isa import Program, assemble
from repro.uarch import SparseMemory
from repro.uarch.executor import Executor


def structurally_equal(a: Program, b: Program) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a.instructions, b.instructions):
        if (
            x.opcode != y.opcode
            or x.dest != y.dest
            or x.srcs != y.srcs
            or x.imm != y.imm
            or x.size != y.size
            or x.target_index != y.target_index
            or x.region_index != y.region_index
        ):
            return False
    return True


def test_roundtrip_simple_asm():
    prog = assemble(
        """
        li r1, 10
        loop:
        sub r1, r1, 1
        bnez r1, loop
        fstore4 f1, r2, 16
        load2 r3, r2, -4
        halt
        """
    )
    again = assemble(prog.to_asm())
    assert structurally_equal(prog, again)


def test_roundtrip_hints():
    prog = assemble(
        """
        detach cont
        nop
        reattach cont
        cont: sync cont
        halt
        """
    )
    again = assemble(prog.to_asm())
    assert structurally_equal(prog, again)
    assert again[0].region_index == prog[0].region_index


def test_roundtrip_float_immediates():
    prog = assemble("fli f1, 2.5\nfadd f2, f1, 0.125\nhalt\n")
    again = assemble(prog.to_asm())
    assert structurally_equal(prog, again)


@pytest.mark.parametrize("name", ["imagick_conv", "omnetpp_events",
                                  "xz_match", "hmmer_viterbi"])
def test_roundtrip_compiled_workloads(name):
    from repro.workloads import get_workload

    wl = get_workload(name)
    prog = wl.program
    again = assemble(prog.to_asm())
    assert structurally_equal(prog, again)


def test_roundtrip_preserves_behaviour():
    source = """
    fn main(dst: ptr<int>, n: int) -> int {
        var acc: int = 0;
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            dst[i] = i * 7;
        }
        for (var j: int = 0; j < n; j = j + 1) {
            acc = acc + dst[j];
        }
        return acc;
    }
    """
    prog = compile_frog(source).program
    again = assemble(prog.to_asm())

    def run(p):
        ex = Executor(p, SparseMemory())
        ex.regs.update({"r1": 0x1000, "r2": 16})
        ex.run()
        return ex.regs["r1"]

    assert run(prog) == run(again) == 7 * sum(range(16))
