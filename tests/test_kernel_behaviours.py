"""Behavioural pins for the SPEC stand-in kernels.

Each kernel is engineered to exhibit a specific bottleneck (DESIGN.md's
substitution argument rests on this); these tests pin those behaviours so
workload edits can't silently change what a kernel measures.
"""

import pytest

from repro.uarch import BaselineCore, LoopFrogCore
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def results():
    cache = {}

    def run(name):
        if name not in cache:
            wl = get_workload(name)
            mem, regs = wl.fresh_input()
            base = BaselineCore().run(wl.program, mem, regs)
            mem, regs = wl.fresh_input()
            frog = LoopFrogCore().run(wl.program, mem, regs)
            cache[name] = (base.stats, frog.stats)
        return cache[name]

    return run


def test_saturated_fp_baseline_is_high_ipc(results):
    base, frog = results("namd_fma")
    assert base.ipc > 6.0            # pipeline already near the 8-wide cap
    assert frog.cycles > base.cycles * 0.93  # almost nothing to gain


def test_event_queue_is_mispredict_and_miss_bound(results):
    base, _ = results("omnetpp_events")
    assert base.branch_mpki > 10
    assert base.l1d_miss_rate > 0.3


def test_network_flow_misses_reach_dram(results):
    base, _ = results("mcf_arcs")
    assert base.l2_misses > 50       # the cold far region really misses


def test_lz_match_conflicts_under_speculation(results):
    _, frog = results("xz_match")
    assert frog.squash_conflicts > 0


def test_huge_body_exceeds_slice_capacity(results):
    # One iteration's write set (280 contiguous doubles = 2240 B) exceeds
    # the 2-KiB slice, so speculation cannot buffer an epoch...
    from repro.uarch.config import LoopFrogConfig

    assert 280 * 8 > LoopFrogConfig().slice_bytes
    # ...and LoopFrog gains (essentially) nothing on this kernel.
    base, frog = results("lbm_collide")
    assert frog.cycles > base.cycles * 0.95


def test_hist_prefetch_mostly_fails_but_wins(results):
    base, frog = results("gcc_alias")
    assert frog.failed_spec_instructions > frog.spec_committed_instructions
    assert frog.cycles < base.cycles


def test_scan_prefetch_sync_squashes(results):
    _, frog = results("povray_texture")
    assert frog.squash_syncs > 5     # every early exit kills successors


def test_md_force_is_latency_bound_not_miss_bound(results):
    base, _ = results("nab_force")
    assert base.branch_mpki < 3
    assert base.l1d_miss_rate < 0.1
    assert base.ipc < 4.0            # sqrt/div chains hold IPC down


def test_stream_op_packs_iterations(results):
    _, frog = results("libq_toffoli")
    assert frog.packing_events > 0
    assert frog.mean_packing_factor > 4


def test_tiny_loop_unprofitable(results):
    base, frog = results("leela_playout")
    assert frog.cycles > base.cycles  # dynamic deselection handles it


def test_transpose_parallelises_at_full_associativity(results):
    base, frog = results("imagick_rotate")
    assert frog.cycles < base.cycles * 0.8


def test_dp_row_reenters_region_per_row(results):
    _, frog = results("hmmer_viterbi")
    region = next(r for k, r in frog.regions.items() if k != "<none>")
    assert region.epochs_spawned > 20  # many rows, each spawning epochs
