"""Error-path tests for the Frog lowering and type checking."""

import pytest

from repro.compiler import compile_frog
from repro.errors import CompilerError


def expect_error(source, fragment):
    with pytest.raises(CompilerError) as info:
        compile_frog(source)
    assert fragment in str(info.value)


def test_undefined_variable():
    expect_error("fn main() -> int { return x; }", "undefined variable")


def test_redeclaration():
    expect_error(
        "fn main() { var a: int = 1; var a: int = 2; }", "redeclaration"
    )


def test_indexing_non_pointer():
    expect_error(
        "fn main(a: int) -> int { return a[0]; }", "non-pointer"
    )


def test_float_array_index():
    expect_error(
        "fn main(p: ptr<int>, x: float) -> int { return p[x]; }",
        "index must be an integer",
    )


def test_break_outside_loop():
    expect_error("fn main() { break; }", "outside a loop")


def test_continue_outside_loop():
    expect_error("fn main() { continue; }", "outside a loop")


def test_call_undefined_function():
    expect_error("fn main() -> int { return f(1); }", "undefined function")


def test_wrong_arity():
    expect_error(
        "fn f(a: int) -> int { return a; } fn main() -> int { return f(1, 2); }",
        "argument",
    )


def test_return_value_from_void_inline():
    expect_error(
        "fn f() { return 1; } fn main() { f(); }",
        "void function",
    )


def test_missing_entry_function():
    expect_error("fn helper() { }", "no function named")


def test_intrinsic_arity():
    expect_error("fn main() -> float { return sqrt(1.0, 2.0); }", "expects 1")


def test_float_modulo_rejected():
    expect_error(
        "fn main(x: float) -> float { return x % 2.0; }", "unsupported"
    )


def test_too_many_int_parameters():
    params = ", ".join(f"p{i}: int" for i in range(6))
    expect_error(f"fn main({params}) {{ }}", "too many")
