"""Unit tests for the Frog lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast, parse, tokenize
from repro.lang.tokens import TokenKind


def test_tokenize_basic():
    toks = tokenize("fn main() -> int { return 1; }")
    kinds = [t.kind for t in toks]
    assert kinds[0] is TokenKind.KW_FN
    assert kinds[-1] is TokenKind.EOF


def test_tokenize_numbers():
    toks = tokenize("1 2.5 0x1f 1e3")
    assert toks[0].value == 1
    assert toks[1].value == 2.5
    assert toks[2].value == 31
    assert toks[3].value == 1000.0


def test_tokenize_operators():
    toks = tokenize("== != <= >= && || << >> ->")
    kinds = [t.kind for t in toks[:-1]]
    assert kinds == [
        TokenKind.EQ, TokenKind.NE, TokenKind.LE, TokenKind.GE,
        TokenKind.ANDAND, TokenKind.OROR, TokenKind.SHL, TokenKind.SHR,
        TokenKind.ARROW,
    ]


def test_comments_ignored_but_pragma_kept():
    toks = tokenize("// nothing\n# also nothing\n#pragma loopfrog\n1")
    pragmas = [t for t in toks if t.kind is TokenKind.PRAGMA]
    assert len(pragmas) == 1
    assert pragmas[0].value == "loopfrog"


def test_bad_character_raises():
    with pytest.raises(ParseError):
        tokenize("fn main() { @ }")


def test_parse_function_signature():
    mod = parse("fn f(a: int, b: ptr<float>) -> float { return 0.0; }")
    f = mod.function("f")
    assert f.params[0] == ("a", ast.INT)
    assert f.params[1][1].is_ptr
    assert f.params[1][1].elem == ast.FLOAT
    assert f.ret_type == ast.FLOAT


def test_parse_nested_ptr_type():
    mod = parse("fn f(a: ptr<ptr<int32>>) { }")
    t = mod.function("f").params[0][1]
    assert t.is_ptr and t.elem.is_ptr and t.elem.elem == ast.INT32


def test_parse_for_loop_with_pragma():
    mod = parse(
        """
        fn main(n: int) -> int {
            var s: int = 0;
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                s = s + i;
            }
            return s;
        }
        """
    )
    body = mod.function("main").body
    loop = next(s for s in body.stmts if isinstance(s, ast.For))
    assert loop.pragma == "loopfrog"
    assert isinstance(loop.init, ast.VarDecl)
    assert isinstance(loop.cond, ast.BinOp)


def test_parse_while_loop():
    mod = parse("fn main() { var x: int = 5; while (x > 0) { x = x - 1; } }")
    loop = mod.function("main").body.stmts[1]
    assert isinstance(loop, ast.While)
    assert loop.pragma is None


def test_parse_if_else_chain():
    mod = parse(
        """
        fn main(x: int) -> int {
            if (x > 0) { return 1; }
            else if (x < 0) { return -1; }
            else { return 0; }
        }
        """
    )
    stmt = mod.function("main").body.stmts[0]
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.els.stmts[0], ast.If)


def test_parse_indexing_and_assignment():
    mod = parse("fn f(a: ptr<int>) { a[0] = a[1] + 2; }")
    assign = mod.function("f").body.stmts[0]
    assert isinstance(assign, ast.Assign)
    assert isinstance(assign.target, ast.Index)


def test_parse_operator_precedence():
    mod = parse("fn f() -> int { return 1 + 2 * 3; }")
    ret = mod.function("f").body.stmts[0]
    assert isinstance(ret.value, ast.BinOp)
    assert ret.value.op == "+"
    assert isinstance(ret.value.right, ast.BinOp)
    assert ret.value.right.op == "*"


def test_parse_comparison_binds_looser_than_arith():
    mod = parse("fn f(a: int) -> int { return a + 1 < a * 2; }")
    cmp_expr = mod.function("f").body.stmts[0].value
    assert cmp_expr.op == "<"


def test_parse_call_and_cast():
    mod = parse("fn f(x: float) -> float { return sqrt(float(1) + x); }")
    call = mod.function("f").body.stmts[0].value
    assert isinstance(call, ast.Call)
    assert call.func == "sqrt"


def test_parse_break_continue():
    mod = parse(
        "fn f() { for (var i: int = 0; i < 9; i = i + 1) { "
        "if (i == 3) { continue; } if (i == 5) { break; } } }"
    )
    loop = mod.function("f").body.stmts[0]
    assert isinstance(loop, ast.For)


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as info:
        parse("fn main( { }")
    assert "1:" in str(info.value)


def test_parse_unterminated_block():
    with pytest.raises(ParseError):
        parse("fn main() { var x: int = 1;")


def test_pragma_only_attaches_to_next_loop():
    mod = parse(
        """
        fn main(n: int) {
            #pragma loopfrog
            while (n > 0) { n = n - 1; }
            while (n < 10) { n = n + 1; }
        }
        """
    )
    loops = [s for s in mod.function("main").body.stmts if isinstance(s, ast.While)]
    assert loops[0].pragma == "loopfrog"
    assert loops[1].pragma is None
