"""Golden digests: frozen store keys for two small workloads.

The persistent result store is content-addressed (docs/results_store.md):
a cache entry's key digests the compiled program, the workload's initial
machine state, every MachineConfig field, and ``ENGINE_SCHEMA_VERSION``.
These tests pin the exact hex values so that *any* unintentional change
to compilation output, workload setup, config defaults, or digest
canonicalisation shows up as a test failure instead of as a silently
cold (or worse, silently stale) result store.

If a failure here is *intentional* — you changed timing semantics, the
compiler's output, or a default config — bump ``ENGINE_SCHEMA_VERSION``
(for timing changes) or simply re-pin the values below, and note the
invalidation in the commit message.  Never re-pin to hide an unexplained
diff: an unexplained digest change means cached results no longer match
what a fresh simulation would produce.
"""

from repro.results.digest import machine_digest, run_digest, workload_digest
from repro.uarch.config import baseline_machine, default_machine
from repro.workloads.suites import suite


def _workload(name):
    for bench in suite("spec2017"):
        for workload, _weight in bench.phases:
            if workload.name == name:
                return workload
    raise AssertionError(f"workload {name} missing from spec2017")


GOLDEN = {
    "imagick_conv": {
        "workload": "3a940ea1a24892df540cb25882f7ea32"
                    "ef76729a70e46d2e0f7bc24caaff7227",
        "run_baseline": "462527654dba0f1b713471ce17d0ced"
                        "1ca7ee8da1a5828df3dba919b84f18d4c",
        "run_loopfrog": "3107ba40d0c68eb77f1f0b11e87c1b7"
                        "4c97d9b3ca48aca1746e4ba35a731bb74",
    },
    "omnetpp_events": {
        "workload": "1da1f2dda1fe071fd1a42d82fc8e47b7"
                    "916fdc4d43fb430a16ba42bd2002f2e7",
        "run_baseline": "0d375367a0f7149e4db0902fb4850ae"
                        "0dea4fee8117dfd5829908a17fdff3bc5",
        "run_loopfrog": "61bef74bf8e68dbf60bff5dccd23be0"
                        "40bd28702c3cb5685ad38eeb7f031b42c",
    },
}

MACHINE_BASELINE = (
    "b5c6fdc8ffac5081cd3990d897a3e873d2f9adc72f658b6f7505c8b310eb442f"
)
MACHINE_LOOPFROG = (
    "d68c02689c22a526b3af9cbb3addeb94791b7b5417f3f78c7e1c18d2dc0e3967"
)


def test_machine_digests_frozen():
    assert machine_digest(baseline_machine()) == MACHINE_BASELINE
    assert machine_digest(default_machine()) == MACHINE_LOOPFROG


def test_workload_digests_frozen():
    for name, golden in GOLDEN.items():
        assert workload_digest(_workload(name)) == golden["workload"], name


def test_run_digests_frozen():
    for name, golden in GOLDEN.items():
        wl = _workload(name)
        assert run_digest(wl, baseline_machine()) == golden["run_baseline"]
        assert run_digest(wl, default_machine()) == golden["run_loopfrog"]


def test_digests_are_memoised_consistently():
    """The memoised second call must return the identical value (the
    store depends on digest stability within a process)."""
    wl = _workload("imagick_conv")
    machine = default_machine()
    assert workload_digest(wl) == workload_digest(wl)
    assert machine_digest(machine) == machine_digest(machine)
    assert run_digest(wl, machine) == run_digest(wl, machine)
