"""Tests for the metrics registry (repro.obs.metrics).

The load-bearing test is the SimStats coverage contract: every counter
the engine maintains must be described by exactly one registered
MetricSpec, so new counters cannot be added without entering the
documented catalog.
"""

import dataclasses

import pytest

from repro.compiler import compile_frog
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricSpec,
    MetricsRegistry,
    default_registry,
    diff_snapshots,
    format_snapshot,
    load_all,
)
from repro.uarch import LoopFrogCore, SparseMemory
from repro.uarch.core import SimStats

# Fields that are deliberately outside the flat metric catalog.
# `regions` is a nested per-region breakdown (its own structured record,
# serialized separately), not a scalar metric.
UNCATALOGUED_SIMSTATS_FIELDS = {"regions"}


# ---------------------------------------------------------------------------
# Coverage contract
# ---------------------------------------------------------------------------

def test_every_simstats_field_has_exactly_one_spec():
    registry = load_all()
    field_names = {f.name for f in dataclasses.fields(SimStats)}
    covered = field_names - UNCATALOGUED_SIMSTATS_FIELDS

    source_counts = {}
    for spec in registry.specs():
        if spec.source is not None:
            source_counts[spec.source] = source_counts.get(spec.source, 0) + 1

    missing = sorted(
        name for name in covered if source_counts.get(name, 0) == 0
    )
    assert not missing, (
        f"SimStats fields without a MetricSpec (add them to the catalog "
        f"or to UNCATALOGUED_SIMSTATS_FIELDS with a reason): {missing}"
    )
    duplicated = sorted(
        name for name in covered if source_counts.get(name, 0) > 1
    )
    assert not duplicated, f"SimStats fields with multiple specs: {duplicated}"


def test_expected_subsystems_registered():
    registry = load_all()
    assert set(registry.subsystems()) >= {
        "compiler", "uarch.caches", "uarch.conflict", "uarch.core",
        "uarch.executor", "uarch.packing", "uarch.ssb",
    }


def test_collect_on_real_simulation_stats():
    load_all()
    source = """
    fn main(a: ptr<int>) {
        #pragma loopfrog
        for (var i: int = 0; i < 16; i = i + 1) {
            a[i] = a[i] + i;
        }
    }
    """
    program = compile_frog(source).program
    mem = SparseMemory()
    mem.store_int_array(0x1000, list(range(16)))
    sim = LoopFrogCore().run(program, mem, {"r1": 0x1000})

    snap = default_registry().collect(sim.stats, "uarch")
    assert snap["uarch.core.cycles"] == sim.stats.cycles > 0
    assert snap["uarch.core.threadlets_spawned"] > 0
    assert snap["uarch.ssb.writes"] == sim.stats.ssb_writes
    # Derived gauge: miss rate is in [0, 1].
    assert 0.0 <= snap["uarch.caches.l1d_miss_rate"] <= 1.0
    # No compiler metrics on a SimStats collect.
    assert not any(name.startswith("compiler.") for name in snap)


# ---------------------------------------------------------------------------
# MetricSpec / registry semantics
# ---------------------------------------------------------------------------

def test_spec_requires_exactly_one_of_source_and_derive():
    with pytest.raises(ValueError):
        MetricSpec("x.a", COUNTER, "x", "neither")
    with pytest.raises(ValueError):
        MetricSpec("x.a", COUNTER, "x", "both", source="a",
                   derive=lambda o: 1)
    with pytest.raises(ValueError):
        MetricSpec("x.a", "timer", "x", "bad kind", source="a")


def test_reregistration_identical_is_noop_different_is_error():
    reg = MetricsRegistry()
    spec = MetricSpec("x.a", COUNTER, "x", "d", source="a")
    reg.register(spec)
    reg.register(MetricSpec("x.a", COUNTER, "x", "d", source="a"))
    assert len(reg) == 1
    with pytest.raises(ValueError, match="different definition"):
        reg.register(MetricSpec("x.a", GAUGE, "x", "d", source="a"))


def test_collect_skips_missing_attrs_and_failing_derives():
    reg = MetricsRegistry()
    reg.register(
        MetricSpec("x.present", COUNTER, "x", "d", source="present"),
        MetricSpec("x.absent", COUNTER, "x", "d", source="absent"),
        MetricSpec("x.ratio", GAUGE, "x", "d",
                   derive=lambda o: o.present / o.zero),
        MetricSpec("x.boom", GAUGE, "x", "d",
                   derive=lambda o: o.nothing_here),
    )

    class Obj:
        present = 7
        zero = 0

    snap = reg.collect(Obj())
    assert snap == {"x.present": 7}


def test_histogram_values_are_key_sorted():
    reg = MetricsRegistry()
    reg.register(
        MetricSpec("x.h", HISTOGRAM, "x", "d", derive=lambda o: o.h)
    )

    class Obj:
        h = {"zulu": 1, "alpha": 2}

    snap = reg.collect(Obj())
    assert list(snap["x.h"]) == ["alpha", "zulu"]


def test_subsystem_filter_uses_prefix_boundaries():
    reg = MetricsRegistry()
    reg.register(
        MetricSpec("uarch.ssb.reads", COUNTER, "uarch.ssb", "d", source="a"),
        MetricSpec("uarch.ssbx.reads", COUNTER, "uarch.ssbx", "d",
                   source="b"),
    )
    names = [s.name for s in reg.specs("uarch.ssb")]
    assert names == ["uarch.ssb.reads"]  # no false prefix match on ssbx
    assert len(reg.specs("uarch")) == 2


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def test_diff_snapshots():
    before = {"a": 1, "b": 2}
    after = {"a": 1, "b": 3, "c": 4}
    assert diff_snapshots(before, after) == {
        "b": (2, 3), "c": (None, 4),
    }


def test_format_snapshot():
    text = format_snapshot({"b.metric": 2, "a.metric": 0.123456})
    lines = text.splitlines()
    assert lines[0].split() == ["a.metric", "0.1235"]
    assert lines[1].split() == ["b.metric", "2"]
    assert format_snapshot({}) == "(no metrics)"


def test_catalog_lists_every_metric():
    registry = load_all()
    text = registry.catalog()
    for spec in registry.specs():
        assert f"`{spec.name}`" in text
