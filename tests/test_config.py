"""Unit tests for machine configuration (table 1)."""

import pytest

from repro.errors import ConfigError
from repro.uarch.config import (
    CoreConfig,
    LoopFrogConfig,
    MemoryConfig,
    baseline_machine,
    default_machine,
    scaled_core,
)


def test_default_machine_matches_table1():
    m = default_machine()
    assert m.core.fetch_width == 8
    assert m.core.rob_size == 1024
    assert m.core.iq_size == 384
    assert m.core.lq_size == 256
    assert m.loopfrog.num_threadlets == 4
    assert m.loopfrog.ssb_total_bytes == 8 * 1024
    assert m.loopfrog.ssb_line_bytes == 32
    assert m.loopfrog.granule_bytes == 4
    assert m.loopfrog.conflict_check_latency == 4
    assert m.memory.l1d_size == 64 * 1024
    assert m.memory.l2_size == 4 * 1024 * 1024
    m.validate()


def test_baseline_machine_disables_speculation():
    m = baseline_machine()
    assert not m.loopfrog.enabled
    assert m.loopfrog.num_threadlets == 1
    m.validate()


def test_slice_geometry():
    lf = LoopFrogConfig()
    assert lf.slice_bytes == 2048
    assert lf.slice_lines == 64


def test_scaled_core_widths():
    narrow = scaled_core(4)
    wide = scaled_core(10)
    assert narrow.core.fetch_width == 4
    assert narrow.core.rob_size == 512
    assert wide.core.issue_width == 10
    assert wide.core.rob_size == 1280
    narrow.validate()
    wide.validate()


def test_scaled_core_rejects_zero():
    with pytest.raises(ConfigError):
        scaled_core(0)


def test_invalid_granule_rejected():
    lf = LoopFrogConfig(granule_bytes=3)
    with pytest.raises(ConfigError):
        lf.validate()


def test_granule_must_divide_line():
    lf = LoopFrogConfig(granule_bytes=16, ssb_line_bytes=24)
    with pytest.raises(ConfigError):
        lf.validate()


def test_zero_threadlets_rejected():
    lf = LoopFrogConfig(num_threadlets=0)
    with pytest.raises(ConfigError):
        lf.validate()


def test_cache_sets_must_be_power_of_two():
    mc = MemoryConfig(l1d_size=48 * 1024)  # 192 sets: not a power of two
    with pytest.raises(ConfigError):
        mc.validate()


def test_core_width_validation():
    core = CoreConfig(fetch_width=0)
    with pytest.raises(ConfigError):
        core.validate()
