"""Tests for the declarative WorkloadSpec layer (docs/workloads.md)."""

import pytest

from repro.errors import SpecError
from repro.workloads import specyaml
from repro.workloads.spec import (
    BenchmarkSpec,
    SuiteSpec,
    WorkloadSpec,
    build_suite,
    load_spec_file,
    parse_spec_document,
    register_spec_suite,
    template_names,
    template_params,
)
from repro.workloads.suites import available_suites, get_workload, suite


# ---------------------------------------------------------------------------
# specyaml: the deterministic YAML subset
# ---------------------------------------------------------------------------


ROUNDTRIP_DOCS = [
    {"a": 1, "b": "two", "c": True, "d": None, "e": 2.5},
    {"nested": {"x": [1, 2, 3], "y": {"deep": "value"}}},
    ["plain", "list", 3],
    [{"item": 1, "more": [1, 2]}, {"item": 2}],
    {"tricky": "needs: quoting", "empty_list": [], "empty_map": {}},
    {"text": "a # not a comment", "neg": -7, "hex-ish": "0x30008"},
]


@pytest.mark.parametrize("doc", ROUNDTRIP_DOCS)
def test_specyaml_roundtrip(doc):
    assert specyaml.load(specyaml.dump(doc)) == doc


@pytest.mark.parametrize("doc", ROUNDTRIP_DOCS)
def test_specyaml_dump_is_fixpoint(doc):
    once = specyaml.dump(doc)
    assert specyaml.dump(specyaml.load(once)) == once


def test_specyaml_sorted_keys():
    text = specyaml.dump({"zebra": 1, "apple": 2, "mango": 3})
    lines = [ln.split(":")[0] for ln in text.splitlines()]
    assert lines == sorted(lines)


def test_specyaml_comments_and_blank_lines():
    text = "a: 1  # trailing comment\n\n# full-line comment\nb: two\n"
    assert specyaml.load(text) == {"a": 1, "b": "two"}


@pytest.mark.parametrize("bad", [
    "a: [1, 2]\n",               # flow style
    "\ta: 1\n",                  # tabs
    "a: 1\na: 2\n",              # duplicate key
])
def test_specyaml_rejects_malformed(bad):
    with pytest.raises(SpecError, match="line"):
        specyaml.load(bad)


# ---------------------------------------------------------------------------
# WorkloadSpec
# ---------------------------------------------------------------------------


def test_template_registry_covers_generators():
    names = template_names()
    assert len(names) >= 20
    assert "stream_op" in names
    assert "convolution" in names
    # Every template advertises its tunable parameters sans name/seed.
    for template in names:
        params = template_params(template)
        assert "name" not in params
        assert "seed" not in params


def test_spec_yaml_roundtrip():
    spec = WorkloadSpec(
        template="stream_op", name="w", params={"n": 16}, seed=9,
        max_cycles=1_000_000, category="memory_parallelism",
    )
    again = WorkloadSpec.from_yaml(spec.to_yaml())
    assert again == spec


def test_spec_instantiate_uses_spec_seed():
    spec = WorkloadSpec(template="stream_op", name="w", params={"n": 8},
                        seed=1234)
    other = WorkloadSpec(template="stream_op", name="w", params={"n": 8},
                         seed=4321)
    w1, w2 = spec.instantiate(), other.instantiate()
    assert w1.seed == 1234 and w2.seed == 4321
    # Same spec, same seed: identical input image.
    m1, r1 = w1.fresh_input()
    m2, r2 = spec.instantiate().fresh_input()
    img = lambda m: {a: m.load_byte(a) for a in m.written_addresses()}  # noqa: E731
    assert img(m1) == img(m2) and r1 == r2


@pytest.mark.parametrize("data,match", [
    ({"template": "nope", "name": "x"}, "unknown template"),
    ({"name": "x"}, "template"),
    ({"template": "stream_op"}, "name"),
    ({"template": "stream_op", "name": "x", "params": {"bogus": 1}},
     "no parameter"),
    ({"template": "stream_op", "name": "x", "wat": 1}, "unknown"),
    ({"template": "stream_op", "name": "x", "seed": "abc"}, "seed"),
])
def test_spec_from_dict_rejects(data, match):
    with pytest.raises(SpecError, match=match):
        WorkloadSpec.from_dict(data)


def test_parse_document_shapes():
    one = parse_spec_document({"template": "stream_op", "name": "a"})
    assert isinstance(one, list) and len(one) == 1
    many = parse_spec_document([
        {"template": "stream_op", "name": "a"},
        {"template": "tiny_loop", "name": "b"},
    ])
    assert [s.name for s in many] == ["a", "b"]
    with pytest.raises(SpecError, match="duplicate"):
        parse_spec_document([
            {"template": "stream_op", "name": "a"},
            {"template": "tiny_loop", "name": "a"},
        ])
    with pytest.raises(SpecError):
        parse_spec_document("not a spec")


def test_load_spec_file_prefixes_path(tmp_path):
    path = tmp_path / "bad.yaml"
    path.write_text("template: [flow]\n")
    with pytest.raises(SpecError, match="bad.yaml"):
        load_spec_file(str(path))


# ---------------------------------------------------------------------------
# Suite documents
# ---------------------------------------------------------------------------


SUITE_DOC = {
    "suite": "unit_suite",
    "description": "two tiny benchmarks",
    "benchmarks": [
        {
            "name": "bench_one",
            "category": "memory_parallelism",
            "phases": [
                {"template": "stream_op", "name": "su_stream",
                 "params": {"n": 16}, "weight": 3},
                {"template": "tiny_loop", "name": "su_tiny",
                 "params": {"outer": 4}},
            ],
        },
        {
            "name": "bench_two",
            "phases": [
                {"template": "transpose", "name": "su_transpose",
                 "params": {"rows": 4, "cols": 4}},
            ],
        },
    ],
}


def test_suite_spec_weights_and_build():
    doc = SuiteSpec.from_dict(SUITE_DOC)
    assert doc.name == "unit_suite"
    benchmarks = build_suite(doc)
    assert [b.name for b in benchmarks] == ["bench_one", "bench_two"]
    weights = [w for _, w in benchmarks[0].phases]
    assert weights == pytest.approx([0.75, 0.25])
    # Workload category inherits the benchmark category when unset.
    assert all(
        w.category == "memory_parallelism" for w, _ in benchmarks[0].phases
    )


def test_register_spec_suite_visible_to_lookup():
    register_spec_suite(SuiteSpec.from_dict(SUITE_DOC))
    assert "unit_suite" in available_suites()
    assert [b.name for b in suite("unit_suite")] == ["bench_one", "bench_two"]
    assert get_workload("su_stream").seed is not None


def test_register_cannot_shadow_builtin():
    from repro.errors import WorkloadError
    from repro.workloads.suites import register_suite
    with pytest.raises(WorkloadError, match="shadows"):
        register_suite("spec2017", list(suite("spec2006")))


def test_suite_spec_rejects_malformed():
    with pytest.raises(SpecError, match="suite"):
        SuiteSpec.from_dict({"benchmarks": []})
    with pytest.raises(SpecError, match="benchmarks"):
        SuiteSpec.from_dict({"suite": "s"})
    with pytest.raises(SpecError, match="unknown suite key"):
        SuiteSpec.from_dict({"suite": "s", "benchmarks": [], "extra": 1})
    with pytest.raises(SpecError, match="weight"):
        BenchmarkSpec.from_dict({
            "name": "b",
            "phases": [{"template": "stream_op", "name": "x", "weight": 0}],
        })


# ---------------------------------------------------------------------------
# Workload seed handling (satellite b): mutation invalidates caches
# ---------------------------------------------------------------------------


def test_workload_seed_mutation_invalidates_digest():
    from repro.results.digest import workload_digest

    w = WorkloadSpec(template="stream_op", name="w", params={"n": 8},
                     seed=1).instantiate()
    before = workload_digest(w)
    assert workload_digest(w) == before  # memoized
    w.seed = 2
    after = workload_digest(w)
    assert after != before
    w.seed = 1
    assert workload_digest(w) == before


def test_workload_source_mutation_invalidates_compile_cache():
    w = WorkloadSpec(template="tiny_loop", name="w",
                     params={"outer": 4}).instantiate()
    first = w.compiled()
    assert w.compiled() is first  # cached
    w.source = w.source.replace("4", "5", 1)
    assert w.compiled() is not first
