"""Property-based tests (hypothesis) on core data structures and the
engine's fundamental invariant: speculation never changes semantics."""

import random

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_frog
from repro.uarch import BaselineCore, LoopFrogCore, SparseMemory
from repro.uarch.config import LoopFrogConfig
from repro.uarch.conflict import ConflictDetector
from repro.uarch.memory_state import (
    bits_to_float,
    float_to_bits,
    to_signed,
    to_unsigned,
)
from repro.uarch.ssb import SpeculativeStateBuffer


# ---------------------------------------------------------------------------
# SparseMemory
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=1 << 40),
    st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
    st.sampled_from([1, 2, 4, 8]),
)
def test_memory_roundtrip_truncates_to_size(addr, value, size):
    mem = SparseMemory()
    mem.store_int(addr, value, size)
    expected = to_signed(to_unsigned(value, 8 * size), 8 * size)
    assert mem.load_int(addr, size) == expected


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_float_bits_roundtrip(value):
    assert bits_to_float(float_to_bits(value)) == value


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=256),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=40,
    )
)
def test_memory_byte_writes_last_wins(writes):
    mem = SparseMemory()
    model = {}
    for addr, value in writes:
        mem.store_byte(addr, value)
        model[addr] = value
    for addr, value in model.items():
        assert mem.load_byte(addr) == value


# ---------------------------------------------------------------------------
# SSB versioning: model-based test against a reference implementation
# ---------------------------------------------------------------------------


@st.composite
def ssb_operations(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),     # slot
                st.integers(min_value=0, max_value=60),    # address
                st.sampled_from([1, 2, 4, 8]),             # size
                st.integers(min_value=0, max_value=2**32), # value
            ),
            min_size=1,
            max_size=30,
        )
    )
    return ops


@given(ssb_operations())
@settings(max_examples=60, deadline=None)
def test_ssb_read_matches_reference_model(ops):
    """For any write sequence, a read by the youngest threadlet matches a
    per-byte 'newest older value wins' reference model."""
    memory = SparseMemory()
    ssb = SpeculativeStateBuffer(LoopFrogConfig(ssb_total_bytes=64 * 1024), memory)
    # Age order oldest->youngest is slot order here.
    reference = [dict() for _ in range(4)]  # per-slot byte maps
    for slot, addr, size, value in ops:
        if not ssb.write(slot, addr, size, value, writer=None):
            continue
        for i in range(size):
            reference[slot][addr + i] = (value >> (8 * i)) & 0xFF

    for addr in range(0, 64):
        result = ssb.read(addr, 1, older_slots=[2, 1, 0], own_slot=3)
        expected = None
        for slot in (3, 2, 1, 0):
            if addr in reference[slot]:
                expected = reference[slot][addr]
                break
        if expected is None:
            expected = memory.load_byte(addr)
        assert result.value == expected


# ---------------------------------------------------------------------------
# Conflict detector vs Bloom variant: no false negatives
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.booleans(),                                # read?
            st.integers(min_value=0, max_value=2),        # slot
            st.integers(min_value=0, max_value=100),      # addr
            st.sampled_from([1, 4, 8]),
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=60, deadline=None)
def test_bloom_detector_flags_superset_of_exact(ops):
    exact = ConflictDetector(4, 4)
    bloom = ConflictDetector(4, 4, use_bloom=True, bloom_bits=2048)
    exact_victims = []
    bloom_victims = []
    for is_read, slot, addr, size in ops:
        if is_read:
            exact.on_speculative_read(slot + 1, addr, size)
            bloom.on_speculative_read(slot + 1, addr, size)
        else:
            ev = exact.on_write(slot, addr, size, [slot + 1, slot + 2][:3 - slot])
            bv = bloom.on_write(slot, addr, size, [slot + 1, slot + 2][:3 - slot])
            exact_victims.append(ev)
            bloom_victims.append(bv)
    # Bloom filters may add false conflicts but never miss a real one.
    for ev, bv in zip(exact_victims, bloom_victims):
        if ev is not None:
            assert bv is not None and bv <= ev


# ---------------------------------------------------------------------------
# Whole-system invariant: LoopFrog == functional semantics
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=24),
    st.sampled_from([1, 2, 3, 5, 8]),
)
@settings(max_examples=15, deadline=None)
def test_speculation_preserves_semantics_random_indices(seed, n, modulo):
    """Random index patterns (including heavy aliasing) must produce the
    same memory state under speculation as under the baseline."""
    source = """
    fn main(data: ptr<int>, idx: ptr<int>, n: int) {
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            var j: int = idx[i];
            data[j] = data[j] + i + 1;
        }
    }
    """
    program = compile_frog(source).program
    rng = random.Random(seed)
    indices = [rng.randrange(modulo) for _ in range(n)]

    def mem():
        m = SparseMemory()
        m.store_int_array(3000, indices)
        return m

    regs = {"r1": 1000, "r2": 3000, "r3": n}
    m_base, m_frog = mem(), mem()
    BaselineCore().run(program, m_base, dict(regs))
    LoopFrogCore().run(program, m_frog, dict(regs))
    assert m_base.load_int_array(1000, modulo) == m_frog.load_int_array(1000, modulo)
