"""Squash-validation of static verdicts, plus the static-gated policy.

These tests run the full workload suites once (simulations are cached by
``run_workload``) and check the central soundness property of the
dependence analyzer: a loop classified ``independent`` must never trigger
a conflict-detector squash.
"""

import pytest

from repro.analysis import render_validation, validate_suites
from repro.compiler import (
    CompileOptions,
    HintOptions,
    VERDICT_MUST_CONFLICT,
    compile_frog,
)
from repro.compiler.hints import (
    REASON_STATIC_MUST_CONFLICT,
    SPECULATE_STATIC_GATED,
)
from repro.obs.metrics import load_all
from repro.uarch import LoopFrogCore, SparseMemory
from repro.workloads import SUITE_NAMES


@pytest.fixture(scope="module")
def report():
    return validate_suites()  # all suites


def test_validation_covers_every_suite(report):
    assert tuple(report.suites) == tuple(SUITE_NAMES)
    assert report.loops_total > 20
    assert report.loops_observed > 0


def test_soundness_no_independent_loop_squashes(report):
    # The acceptance property: across every suite workload, no loop the
    # analyzer proved independent ever squashed in simulation.
    violations = report.violations()
    assert report.soundness_violations == 0, [
        (row.workload, row.header, row.squashes) for row in violations
    ]


def test_squashing_loops_were_predicted_conflicting(report):
    # Same property seen from the recall side: every squashing loop sits
    # in a conflict class, so may/must recall over squashers is perfect.
    squashers = [row for row in report.rows if row.squashed]
    assert squashers, "expected at least one squashing loop in the suites"
    assert all(row.verdict != "independent" for row in squashers)


def test_precision_recall_ratios_well_formed(report):
    for verdict in ("independent", "may-conflict", "must-conflict"):
        assert 0.0 <= report.precision(verdict) <= 1.0
        assert 0.0 <= report.recall(verdict) <= 1.0
    # Independent loops do exist in the suites and never squash, so
    # independent precision is exactly 1.0 here.
    assert report.independent_loops > 0
    assert report.precision("independent") == 1.0


def test_validation_metrics_in_obs_catalog(report):
    registry = load_all()
    snapshot = registry.collect(report, "lint")
    for name in (
        "lint.validate.loops_total",
        "lint.validate.independent_precision",
        "lint.validate.independent_recall",
        "lint.validate.may_conflict_precision",
        "lint.validate.may_conflict_recall",
        "lint.validate.must_conflict_precision",
        "lint.validate.must_conflict_recall",
        "lint.validate.soundness_violations",
    ):
        assert name in snapshot, name
        assert name in registry.catalog()
    assert snapshot["lint.validate.soundness_violations"] == 0
    assert snapshot["lint.validate.loops_total"] == report.loops_total


def test_validation_report_serializes_and_renders(report):
    payload = report.to_dict()
    assert payload["soundness_violations"] == 0
    assert len(payload["rows"]) == len(report.rows)
    text = render_validation(report)
    assert "soundness" in text.lower()


MUST_CONFLICT_SRC = """
fn main(a: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        a[i + 1] = a[i] + 3;
    }
}
"""


def run_kernel(options=None):
    result = compile_frog(MUST_CONFLICT_SRC, options or CompileOptions())
    memory = SparseMemory()
    memory.store_int_array(0x1000, [0] * 70)
    sim = LoopFrogCore().run(result.program, memory, {"r1": 0x1000, "r2": 64})
    return result, sim, memory.load_int_array(0x1000, 70)


def test_static_gated_reduces_squashes_on_must_conflict_loop():
    # Differential: the paper-default "always" policy speculates on the
    # must-conflict loop and pays squashes; "static-gated" refuses it
    # up front, eliminating every squash without changing the result.
    always_result, always_sim, always_mem = run_kernel()
    assert always_result.hint_reports[0].annotated
    assert always_sim.stats.squash_conflicts > 0

    gated_result, gated_sim, gated_mem = run_kernel(
        CompileOptions(
            hint_options=HintOptions(speculate=SPECULATE_STATIC_GATED)
        )
    )
    gated_report = gated_result.hint_reports[0]
    assert not gated_report.annotated
    assert gated_report.reason == REASON_STATIC_MUST_CONFLICT
    assert gated_report.static_verdict == VERDICT_MUST_CONFLICT
    assert gated_sim.stats.squash_conflicts == 0
    assert gated_sim.stats.squash_conflicts < always_sim.stats.squash_conflicts
    # Gating changes performance, never semantics.
    assert gated_mem == always_mem


def test_static_gated_keeps_clean_loops_annotated():
    result = compile_frog(
        """
        fn main(dst: ptr<int>, src: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                dst[i] = src[i] * 2;
            }
        }
        """,
        CompileOptions(hint_options=HintOptions(speculate=SPECULATE_STATIC_GATED)),
    )
    report = result.hint_reports[0]
    assert report.annotated
    assert report.static_verdict == "independent"
