"""Hand-written assembly on the timing cores: call/ret (RAS), hint
handling in raw asm, and baseline-vs-functional agreement."""

import pytest

from repro.isa import assemble
from repro.uarch import BaselineCore, LoopFrogCore, SparseMemory, run_program


def test_call_ret_program_on_baseline():
    prog = assemble(
        """
        li r5, 0
        li r6, 20
        loop:
        mov r1, r6
        call double
        add r5, r5, r1
        sub r6, r6, 1
        bnez r6, loop
        mov r1, r5
        halt
        double:
        add r1, r1, r1
        ret
        """
    )
    func = run_program(prog)
    sim = BaselineCore().run(prog)
    assert sim.registers["r1"] == func.registers["r1"] == 2 * sum(range(1, 21))
    # Returns should be RAS-predicted: mispredicts stay low.
    assert sim.stats.branch_mispredicts < 10


def test_hand_written_hinted_loop():
    # The LoopFrog hints can be used from raw assembly too.
    prog = assemble(
        """
        li r5, 0          ; base
        li r6, 64         ; trip count
        li r7, 4096       ; output base
        loop:
        slt r8, r5, r6
        beqz r8, exit
        detach cont
        shl r9, r5, 3
        add r9, r9, r7
        mul r10, r5, r5
        store r10, r9, 0
        reattach cont
        cont:
        add r5, r5, 1
        jmp loop
        exit:
        sync cont
        halt
        """
    )
    mem = SparseMemory()
    sim = LoopFrogCore().run(prog, mem)
    assert mem.load_int_array(4096, 64) == [i * i for i in range(64)]
    assert sim.stats.threadlets_spawned > 0

    base = BaselineCore().run(prog, SparseMemory())
    assert base.stats.cycles > sim.stats.cycles * 0.8  # sanity


def test_simulation_result_accessors():
    prog = assemble("li r1, 5\nadd r1, r1, 2\nhalt\n")
    sim = BaselineCore().run(prog)
    assert sim.instructions == 3
    assert sim.cycles > 0
    assert 0 < sim.ipc <= 8
    assert sim.program_name == "<asm>"


def test_run_pair_helper():
    from repro.uarch import run_pair

    prog = assemble(
        """
        li r5, 0
        li r6, 32
        li r7, 8192
        loop:
        slt r8, r5, r6
        beqz r8, exit
        detach cont
        shl r9, r5, 3
        add r9, r9, r7
        store r5, r9, 0
        reattach cont
        cont:
        add r5, r5, 1
        jmp loop
        exit:
        sync cont
        halt
        """
    )
    base, frog = run_pair(prog, SparseMemory)
    assert base.memory.load_int_array(8192, 32) == list(range(32))
    assert frog.memory.load_int_array(8192, 32) == list(range(32))
    assert base.instructions == frog.instructions


def test_max_cycles_guard():
    from repro.errors import SimulationError

    prog = assemble("spin: jmp spin\n")
    with pytest.raises(SimulationError):
        BaselineCore().run(prog, max_cycles=500)


def test_architectural_fault_surfaces():
    from repro.errors import ExecutionError

    prog = assemble("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt\n")
    with pytest.raises(ExecutionError):
        BaselineCore().run(prog)
