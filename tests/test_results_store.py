"""Tests for the persistent result store, digests, and the parallel
scheduler — including the bit-identity guarantees the store depends on.
"""

import dataclasses
import json

import pytest

from repro.experiments import runner
from repro.results import (
    ENGINE_SCHEMA_VERSION,
    ResultStore,
    machine_digest,
    run_digest,
    set_default_store,
    stats_from_dict,
    stats_to_dict,
    workload_digest,
)
from repro.uarch.config import baseline_machine, default_machine
from repro.uarch.statistics import RegionStats, SimStats
from repro.workloads.base import Workload
from repro.workloads.suites import suite


def small_workload(source_suffix="", name="store_test", seed=7):
    """A tiny kernel that simulates in well under a second."""
    source = f"""
    fn main(data: ptr<int>, out: ptr<int>) {{
        var acc: int = 0;
        #pragma loopfrog
        for (var i: int = 0; i < 64; i = i + 1) {{
            acc = acc + data[i]{source_suffix};
        }}
        out[0] = acc;
    }}
    """

    def setup(memory, rng):
        for i in range(64):
            memory.store_int(4096 + 8 * i, rng.randrange(100))
        return {"r1": 4096, "r2": 8192}

    return Workload(
        name=name,
        source=source,
        setup=setup,
        seed=seed,
        max_cycles=200_000,
    )


def stats_fingerprint(stats):
    return json.dumps(dataclasses.asdict(stats), sort_keys=True, default=str)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture
def no_default_store():
    """Run the runner with persistence off and an empty in-process cache;
    restore both afterwards so other test modules keep their warm cache."""
    from repro.results import get_default_store

    saved_store = get_default_store()
    saved_cache = dict(runner._CACHE)
    set_default_store(None)
    runner.clear_cache()
    yield
    set_default_store(saved_store)
    runner._CACHE.clear()
    runner._CACHE.update(saved_cache)


# -- serialization -----------------------------------------------------------

def test_stats_round_trip_exact():
    wl = small_workload()
    stats = runner.run_workload(wl, default_machine(), use_cache=False)
    stats.regions.setdefault(
        "L0", RegionStats(region="L0", entries=3, arch_cycles=17)
    )
    restored = stats_from_dict(json.loads(json.dumps(stats_to_dict(stats))))
    assert stats_fingerprint(restored) == stats_fingerprint(stats)
    # the lossy spots specifically: int histogram keys and nested regions
    assert restored.active_threadlet_cycles == stats.active_threadlet_cycles
    assert all(isinstance(k, int) for k in restored.active_threadlet_cycles)
    assert isinstance(next(iter(restored.regions.values())), RegionStats)


def test_stats_from_dict_ignores_unknown_fields():
    stats = SimStats()
    data = stats_to_dict(stats)
    data["counter_from_the_future"] = 42
    restored = stats_from_dict(data)
    assert stats_fingerprint(restored) == stats_fingerprint(stats)


# -- digests -----------------------------------------------------------------

def test_same_content_same_digest():
    assert machine_digest(default_machine()) == machine_digest(default_machine())
    assert workload_digest(small_workload()) == workload_digest(small_workload())


def test_config_change_changes_digest():
    assert machine_digest(default_machine()) != machine_digest(baseline_machine())


def test_program_change_changes_digest():
    # Same workload *name*, different source: must not collide.  This is
    # the collision the old name-keyed in-process cache allowed.
    assert workload_digest(small_workload()) != workload_digest(
        small_workload(source_suffix=" + 1")
    )


def test_input_change_changes_digest():
    assert workload_digest(small_workload(seed=7)) != workload_digest(
        small_workload(seed=8)
    )


def test_cache_key_not_fooled_by_shared_name(no_default_store):
    wl_a = small_workload()
    wl_b = small_workload(source_suffix=" + 1")  # same name, different program
    machine = default_machine()
    stats_a = runner.run_workload(wl_a, machine)
    stats_b = runner.run_workload(wl_b, machine)
    assert stats_fingerprint(stats_a) != stats_fingerprint(stats_b)


# -- store hits and misses ---------------------------------------------------

def test_store_hit_returns_identical_stats(store):
    wl = small_workload()
    machine = default_machine()
    fresh = runner.run_workload(wl, machine, use_cache=False)
    digest = run_digest(wl, machine)
    store.save(digest, fresh, workload=wl.name)
    loaded = store.load(digest)
    assert stats_fingerprint(loaded) == stats_fingerprint(fresh)
    assert digest in store


def test_store_miss_on_config_change(store):
    wl = small_workload()
    stats = runner.run_workload(wl, default_machine(), use_cache=False)
    store.save(run_digest(wl, default_machine()), stats)
    assert store.load(run_digest(wl, baseline_machine())) is None


def test_store_miss_on_program_change(store):
    wl = small_workload()
    stats = runner.run_workload(wl, default_machine(), use_cache=False)
    store.save(run_digest(wl, default_machine()), stats)
    changed = small_workload(source_suffix=" + 1")
    assert store.load(run_digest(changed, default_machine())) is None


def test_store_miss_on_schema_bump(store):
    wl = small_workload()
    machine = default_machine()
    stats = runner.run_workload(wl, machine, use_cache=False)
    digest = run_digest(wl, machine)
    store.save(digest, stats)
    future = ResultStore(store.root, schema=ENGINE_SCHEMA_VERSION + 1)
    assert future.load(digest) is None
    assert store.load(digest) is not None  # current schema still hits


def test_corrupt_record_is_a_miss_not_an_error(store):
    wl = small_workload()
    machine = default_machine()
    stats = runner.run_workload(wl, machine, use_cache=False)
    digest = run_digest(wl, machine)
    path = store.save(digest, stats)
    path.write_text("{ not json")
    assert store.load(digest) is None
    path.write_text('{"digest": "wrong", "schema": 1, "stats": {}}')
    assert store.load(digest) is None


def test_store_stats_and_gc(store):
    wl = small_workload()
    machine = default_machine()
    stats = runner.run_workload(wl, machine, use_cache=False)
    store.save(run_digest(wl, machine), stats)
    old = ResultStore(store.root, schema=ENGINE_SCHEMA_VERSION - 1)
    old.save("ff" + "0" * 62, stats)
    summary = store.stats()
    assert summary.records == 2
    assert summary.by_schema == {ENGINE_SCHEMA_VERSION: 1,
                                 ENGINE_SCHEMA_VERSION - 1: 1}
    assert store.gc() == 1  # drops only the stale-schema record
    assert store.stats().records == 1
    assert store.gc(purge=True) == 1
    assert store.stats().records == 0


def test_runner_reads_through_store(store, no_default_store):
    set_default_store(store)
    wl = small_workload()
    machine = default_machine()
    first = runner.run_workload(wl, machine)
    assert store.stats().records == 1
    runner.clear_cache()  # force the next lookup to the store
    second = runner.run_workload(wl, machine)
    assert stats_fingerprint(second) == stats_fingerprint(first)
    assert store.stats().records == 1  # hit, not a re-save


# -- parity: cached == fresh-serial == fresh-parallel ------------------------

def test_serial_parallel_and_cached_parity(no_default_store):
    bench = suite("spec2017")[0]
    fresh = runner.run_benchmark(bench, use_cache=False)
    serial = runner.run_benchmark(bench, jobs=1)
    runner.clear_cache()
    parallel = runner.run_benchmark(bench, jobs=2)
    cached = runner.run_benchmark(bench, jobs=2)  # all in-process hits now
    for a in (serial, parallel, cached):
        assert a.speedup == fresh.speedup
        for pa, pf in zip(a.phases, fresh.phases):
            assert stats_fingerprint(pa.baseline) == stats_fingerprint(pf.baseline)
            assert stats_fingerprint(pa.loopfrog) == stats_fingerprint(pf.loopfrog)


def test_run_suite_parallel_matches_serial(no_default_store):
    only = [suite("spec2017")[0].name]
    serial = runner.run_suite("spec2017", only=only, jobs=1)
    runner.clear_cache()
    parallel = runner.run_suite("spec2017", only=only, jobs=2)
    assert [r.speedup for r in serial] == [r.speedup for r in parallel]
