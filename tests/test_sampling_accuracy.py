"""End-to-end accuracy contract of sampled simulation.

The headline claim of docs/sampling.md, asserted mechanically:

* every spec2017 and spec2006 suite workload's sampled CPI is within 2%
  of the full detailed run (the suite phases sit below the full-detail
  threshold,
  where the runner degenerates to an exact engine run — so the error is
  not merely small, it is zero and the cycle counts are bit-identical);
* a genuinely sampled long-run workload (detailed windows covering a
  fraction of the program) stays within 5%, with a non-trivial reported
  error bound; and
* sampled estimates live in their own digest dimension and round-trip
  through the persistent store with their sampling metadata intact.
"""

import pytest

from repro.results.digest import run_digest, sampled_run_digest
from repro.results.store import (
    ResultStore,
    get_default_store,
    set_default_store,
)
from repro.sampling import runner as sampling_runner
from repro.sampling.runner import SamplingConfig, run_workload_sampled
from repro.uarch.config import default_machine
from repro.uarch.core import Engine
from repro.workloads import get_workload, suite


def _exact_stats(workload, machine):
    memory, regs = workload.fresh_input()
    engine = Engine(machine, workload.program, memory, regs)
    return engine.run(max_cycles=workload.max_cycles)


def _suite_workloads():
    return [
        (workload, benchmark.name)
        for suite_name in ("spec2017", "spec2006")
        for benchmark in suite(suite_name)
        for workload, _weight in benchmark.phases
    ]


def test_every_suite_workload_sampled_cpi_within_two_percent():
    machine = default_machine()
    config = SamplingConfig()
    report = []
    for workload, bench_name in _suite_workloads():
        exact = _exact_stats(workload, machine)
        memory, regs = workload.fresh_input()
        sampled = sampling_runner.run_program_sampled(
            workload.program, memory, regs, machine, config,
            max_cycles=workload.max_cycles,
        )
        exact_cpi = exact.cycles / exact.arch_instructions
        error = (sampled.estimated_cpi - exact_cpi) / exact_cpi
        report.append(
            f"{bench_name}/{workload.name}: "
            f"cpi {exact_cpi:.4f} -> {sampled.estimated_cpi:.4f} "
            f"({error:+.4%}, bound {sampled.error_bound:.2%})"
        )
        assert abs(error) <= 0.02, (
            f"{workload.name}: sampled CPI off by {error:+.2%} "
            f"(> 2%); reported bound {sampled.error_bound:.2%}\n"
            + "\n".join(report)
        )
        # Below the full-detail threshold the estimate must be *exact*.
        assert sampled.stats.cycles == exact.cycles
        assert sampled.error_bound == 0.0
    print("\n".join(report))


def test_longrun_genuinely_sampled_within_five_percent():
    workload = get_workload("longrun_hash")
    machine = default_machine()

    exact = _exact_stats(workload, machine)
    memory, regs = workload.fresh_input()
    sampled = sampling_runner.run_program_sampled(
        workload.program, memory, regs, machine, SamplingConfig(),
        max_cycles=workload.max_cycles,
    )

    # Genuine sampling, not the short-program guard: windows must cover
    # only a fraction of the program and carry a real error bound.
    assert sampled.detailed_fraction < 0.5
    assert sampled.num_clusters > 1
    assert sampled.error_bound > 0.0
    assert sampled.ff_instructions_per_second > 0.0

    exact_cpi = exact.cycles / exact.arch_instructions
    error = (sampled.estimated_cpi - exact_cpi) / exact_cpi
    print(
        f"longrun_hash: cpi {exact_cpi:.4f} -> {sampled.estimated_cpi:.4f} "
        f"({error:+.4%}, bound {sampled.error_bound:.2%}, "
        f"detailed fraction {sampled.detailed_fraction:.1%})"
    )
    assert abs(error) <= 0.05, (
        f"sampled CPI off by {error:+.2%} (bound {sampled.error_bound:.2%})"
    )


def test_sampled_digest_is_a_distinct_dimension():
    workload = get_workload("imagick_conv")
    machine = default_machine()
    config = SamplingConfig()

    exact_digest = run_digest(workload, machine)
    sampled_digest = sampled_run_digest(workload, machine, config)
    assert sampled_digest != exact_digest

    # Every config field is part of the key.
    assert sampled_run_digest(
        workload, machine, SamplingConfig(interval_length=4000)
    ) != sampled_digest
    assert sampled_run_digest(
        workload, machine, SamplingConfig(seed=43)
    ) != sampled_digest
    # Same config, same key (cross-run cache stability).
    assert sampled_run_digest(workload, machine, SamplingConfig()) == (
        sampled_digest
    )


def test_sampled_store_roundtrip(tmp_path):
    workload = get_workload("imagick_conv")
    machine = default_machine()
    config = SamplingConfig()
    saved = get_default_store()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    try:
        sampling_runner.clear_cache()
        first = run_workload_sampled(workload, machine, config)
        assert not first.cached

        sampling_runner.clear_cache()  # force the persistent-store path
        second = run_workload_sampled(workload, machine, config)
        assert second.cached
        assert second.stats.cycles == first.stats.cycles
        assert second.estimated_cpi == pytest.approx(first.estimated_cpi)
        assert second.error_bound == first.error_bound
        assert second.total_instructions == first.total_instructions
        assert second.num_intervals == first.num_intervals
        assert second.num_clusters == first.num_clusters
        assert second.detailed_instructions == first.detailed_instructions
    finally:
        set_default_store(saved)
        sampling_runner.clear_cache()


def test_sampled_and_exact_store_records_never_collide(tmp_path):
    """Saving a sampled estimate must not shadow the exact record."""
    from repro.experiments import runner as exact_runner

    workload = get_workload("imagick_conv")
    machine = default_machine()
    saved = get_default_store()
    store = ResultStore(tmp_path / "store")
    set_default_store(store)
    try:
        sampling_runner.clear_cache()
        exact_runner.clear_cache()
        sampled = run_workload_sampled(workload, machine, SamplingConfig())
        exact = exact_runner.run_workload(workload, machine)
        assert store.stats().records == 2
        # Reload both; each comes back from its own record.
        sampling_runner.clear_cache()
        exact_runner.clear_cache()
        assert run_workload_sampled(
            workload, machine, SamplingConfig()
        ).stats.cycles == sampled.stats.cycles
        assert exact_runner.run_workload(
            workload, machine
        ).cycles == exact.cycles
    finally:
        set_default_store(saved)
        sampling_runner.clear_cache()
        exact_runner.clear_cache()
