"""Unit tests for the TAGE-lite branch predictor, BTB, RAS, loop predictor."""


from repro.isa.instructions import Instruction, Opcode
from repro.uarch.branch_pred import (
    BranchTargetBuffer,
    FrontEndPredictor,
    ReturnAddressStack,
    TagePredictor,
)
from repro.uarch.config import CoreConfig


def tage(contexts=1):
    return TagePredictor(CoreConfig(), contexts)


def train(predictor, pc, outcomes, context=0):
    for taken in outcomes:
        prediction = predictor.predict(pc, context)
        predictor.update(pc, taken, prediction, context)


def accuracy(predictor, pc, outcomes, context=0):
    correct = 0
    for taken in outcomes:
        prediction = predictor.predict(pc, context)
        correct += prediction.taken == taken
        predictor.update(pc, taken, prediction, context)
    return correct / len(outcomes)


def test_always_taken_branch_learned():
    p = tage()
    train(p, 100, [True] * 8)
    assert p.predict(100).taken


def test_never_taken_branch_learned():
    p = tage()
    train(p, 100, [False] * 8)
    assert not p.predict(100).taken


def test_alternating_pattern_learned_by_tagged_tables():
    p = tage()
    pattern = [True, False] * 64
    assert accuracy(p, 200, pattern * 3) > 0.80


def test_loop_predictor_learns_trip_count():
    p = tage()
    # A loop taken 7 times then not taken, repeated: classic trip count 8.
    pattern = ([True] * 7 + [False]) * 12
    acc = accuracy(p, 300, pattern)
    # After the loop predictor locks on, the exit is predicted too.
    tail = ([True] * 7 + [False]) * 4
    assert accuracy(p, 300, tail) == 1.0


def test_random_pattern_unpredictable():
    import random

    rng = random.Random(7)
    p = tage()
    pattern = [rng.random() < 0.5 for _ in range(400)]
    assert accuracy(p, 400, pattern) < 0.75


def test_histories_are_per_context():
    p = tage(contexts=2)
    train(p, 100, [True] * 10, context=0)
    assert p.histories[0] != p.histories[1]


def test_btb_stores_and_evicts():
    btb = BranchTargetBuffer(entries=16)
    btb.insert(5, 500)
    assert btb.lookup(5) == 500
    assert btb.lookup(6) is None
    # Aliasing pc evicts (direct mapped).
    btb.insert(5 + 16, 700)
    assert btb.lookup(5) is None
    assert btb.lookup(21) == 700


def test_ras_push_pop_lifo():
    ras = ReturnAddressStack(entries=4)
    ras.push(10)
    ras.push(20)
    assert ras.pop() == 20
    assert ras.pop() == 10
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(entries=2)
    for value in (1, 2, 3):
        ras.push(value)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_frontend_call_ret_uses_ras():
    fe = FrontEndPredictor(CoreConfig(), 1)
    call = Instruction(Opcode.CALL, target="f", target_index=50)
    ret = Instruction(Opcode.RET)
    fe.predict_instruction(10, call, True, 50, 0)
    correct, target_known = fe.predict_instruction(55, ret, True, 11, 0)
    assert target_known  # RAS supplies pc+1 of the call


def test_frontend_jmp_btb_learns_target():
    fe = FrontEndPredictor(CoreConfig(), 1)
    jmp = Instruction(Opcode.JMP, target="x", target_index=99)
    _, known_first = fe.predict_instruction(20, jmp, True, 99, 0)
    _, known_second = fe.predict_instruction(20, jmp, True, 99, 0)
    assert not known_first
    assert known_second


def test_frontend_conditional_direction():
    fe = FrontEndPredictor(CoreConfig(), 1)
    br = Instruction(Opcode.BNEZ, srcs=("r1",), target="t", target_index=33)
    for _ in range(8):
        fe.predict_instruction(40, br, True, 33, 0)
    correct, _ = fe.predict_instruction(40, br, True, 33, 0)
    assert correct
