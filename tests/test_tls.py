"""Tests for the classic-TLS models used in the table-3 comparison."""


from repro.compiler import compile_frog
from repro.tls import (
    MultiscalarConfig,
    StampedeConfig,
    Task,
    conflicts_with,
    extract_tasks,
    simulate_multiscalar,
    simulate_stampede,
)
from repro.uarch import SparseMemory


PARALLEL = """
fn main(dst: ptr<int>, src: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        dst[i] = src[i] * 2;
    }
}
"""


def parallel_trace(n=32):
    program = compile_frog(PARALLEL).program
    mem = SparseMemory()
    mem.store_int_array(2000, list(range(n)))
    return extract_tasks(program, mem, {"r1": 1000, "r2": 2000, "r3": n})


def test_extract_tasks_segments_iterations():
    trace = parallel_trace(32)
    parallel = trace.parallel_tasks
    # One task per iteration (roughly), plus serial head/tail.
    assert 30 <= len(parallel) <= 34
    assert trace.total_instructions > 0
    assert trace.mean_parallel_task_size() > 3


def test_tasks_carry_read_write_sets():
    trace = parallel_trace(8)
    body_tasks = [t for t in trace.parallel_tasks if t.writes]
    assert body_tasks
    for task in body_tasks:
        assert task.reads  # reads src and possibly the induction spill


def test_conflicts_with():
    a = Task(0, 5, reads={1, 2}, writes={3})
    b = Task(1, 5, reads={3}, writes={9})
    assert conflicts_with(b, a)       # b reads what a writes
    assert not conflicts_with(a, b)   # a does not read 9


def test_conflicts_with_is_raw_only():
    # WAW and WAR never conflict in this model: speculative buffering
    # renames writes, so only true (read-after-write) dependences count.
    older = Task(0, 5, reads={7}, writes={3})
    waw = Task(1, 5, reads=set(), writes={3})
    war = Task(2, 5, reads=set(), writes={7})
    assert not conflicts_with(waw, older)
    assert not conflicts_with(war, older)


def test_granule_aliasing_same_base_different_stride():
    # Writer touches even elements, reader touches element 6: distinct
    # addresses but byte ranges fall into the same 8-byte granules.
    g = 8
    writes = set()
    for i in range(0, 16, 2):
        addr = 1000 + 8 * i
        writes.update(range(addr // g, (addr + 7) // g + 1))
    older = Task(0, 16, writes=writes)
    addr = 1000 + 8 * 6
    reader = Task(1, 4, reads=set(range(addr // g, (addr + 7) // g + 1)))
    assert conflicts_with(reader, older)
    # An odd element is written by nobody: no granule overlap.
    addr = 1000 + 8 * 7
    clean = Task(2, 4, reads=set(range(addr // g, (addr + 7) // g + 1)))
    assert not conflicts_with(clean, older)


def test_multibyte_access_crossing_granule_boundary():
    # An 8-byte store at offset 4 straddles two 8-byte granules; a read
    # of either neighbouring granule must be seen as a conflict.
    g = 8
    addr, size = 1004, 8
    touched = set(range(addr // g, (addr + size - 1) // g + 1))
    assert touched == {125, 126}  # crosses the 1008 boundary
    older = Task(0, 1, writes=touched)
    low = Task(1, 1, reads={125})
    high = Task(2, 1, reads={126})
    far = Task(3, 1, reads={127})
    assert conflicts_with(low, older)
    assert conflicts_with(high, older)
    assert not conflicts_with(far, older)


def test_extracted_tasks_alias_through_granules():
    # End-to-end: a kernel whose iterations read the previous iteration's
    # element produces real RAW conflicts between extracted tasks.
    source = """
    fn main(a: ptr<int>, n: int) {
        #pragma loopfrog
        for (var i: int = 1; i < n; i = i + 1) {
            a[i] = a[i - 1] + 1;
        }
    }
    """
    program = compile_frog(source).program
    mem = SparseMemory()
    mem.store_int_array(1000, list(range(16)))
    trace = extract_tasks(program, mem, {"r1": 1000, "r2": 16})
    body = [t for t in trace.parallel_tasks if t.writes]
    assert len(body) >= 2
    raw_pairs = [
        (y.index, o.index)
        for i, o in enumerate(body)
        for y in body[i + 1:]
        if conflicts_with(y, o)
    ]
    assert raw_pairs  # neighbouring iterations alias through memory


def test_multiscalar_speeds_up_parallel_tasks():
    trace = parallel_trace(64)
    result = simulate_multiscalar(trace)
    assert result.speedup > 1.5
    assert result.tasks == len(trace.tasks)


def test_stampede_coarsens_tasks():
    # With coarsening, STAMPede forms few large epochs out of our small
    # iterations; the speedup is modest but not a collapse.
    trace = parallel_trace(64)
    result = simulate_stampede(trace)
    assert result.speedup > 0.8


def test_stampede_wins_on_coarse_work():
    config = StampedeConfig(target_task_size=200)
    trace = parallel_trace(256)
    result = simulate_stampede(trace, config)
    assert result.speedup > 1.1


def test_multiscalar_outpaces_stampede_on_small_tasks():
    # Small tasks suffer under STAMPede's cross-core spawn latency; the
    # ring's cheap forwarding wins (the granularity contrast of table 3).
    trace = parallel_trace(64)
    assert simulate_multiscalar(trace).speedup > simulate_stampede(trace).speedup


def test_serial_trace_gets_no_speedup():
    source = """
    fn main(a: ptr<int>, n: int) -> int {
        var s: int = 0;
        for (var i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
        return s;
    }
    """
    program = compile_frog(source).program
    mem = SparseMemory()
    mem.store_int_array(1000, list(range(50)))
    trace = extract_tasks(program, mem, {"r1": 1000, "r2": 50})
    assert not trace.parallel_tasks
    assert simulate_multiscalar(trace).speedup <= 1.01
    assert simulate_stampede(trace).speedup <= 1.01


def test_dependent_tasks_squash_and_serialise():
    source = """
    fn main(data: ptr<int>, n: int) {
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            var v: int = data[0];
            data[0] = v + 1;
        }
    }
    """
    program = compile_frog(source).program
    mem = SparseMemory()
    trace = extract_tasks(program, mem, {"r1": 1000, "r2": 40})
    ms = simulate_multiscalar(trace)
    assert ms.squashes > 0
    assert ms.speedup < 1.2


def test_scheme_configs_match_table3_rows():
    assert MultiscalarConfig().num_units == 8
    assert MultiscalarConfig().area_factor == 8.0
    assert StampedeConfig().num_cores == 4
    assert StampedeConfig().area_factor > 4.0
