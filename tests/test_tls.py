"""Tests for the classic-TLS models used in the table-3 comparison."""

import pytest

from repro.compiler import compile_frog
from repro.tls import (
    MultiscalarConfig,
    StampedeConfig,
    Task,
    TaskTrace,
    conflicts_with,
    extract_tasks,
    simulate_multiscalar,
    simulate_stampede,
)
from repro.uarch import SparseMemory


PARALLEL = """
fn main(dst: ptr<int>, src: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        dst[i] = src[i] * 2;
    }
}
"""


def parallel_trace(n=32):
    program = compile_frog(PARALLEL).program
    mem = SparseMemory()
    mem.store_int_array(2000, list(range(n)))
    return extract_tasks(program, mem, {"r1": 1000, "r2": 2000, "r3": n})


def test_extract_tasks_segments_iterations():
    trace = parallel_trace(32)
    parallel = trace.parallel_tasks
    # One task per iteration (roughly), plus serial head/tail.
    assert 30 <= len(parallel) <= 34
    assert trace.total_instructions > 0
    assert trace.mean_parallel_task_size() > 3


def test_tasks_carry_read_write_sets():
    trace = parallel_trace(8)
    body_tasks = [t for t in trace.parallel_tasks if t.writes]
    assert body_tasks
    for task in body_tasks:
        assert task.reads  # reads src and possibly the induction spill


def test_conflicts_with():
    a = Task(0, 5, reads={1, 2}, writes={3})
    b = Task(1, 5, reads={3}, writes={9})
    assert conflicts_with(b, a)       # b reads what a writes
    assert not conflicts_with(a, b)   # a does not read 9


def test_multiscalar_speeds_up_parallel_tasks():
    trace = parallel_trace(64)
    result = simulate_multiscalar(trace)
    assert result.speedup > 1.5
    assert result.tasks == len(trace.tasks)


def test_stampede_coarsens_tasks():
    # With coarsening, STAMPede forms few large epochs out of our small
    # iterations; the speedup is modest but not a collapse.
    trace = parallel_trace(64)
    result = simulate_stampede(trace)
    assert result.speedup > 0.8


def test_stampede_wins_on_coarse_work():
    config = StampedeConfig(target_task_size=200)
    trace = parallel_trace(256)
    result = simulate_stampede(trace, config)
    assert result.speedup > 1.1


def test_multiscalar_outpaces_stampede_on_small_tasks():
    # Small tasks suffer under STAMPede's cross-core spawn latency; the
    # ring's cheap forwarding wins (the granularity contrast of table 3).
    trace = parallel_trace(64)
    assert simulate_multiscalar(trace).speedup > simulate_stampede(trace).speedup


def test_serial_trace_gets_no_speedup():
    source = """
    fn main(a: ptr<int>, n: int) -> int {
        var s: int = 0;
        for (var i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
        return s;
    }
    """
    program = compile_frog(source).program
    mem = SparseMemory()
    mem.store_int_array(1000, list(range(50)))
    trace = extract_tasks(program, mem, {"r1": 1000, "r2": 50})
    assert not trace.parallel_tasks
    assert simulate_multiscalar(trace).speedup <= 1.01
    assert simulate_stampede(trace).speedup <= 1.01


def test_dependent_tasks_squash_and_serialise():
    source = """
    fn main(data: ptr<int>, n: int) {
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            var v: int = data[0];
            data[0] = v + 1;
        }
    }
    """
    program = compile_frog(source).program
    mem = SparseMemory()
    trace = extract_tasks(program, mem, {"r1": 1000, "r2": 40})
    ms = simulate_multiscalar(trace)
    assert ms.squashes > 0
    assert ms.speedup < 1.2


def test_scheme_configs_match_table3_rows():
    assert MultiscalarConfig().num_units == 8
    assert MultiscalarConfig().area_factor == 8.0
    assert StampedeConfig().num_cores == 4
    assert StampedeConfig().area_factor > 4.0
