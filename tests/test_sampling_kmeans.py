"""Determinism and invariants of the sampling k-means clusterer.

The representative set feeds the sampled result digest, so clustering
must be bit-reproducible across *processes* — not just within one run:
a different hash seed reordering a dict would silently fork the cache
key space.  The cross-process test therefore runs the same clustering
under two different ``PYTHONHASHSEED`` values and requires identical
output.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.sampling.fastforward import Interval
from repro.sampling.kmeans import cluster_intervals

SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

# Deterministic synthetic corpus: three behaviour archetypes plus noise,
# with long duplicate runs like a steady-state loop would produce.
_SCRIPT = """
import json, random
from repro.sampling.fastforward import Interval
from repro.sampling.kmeans import cluster_intervals

rng = random.Random(1234)
archetypes = [
    (100, 0, 40, 0, 0, 60),
    (0, 120, 0, 30, 0, 0),
    (10, 10, 10, 10, 100, 10),
]
intervals = []
for i in range(120):
    base = archetypes[rng.randrange(3)]
    bbv = tuple(v + rng.randrange(3) for v in base)
    intervals.append(
        Interval(index=i, start_icount=i * 500, length=500, bbv=bbv)
    )
result = cluster_intervals(intervals, max_clusters=6, seed=7)
print(json.dumps({
    "k": result.k,
    "assignments": list(result.assignments),
    "representatives": list(result.representatives),
    "weights": list(result.weights),
}))
"""


def _run_clustering(hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["PYTHONHASHSEED"] = str(hashseed)
    out = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout)


def test_clustering_identical_across_processes():
    first = _run_clustering(hashseed=1)
    second = _run_clustering(hashseed=2)
    assert first == second
    assert first["k"] >= 2  # the archetypes must actually separate


def _synthetic_intervals():
    intervals = []
    for i in range(30):
        bbv = (100, 0, 50) if i % 3 else (0, 80, 10)
        intervals.append(
            Interval(index=i, start_icount=i * 400, length=400, bbv=bbv)
        )
    return intervals


def test_clustering_deterministic_in_process():
    intervals = _synthetic_intervals()
    a = cluster_intervals(intervals, max_clusters=4, seed=42)
    b = cluster_intervals(intervals, max_clusters=4, seed=42)
    assert a.assignments == b.assignments
    assert a.representatives == b.representatives
    assert a.weights == b.weights


def test_cluster_invariants():
    intervals = _synthetic_intervals()
    result = cluster_intervals(intervals, max_clusters=4, seed=0)
    assert 1 <= result.k <= 4
    assert len(result.assignments) == len(intervals)
    assert len(result.representatives) == result.k
    assert len(result.weights) == result.k
    assert abs(sum(result.weights) - 1.0) < 1e-9
    for cluster_id, rep in enumerate(result.representatives):
        # Each representative belongs to the cluster it represents.
        assert result.assignments[rep] == cluster_id
    # Two perfectly distinct behaviours must land in different clusters.
    assert result.k >= 2


def test_duplicate_heavy_corpus_clusters_by_behaviour():
    """Steady-state loops emit runs of identical BBVs; the deduplicated
    clustering must still assign every duplicate to the same cluster."""
    intervals = []
    for i in range(200):
        bbv = (64, 64, 0, 0) if i < 150 else (0, 0, 64, 64)
        intervals.append(
            Interval(index=i, start_icount=i * 64, length=64, bbv=bbv)
        )
    result = cluster_intervals(intervals, max_clusters=8, seed=3)
    assert result.k == 2
    assert len(set(result.assignments[:150])) == 1
    assert len(set(result.assignments[150:])) == 1
    # Instruction-share weights: 150/200 and 50/200.
    heavy = result.assignments[0]
    assert result.weights[heavy] == pytest.approx(0.75)


def test_empty_intervals_rejected():
    with pytest.raises(ValueError):
        cluster_intervals([], max_clusters=4, seed=0)
