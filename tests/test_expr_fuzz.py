"""Differential fuzzing: random Frog expressions vs a Python oracle.

Generates random integer expression trees, compiles them through the full
pipeline (lower -> optimize -> regalloc -> codegen) and checks the
executor's result against direct Python evaluation with 64-bit wrap
semantics.  This is the strongest end-to-end compiler correctness test in
the suite.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_frog
from repro.uarch.executor import Executor
from repro.uarch.memory_state import MASK64, to_signed, to_unsigned


def _wrap(v: int) -> int:
    return to_signed(v & MASK64)


class Node:
    def frog(self) -> str:
        raise NotImplementedError

    def eval(self, env) -> int:
        raise NotImplementedError


class Var(Node):
    def __init__(self, name):
        self.name = name

    def frog(self):
        return self.name

    def eval(self, env):
        return env[self.name]


class Lit(Node):
    def __init__(self, value):
        self.value = value

    def frog(self):
        return str(self.value)

    def eval(self, env):
        return self.value


class Bin(Node):
    def __init__(self, op, left, right):
        self.op, self.left, self.right = op, left, right

    def frog(self):
        return f"({self.left.frog()} {self.op} {self.right.frog()})"

    def eval(self, env):
        a, b = self.left.eval(env), self.right.eval(env)
        if self.op == "+":
            return _wrap(a + b)
        if self.op == "-":
            return _wrap(a - b)
        if self.op == "*":
            return _wrap(a * b)
        if self.op == "&":
            return _wrap(to_unsigned(a) & to_unsigned(b))
        if self.op == "|":
            return _wrap(to_unsigned(a) | to_unsigned(b))
        if self.op == "^":
            return _wrap(to_unsigned(a) ^ to_unsigned(b))
        if self.op == "<<":
            return _wrap(to_unsigned(a) << (b & 63))
        if self.op == ">>":
            return _wrap(to_unsigned(a) >> (b & 63))
        if self.op == "<":
            return int(a < b)
        if self.op == "<=":
            return int(a <= b)
        if self.op == "==":
            return int(a == b)
        if self.op == "!=":
            return int(a != b)
        raise AssertionError(self.op)


_SAFE_OPS = ["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="]
_SHIFT_OPS = ["<<", ">>"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Var(draw(st.sampled_from(["a", "b", "c"])))
        return Lit(draw(st.integers(min_value=-1000, max_value=1000)))
    op = draw(st.sampled_from(_SAFE_OPS + _SHIFT_OPS))
    left = draw(expressions(depth=depth + 1))
    if op in _SHIFT_OPS:
        # Keep shift amounts small and non-negative for oracle clarity.
        right = Lit(draw(st.integers(min_value=0, max_value=40)))
    else:
        right = draw(expressions(depth=depth + 1))
    return Bin(op, left, right)


@given(
    expressions(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.integers(min_value=-(2**40), max_value=2**40),
)
@settings(max_examples=120, deadline=None)
def test_compiled_expression_matches_oracle(expr, a, b, c):
    source = (
        f"fn main(a: int, b: int, c: int) -> int {{ "
        f"return {expr.frog()}; }}"
    )
    program = compile_frog(source).program
    ex = Executor(program)
    ex.regs.update({"r1": a, "r2": b, "r3": c})
    ex.run()
    expected = expr.eval({"a": a, "b": b, "c": c})
    assert ex.regs["r1"] == expected, source


@given(
    expressions(),
    st.integers(min_value=-(2**20), max_value=2**20),
    st.integers(min_value=-(2**20), max_value=2**20),
    st.integers(min_value=-(2**20), max_value=2**20),
)
@settings(max_examples=40, deadline=None)
def test_expression_in_branch_condition(expr, a, b, c):
    """The same expressions used as branch conditions: nonzero -> 1."""
    source = (
        f"fn main(a: int, b: int, c: int) -> int {{ "
        f"if ({expr.frog()} != 0) {{ return 1; }} return 0; }}"
    )
    program = compile_frog(source).program
    ex = Executor(program)
    ex.regs.update({"r1": a, "r2": b, "r3": c})
    ex.run()
    expected = int(expr.eval({"a": a, "b": b, "c": c}) != 0)
    assert ex.regs["r1"] == expected, source
