"""Tests for the pipeline tracer."""


from repro.compiler import compile_frog
from repro.uarch import SparseMemory, baseline_machine, default_machine
from repro.uarch.core import Engine
from repro.uarch.trace import Tracer

SOURCE = """
fn main(dst: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        dst[i] = i * i + 1;
    }
}
"""


def traced_engine(machine=None, n=24):
    program = compile_frog(SOURCE).program
    engine = Engine(machine or default_machine(), program, SparseMemory(),
                    {"r1": 0x1000, "r2": n})
    tracer = Tracer.attach(engine)
    engine.run()
    return engine, tracer


def test_records_stage_ordering():
    _, tracer = traced_engine(baseline_machine())
    assert tracer.records
    for record in tracer.records.values():
        if record.squashed:
            continue
        if record.fetch is not None and record.dispatch is not None:
            assert record.dispatch >= record.fetch
        if record.dispatch is not None and record.issue is not None:
            assert record.issue >= record.dispatch
        if record.issue is not None and record.commit is not None:
            assert record.commit >= record.issue


def test_spawn_events_recorded():
    _, tracer = traced_engine()
    spawns = [e for e in tracer.events if e.kind == "spawn"]
    assert spawns
    assert "region" in spawns[0].detail


def test_records_cover_multiple_threadlets():
    _, tracer = traced_engine()
    slots = {r.slot for r in tracer.records.values()}
    assert len(slots) >= 2


def test_render_pipeline_shape():
    _, tracer = traced_engine(baseline_machine())
    text = tracer.render_pipeline(count=10)
    lines = text.splitlines()
    assert len(lines) == 11  # header + 10 rows
    assert "F" in text and "C" in text


def test_render_events_text():
    _, tracer = traced_engine()
    assert "spawn" in tracer.render_events()


def test_stage_latencies_positive():
    _, tracer = traced_engine(baseline_machine())
    latencies = tracer.stage_latencies()
    assert latencies["fetch_to_dispatch"] >= 0
    assert latencies["issue_to_commit"] >= 0


def test_max_instructions_cap():
    program = compile_frog(SOURCE).program
    engine = Engine(baseline_machine(), program, SparseMemory(),
                    {"r1": 0x1000, "r2": 64})
    tracer = Tracer.attach(engine, max_instructions=20)
    engine.run()
    assert len(tracer.records) <= 20


def test_tracing_does_not_change_timing():
    program = compile_frog(SOURCE).program

    def run(with_tracer):
        engine = Engine(default_machine(), program, SparseMemory(),
                        {"r1": 0x1000, "r2": 24})
        if with_tracer:
            Tracer.attach(engine)
        engine.run()
        return engine.stats.cycles

    assert run(False) == run(True)
