"""Unit tests for IR-level analyses and passes: CFG, dominators, loops,
liveness, optimisation, register allocation."""

import pytest

from repro.compiler import CFG, Liveness, find_loops, lower_module, optimize
from repro.compiler.ir import (
    Branch,
    CondBranch,
    Const,
    Function,
    IRInstr,
    IROp,
    Ret,
)
from repro.compiler.loops import loop_preheader
from repro.compiler.optimize import (
    eliminate_dead_code,
    fuse_copies,
    remove_unreachable_blocks,
)
from repro.compiler.regalloc import allocate, apply_allocation, compute_intervals
from repro.errors import CompilerError
from repro.lang import parse


def build_diamond():
    """entry -> (left|right) -> join, with a loop around join->entry? No:
    a simple if/else diamond."""
    f = Function("f")
    entry = f.new_block("entry")
    left = f.new_block("left")
    right = f.new_block("right")
    join = f.new_block("join")
    cond = f.new_vreg()
    entry.instrs.append(IRInstr(IROp.MOV, dest=cond, operands=(Const(1),)))
    entry.terminator = CondBranch(cond, left.name, right.name)
    left.terminator = Branch(join.name)
    right.terminator = Branch(join.name)
    join.terminator = Ret(None)
    return f, entry, left, right, join


def test_cfg_preds_succs():
    f, entry, left, right, join = build_diamond()
    cfg = CFG(f)
    assert set(cfg.succs[entry.name]) == {left.name, right.name}
    assert set(cfg.preds[join.name]) == {left.name, right.name}


def test_dominators_diamond():
    f, entry, left, right, join = build_diamond()
    cfg = CFG(f)
    assert cfg.idom[left.name] == entry.name
    assert cfg.idom[right.name] == entry.name
    assert cfg.idom[join.name] == entry.name
    assert cfg.dominates(entry.name, join.name)
    assert not cfg.dominates(left.name, join.name)


def test_validate_missing_terminator():
    f = Function("f")
    f.new_block("entry")
    with pytest.raises(CompilerError):
        f.validate()


def test_validate_unknown_successor():
    f = Function("f")
    b = f.new_block("entry")
    b.terminator = Branch("nowhere")
    with pytest.raises(CompilerError):
        f.validate()


def lower(source, entry="main"):
    return lower_module(parse(source), entry)[entry]


def test_find_loops_for_loop():
    func = lower(
        "fn main(n: int) { for (var i: int = 0; i < n; i = i + 1) { n = n; } }"
    )
    loops = find_loops(func)
    assert len(loops) == 1
    loop = next(iter(loops.values()))
    assert loop.header.startswith("for.cond")
    assert len(loop.latches) == 1
    assert loop.exits


def test_nested_loop_depths():
    func = lower(
        """
        fn main(n: int) {
            for (var i: int = 0; i < n; i = i + 1) {
                for (var j: int = 0; j < n; j = j + 1) { n = n; }
            }
        }
        """
    )
    loops = find_loops(func)
    depths = sorted(loop.depth for loop in loops.values())
    assert depths == [1, 2]
    inner = next(l for l in loops.values() if l.depth == 2)
    outer = next(l for l in loops.values() if l.depth == 1)
    assert inner.parent == outer.header
    assert inner.blocks < outer.blocks


def test_loop_preheader_found():
    func = lower(
        "fn main(n: int) { for (var i: int = 0; i < n; i = i + 1) { n = n; } }"
    )
    cfg = CFG(func)
    loops = find_loops(func, cfg)
    loop = next(iter(loops.values()))
    assert loop_preheader(func, cfg, loop) is not None


def test_liveness_loop_carried_values():
    func = lower(
        """
        fn main(a: ptr<int>, n: int) -> int {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
            return s;
        }
        """
    )
    cfg = CFG(func)
    live = Liveness(func, cfg)
    loops = find_loops(func, cfg)
    header = next(iter(loops.values())).header
    live_in_names = {v.name for v in live.live_in[header]}
    # Both the accumulator and the induction variable cross the back edge.
    assert any(name.startswith("s_") for name in live_in_names)
    assert any(name.startswith("i_") for name in live_in_names)


def test_remove_unreachable_blocks():
    f, *_ = build_diamond()
    orphan = f.new_block("orphan")
    orphan.terminator = Ret(None)
    assert remove_unreachable_blocks(f) == 1
    assert all(b.name != orphan.name for b in f.blocks)


def test_fuse_copies_single_use():
    f = Function("f")
    b = f.new_block("entry")
    t = f.new_vreg()
    v = f.new_vreg()
    b.instrs = [
        IRInstr(IROp.ADD, dest=t, operands=(Const(1), Const(2))),
        IRInstr(IROp.MOV, dest=v, operands=(t,)),
    ]
    b.terminator = Ret(v)
    assert fuse_copies(f) == 1
    assert len(b.instrs) == 1
    assert b.instrs[0].dest == v


def test_dead_code_elimination_keeps_trapping_ops():
    f = Function("f")
    b = f.new_block("entry")
    dead = f.new_vreg()
    div = f.new_vreg()
    b.instrs = [
        IRInstr(IROp.ADD, dest=dead, operands=(Const(1), Const(2))),
        IRInstr(IROp.DIV, dest=div, operands=(Const(1), Const(0))),
    ]
    b.terminator = Ret(None)
    eliminate_dead_code(f)
    ops = [i.op for i in b.instrs]
    assert IROp.ADD not in ops     # dead and pure: removed
    assert IROp.DIV in ops         # can trap: preserved


def test_optimize_shrinks_lowered_code():
    func = lower(
        """
        fn main(a: ptr<int>, n: int) {
            for (var i: int = 0; i < n; i = i + 1) { a[i] = i * 2 + 1; }
        }
        """
    )
    before = sum(len(b.instrs) for b in func.blocks)
    optimize(func)
    after = sum(len(b.instrs) for b in func.blocks)
    assert after < before


def test_intervals_cover_loop_carried_ranges():
    func = lower(
        """
        fn main(n: int) -> int {
            var s: int = 0;
            for (var i: int = 0; i < n; i = i + 1) { s = s + i; }
            return s;
        }
        """
    )
    optimize(func)
    intervals = {iv.vreg.name: iv for iv in compute_intervals(func)}
    s_interval = next(v for k, v in intervals.items() if k.startswith("s_"))
    i_interval = next(v for k, v in intervals.items() if k.startswith("i_"))
    # Loop-carried ranges must span the whole loop region.
    assert s_interval.end > s_interval.start
    assert i_interval.end > i_interval.start


def test_allocation_without_spills_for_small_functions():
    func = lower("fn main(a: int, b: int) -> int { return a * b + a; }")
    optimize(func)
    alloc = allocate(func)
    assert alloc.frame_slots == 0
    assert all(not iv.spilled for iv in alloc.mapping.values())


def test_allocation_spills_under_pressure():
    decls = "\n".join(f"var v{k}: int = {k};" for k in range(40))
    total = "+".join(f"v{k}" for k in range(40))
    func = lower(f"fn main() -> int {{ {decls} return {total}; }}")
    # No optimisation: keep all 40 values alive simultaneously.
    alloc = allocate(func)
    assert alloc.frame_slots > 0


def test_apply_allocation_leaves_physical_names():
    from repro.isa import registers as regdefs

    func = lower("fn main(a: int) -> int { return a + 1; }")
    optimize(func)
    alloc = allocate(func)
    apply_allocation(func, alloc)
    for instr in func.instructions():
        for use in instr.uses():
            assert use.name in regdefs.ALL_REGS
        for d in instr.defs():
            assert d.name in regdefs.ALL_REGS
