"""Tests for the declarative experiment registry and sweep engine
(repro.experiments.spec / .registry) and its CLI surface.

The headline acceptance criterion lives here: one ``run_all`` invocation
must simulate each distinct (workload, config) cell at most once across
all experiments, proven by the ``exp.cells_*`` counters.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments import clear_cache, registry
from repro.experiments.spec import (
    ExperimentSpec,
    Variant,
    global_counters,
    reset_counters,
)

ALL_NAMES = [
    "fig1", "fig6", "fig7", "fig8", "fig9", "fig10",
    "table2", "table3", "packing", "assoc", "area", "loops",
    "threadlets", "bloom",
]

SUBSET17 = ["imagick", "x264"]
SUBSET06 = ["libquantum", "mcf06"]


# ---------------------------------------------------------------------------
# Registry contents and spec validation
# ---------------------------------------------------------------------------

def test_every_paper_artefact_is_registered():
    assert registry.names() == ALL_NAMES


def test_get_unknown_experiment_raises_repro_error():
    with pytest.raises(ReproError, match="unknown experiment 'nope'"):
        registry.get("nope")


def test_reregistering_same_spec_object_is_noop():
    spec = registry.get("fig6")
    assert registry.register(spec) is spec
    assert registry.names() == ALL_NAMES


def test_registering_different_spec_under_taken_name_fails():
    imposter = ExperimentSpec(
        name="fig6", title="imposter", kind="figure", derive=lambda s: None,
    )
    with pytest.raises(ValueError, match="already registered"):
        registry.register(imposter)


def test_spec_validation_rejects_bad_axes():
    def derive(sweep):
        return None

    with pytest.raises(ValueError, match="bad experiment name"):
        ExperimentSpec(name="bad name!", title="t", kind="figure",
                       derive=derive)
    with pytest.raises(ValueError, match="kind"):
        ExperimentSpec(name="x", title="t", kind="poster", derive=derive)
    with pytest.raises(ValueError, match="suite"):
        ExperimentSpec(name="x", title="t", kind="figure", derive=derive,
                       suites=())
    with pytest.raises(ValueError, match="variant"):
        ExperimentSpec(name="x", title="t", kind="figure", derive=derive,
                       variants=())
    with pytest.raises(ValueError, match="duplicate variant labels"):
        ExperimentSpec(name="x", title="t", kind="figure", derive=derive,
                       variants=(Variant("a"), Variant("a")))


def test_every_spec_has_title_kind_and_description():
    for spec in registry.specs():
        assert spec.title
        assert spec.kind in ("figure", "table", "ablation", "report")
        assert spec.description


# ---------------------------------------------------------------------------
# Execution through the engine
# ---------------------------------------------------------------------------

def test_run_experiment_returns_renderable_result():
    run = registry.run_experiment("fig9", only=SUBSET17)
    assert run.name == "fig9"
    assert not run.sampled
    assert "SSB size" in run.render()
    assert run.counters.experiments == 1
    assert run.counters.cells_total == (
        run.counters.cells_cached + run.counters.cells_simulated
    )


def test_run_experiment_json_payload_shape():
    run = registry.run_experiment("fig9", only=SUBSET17)
    payload = run.to_json()
    assert payload["experiment"] == "fig9"
    assert payload["kind"] == "figure"
    assert payload["suites"] == ["spec2017"]
    assert payload["variants"] == [
        "ssb-512", "ssb-2048", "ssb-8192", "ssb-32768"
    ]
    assert set(payload["cells"]) == {"total", "cached", "simulated"}
    assert payload["data"]["points"][0]["ssb_bytes"] == 512
    assert payload["render"] == run.render()


def test_cells_shared_across_experiments_in_one_invocation():
    """The tentpole acceptance criterion: a single invocation simulates
    each distinct (workload, config) cell at most once, across
    experiments — observed through the exp.* counters."""
    clear_cache()
    reset_counters()
    only = SUBSET17 + SUBSET06

    first = registry.run_all(["fig6", "fig7", "packing"], only=only)
    by_name = {run.name: run for run in first}
    # fig6 runs the default config over both suites; everything is cold.
    assert by_name["fig6"].counters.cells_simulated > 0
    # fig7 asks for the same spec2017 default-config cells — all hits.
    assert by_name["fig7"].counters.cells_simulated == 0
    assert by_name["fig7"].counters.cells_cached > 0
    # packing's "with packing" arm is shared, the no-packing arm is new.
    assert 0 < by_name["packing"].counters.cells_simulated
    assert by_name["packing"].counters.cells_cached > 0

    totals = global_counters()
    assert totals.experiments == 3
    assert totals.cells_cached > 0
    first_simulated = totals.cells_simulated

    # A second pass over the same experiments must simulate nothing.
    second = registry.run_all(["fig6", "fig7", "packing"], only=only)
    totals = global_counters()
    assert totals.cells_simulated == first_simulated
    assert all(run.counters.cells_simulated == 0 for run in second)


def test_sampled_cells_are_disjoint_from_exact_cells():
    """A cached exact simulation must not satisfy a sampled request (and
    the run is flagged sampled)."""
    registry.run_experiment("fig7", only=["imagick"])  # exact, warm
    run = registry.run_experiment("fig7", only=["imagick"], sampling=True)
    assert run.sampled
    assert run.to_json()["sampled"] is True
    # First sampled pass: nothing can come from the exact cache.
    sampled_again = registry.run_experiment(
        "fig7", only=["imagick"], sampling=True
    )
    assert sampled_again.counters.cells_simulated == 0


def test_counters_surface_through_the_metrics_registry():
    from repro.obs.metrics import load_all

    reset_counters()
    registry.run_experiment("fig9", only=["imagick"])
    values = load_all().collect(global_counters(), "exp")
    assert values["exp.experiments"] == 1
    assert values["exp.cells_total"] > 0
    assert values["exp.cells_total"] == (
        values["exp.cells_cached"] + values["exp.cells_simulated"]
    )


def test_axis_overrides_do_not_mutate_registered_spec():
    spec = registry.get("fig6")
    run = registry.run_experiment(
        "fig6", suites=("spec2017",), only=SUBSET17
    )
    assert run.spec.suites == ("spec2017",)
    assert registry.get("fig6") is spec
    assert spec.suites == ("spec2006", "spec2017")


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

def test_write_artifacts_manifest_and_files(tmp_path):
    runs = [registry.run_experiment("fig9", only=SUBSET17)]
    manifest_path = registry.write_artifacts(runs, str(tmp_path))
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest_path == str(tmp_path / "manifest.json")
    assert manifest["tool"] == "repro exp"
    [entry] = manifest["experiments"]
    assert entry["experiment"] == "fig9"
    assert entry["artifacts"] == {"text": "fig9.txt", "json": "fig9.json"}
    assert manifest["cells"]["total"] == runs[0].counters.cells_total
    text = (tmp_path / "fig9.txt").read_text()
    assert "SSB size" in text
    payload = json.loads((tmp_path / "fig9.json").read_text())
    assert payload["experiment"] == "fig9"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_exp_list_names_every_experiment(capsys):
    assert main(["exp", "list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_NAMES:
        assert name in out


def test_cli_exp_list_json(capsys):
    assert main(["exp", "list", "--json"]) == 0
    listed = json.loads(capsys.readouterr().out)
    assert [entry["name"] for entry in listed] == ALL_NAMES
    assert all(entry["title"] for entry in listed)


def test_cli_exp_run_renders_and_reports_cells(capsys):
    rc = main(["exp", "run", "fig9", "--only", ",".join(SUBSET17),
               "--jobs", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out
    assert "cells:" in out and "simulated" in out


def test_cli_exp_run_json_single_experiment_is_one_object(capsys):
    rc = main(["exp", "run", "fig9", "--only", ",".join(SUBSET17),
               "--jobs", "1", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment"] == "fig9"


def test_cli_exp_run_multiple_with_out_writes_artifacts(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    rc = main(["exp", "run", "fig9", "fig10",
               "--only", ",".join(SUBSET17), "--jobs", "1",
               "--json", "--out", str(out_dir)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert [entry["experiment"] for entry in payload] == ["fig9", "fig10"]
    assert (out_dir / "manifest.json").exists()
    assert (out_dir / "fig9.txt").exists()
    assert (out_dir / "fig10.json").exists()


def test_cli_exp_run_unknown_name_errors(capsys):
    rc = main(["exp", "run", "fig99"])
    assert rc == 1
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_legacy_experiment_delegates_to_registry(capsys):
    rc = main(["experiment", "fig9", "--jobs", "1"])
    assert rc == 0
    assert "Figure 9" in capsys.readouterr().out
