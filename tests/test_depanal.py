"""Unit tests for the static loop-carried dependence analyzer."""

import pytest

from repro.compiler import (
    CompileOptions,
    HintOptions,
    VERDICT_INDEPENDENT,
    VERDICT_MAY_CONFLICT,
    VERDICT_MUST_CONFLICT,
    analyze_function,
    compile_frog,
    lower_module,
)
from repro.lang import parse


def analyze(source, entry="main", granule_bytes=4):
    module = lower_module(parse(source), entry)
    return analyze_function(module[entry], granule_bytes=granule_bytes)


def only_loop(source, **kwargs):
    results = analyze(source, **kwargs)
    assert len(results) == 1
    return next(iter(results.values()))


def test_disjoint_pointer_params_independent():
    dep = only_loop(
        """
        fn main(dst: ptr<int>, src: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                dst[i] = src[i] * 2;
            }
        }
        """
    )
    assert dep.verdict == VERDICT_INDEPENDENT
    assert dep.witness is None


def test_same_array_unit_stride_independent():
    # a[i] = a[i] * 2: the store and load touch the same address only in
    # the *same* iteration; any carried distance d >= 1 moves the pair a
    # full (granule-aligned) element apart.
    dep = only_loop(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[i] = a[i] * 2;
            }
        }
        """
    )
    assert dep.verdict == VERDICT_INDEPENDENT


def test_distance_one_must_conflict():
    dep = only_loop(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[i + 1] = a[i] + 3;
            }
        }
        """
    )
    assert dep.verdict == VERDICT_MUST_CONFLICT
    assert dep.min_distance == 1
    assert dep.witness is not None
    assert dep.witness.certain
    assert dep.witness.store.kind == "store"
    assert dep.witness.load.kind == "load"


def test_distance_four_must_conflict():
    dep = only_loop(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[i + 4] = a[i] + 1;
            }
        }
        """
    )
    assert dep.verdict == VERDICT_MUST_CONFLICT
    assert dep.min_distance == 4


def test_indirect_index_may_conflict():
    # a[b[i]] has a data-dependent address: the analyzer must give up on
    # the store address, not guess.
    dep = only_loop(
        """
        fn main(a: ptr<int>, b: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[b[i]] = a[i] + 1;
            }
        }
        """
    )
    assert dep.verdict == VERDICT_MAY_CONFLICT
    assert dep.witness is not None
    assert not dep.witness.certain
    assert dep.witness.reason == "non-affine-address"


def test_loop_invariant_address_conflicts():
    # An accumulator cell re-read and re-written every iteration is a
    # carried dependence at distance 1.
    dep = only_loop(
        """
        fn main(a: ptr<int>, s: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                s[0] = s[0] + a[i];
            }
        }
        """
    )
    assert dep.verdict == VERDICT_MUST_CONFLICT
    assert dep.min_distance == 1
    assert dep.witness.reason == "loop-invariant-address"


def test_symbolic_offset_may_conflict():
    # a[i + k] vs a[i]: the carried distance equals the runtime value of
    # k, which the analyzer cannot know.
    dep = only_loop(
        """
        fn main(a: ptr<int>, k: int, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[i + k] = a[i] + 1;
            }
        }
        """
    )
    assert dep.verdict == VERDICT_MAY_CONFLICT
    assert dep.witness.reason == "symbolic-offset"


def test_stride_mismatch_not_independent():
    # a[2i] = a[i]: iteration 2d reads what iteration d wrote.
    dep = only_loop(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[2 * i] = a[i] + 1;
            }
        }
        """
    )
    assert dep.verdict != VERDICT_INDEPENDENT


def test_while_loop_induction_variable_recognized():
    dep = only_loop(
        """
        fn main(a: ptr<int>, b: ptr<int>, n: int) {
            var i: int = 0;
            #pragma loopfrog
            while (i < n) {
                a[i] = a[i] + b[i];
                i = i + 1;
            }
        }
        """
    )
    assert dep.verdict == VERDICT_INDEPENDENT


def test_accesses_carry_source_lines():
    dep = only_loop(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[i + 1] = a[i] + 3;
            }
        }
        """
    )
    assert dep.line > 0
    assert dep.accesses
    assert all(site.line > 0 for site in dep.accesses)
    assert dep.witness.store.line == dep.witness.load.line


def test_to_dict_round_trips_core_fields():
    dep = only_loop(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[i + 1] = a[i] + 3;
            }
        }
        """
    )
    payload = dep.to_dict()
    assert payload["verdict"] == VERDICT_MUST_CONFLICT
    assert payload["min_distance"] == 1
    assert payload["witness"]["reason"] == dep.witness.reason
    assert payload["accesses"][0]["address"] is not None


def test_pipeline_attaches_dependence_and_verdicts():
    result = compile_frog(
        """
        fn main(dst: ptr<int>, src: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                dst[i] = src[i] * 2;
            }
        }
        """,
        CompileOptions(static_analysis=True),
    )
    assert result.dependence
    report = result.hint_reports[0]
    assert report.annotated
    assert report.static_verdict == VERDICT_INDEPENDENT


def test_granule_padding_flags_adjacent_touch():
    # With a huge conflict granule, even well-separated accesses share a
    # granule: the verdict must degrade away from independent.
    source = """
    fn main(a: ptr<int>, n: int) {
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            a[i] = a[i] * 2;
        }
    }
    """
    fine = only_loop(source, granule_bytes=4)
    assert fine.verdict == VERDICT_INDEPENDENT
    coarse = only_loop(source, granule_bytes=64)
    assert coarse.verdict != VERDICT_INDEPENDENT


def test_unknown_speculate_policy_rejected():
    from repro.errors import CompilerError

    with pytest.raises(CompilerError):
        compile_frog(
            "fn main(n: int) { }",
            CompileOptions(hint_options=HintOptions(speculate="sometimes")),
        )
