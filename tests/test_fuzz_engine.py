"""Tests for the performance-fuzzing harness (docs/workloads.md)."""

import random

import pytest

from repro.errors import FuzzError
from repro.fuzz import (
    FuzzConfig,
    ORACLES,
    evaluate_case,
    load_corpus,
    run_fuzz,
    write_corpus,
)
from repro.fuzz.engine import execute_spec, minimize, survivor_name
from repro.fuzz.model import (
    LoopSpec,
    ProgramSpec,
    StmtSpec,
    generate_program,
)
from repro.fuzz.mutators import MUTATOR_NAMES, MUTATORS, apply_mutations


def _simple_spec(**loop_kwargs):
    defaults = dict(trip=8, stride=1, offset=0, pragma=True, nested_trip=0,
                    stmts=(StmtSpec(kind="stream"),))
    defaults.update(loop_kwargs)
    return ProgramSpec(loops=(LoopSpec(**defaults),), input_seed=5)


# ---------------------------------------------------------------------------
# The program model
# ---------------------------------------------------------------------------


def test_model_render_compiles_and_runs():
    case = execute_spec(_simple_spec())
    assert case.exec_image == case.frog_image
    assert case.stats.arch_instructions > 0


def test_model_dict_roundtrip():
    rng = random.Random(3)
    for _ in range(20):
        spec = generate_program(rng)
        assert ProgramSpec.from_dict(spec.to_dict()) == spec


def test_model_from_dict_rejects_malformed():
    with pytest.raises(FuzzError):
        ProgramSpec.from_dict("not a mapping")
    with pytest.raises(FuzzError):
        ProgramSpec.from_dict({"loops": "nope", "input_seed": 0})
    with pytest.raises(FuzzError):
        ProgramSpec.from_dict({
            "loops": [{"trip": 4, "stmts": [{"kind": "wat"}]}],
            "input_seed": 0,
        })


def test_generate_program_is_seed_deterministic():
    a = [generate_program(random.Random(11)) for _ in range(5)]
    b = [generate_program(random.Random(11)) for _ in range(5)]
    assert a[:1] == b[:1]
    assert generate_program(random.Random(11)) == a[0]


# ---------------------------------------------------------------------------
# Mutators
# ---------------------------------------------------------------------------


def test_mutators_preserve_validity():
    rng = random.Random(17)
    for _ in range(30):
        base = generate_program(rng)
        mutated, names = apply_mutations(base, rng, 3)
        assert all(n in MUTATOR_NAMES for n in names)
        # Every mutant must still serialize and re-parse.
        assert ProgramSpec.from_dict(mutated.to_dict()) == mutated


def test_each_mutator_individually():
    rng = random.Random(23)
    base = generate_program(rng)
    for name, mutator in MUTATORS.items():
        out = mutator(base, random.Random(1))
        assert isinstance(out, ProgramSpec), name


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def test_clean_case_fires_no_severe_oracle():
    case = execute_spec(_simple_spec())
    names = {o.oracle for o in evaluate_case(case)}
    assert "state_divergence" not in names
    assert "unsound_independent" not in names


def test_oracle_registry_is_severity_ordered():
    assert list(ORACLES)[0] == "state_divergence"


# ---------------------------------------------------------------------------
# Minimizer
# ---------------------------------------------------------------------------


def test_minimize_descends_to_fixpoint():
    # Oracle: "has a loop with trip >= 4" — minimizer should shrink
    # everything else away.
    big = ProgramSpec(
        loops=(
            LoopSpec(trip=20, stride=4, offset=8, pragma=True,
                     nested_trip=4,
                     stmts=(StmtSpec(kind="stream", scale=3),
                            StmtSpec(kind="accum", scale=2))),
            LoopSpec(trip=12, stride=1, offset=0, pragma=True,
                     nested_trip=0, stmts=(StmtSpec(kind="stream"),)),
        ),
        input_seed=5,
    )

    def interesting(spec):
        if any(loop.trip >= 4 for loop in spec.loops):
            return "trip>=4"
        return None

    small, detail, used = minimize(big, interesting, max_steps=500)
    assert detail == "trip>=4"
    assert used > 0
    assert len(small.loops) == 1
    loop = small.loops[0]
    assert loop.trip == 5  # smallest shrink candidate >= 4 wins
    assert loop.stride == 1 and loop.offset == 0 and loop.nested_trip == 0
    assert len(loop.stmts) == 1


def test_minimize_rejects_uninteresting_start():
    with pytest.raises(ValueError):
        minimize(_simple_spec(), lambda s: None)


# ---------------------------------------------------------------------------
# Session determinism: the reproducibility contract
# ---------------------------------------------------------------------------

# One small pinned session shared by the determinism tests below (seed 3
# finds survivors quickly); run_fuzz is deterministic, so sharing one
# report is equivalent to re-running it per test.
SESSION_CONFIG = FuzzConfig(seed=3, budget=4, max_mutations=2,
                            minimize_steps=40)


@pytest.fixture(scope="module")
def session_report():
    return run_fuzz(SESSION_CONFIG)


def test_session_byte_reproducible(session_report, tmp_path):
    second = run_fuzz(SESSION_CONFIG)
    assert session_report.to_dict() == second.to_dict()

    dir_a, dir_b = tmp_path / "a", tmp_path / "b"
    write_corpus(session_report.survivors, str(dir_a))
    write_corpus(second.survivors, str(dir_b))
    files_a = sorted(p.name for p in dir_a.glob("*.yaml"))
    files_b = sorted(p.name for p in dir_b.glob("*.yaml"))
    assert files_a == files_b
    assert files_a  # the pinned seed must keep finding survivors
    for name in files_a:
        assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes()


def test_session_counts_are_consistent(session_report):
    report = session_report
    assert report.cases == SESSION_CONFIG.budget
    assert report.executions >= report.cases
    assert report.crashes == 0
    for survivor in report.survivors:
        assert survivor.name == survivor_name(survivor.oracle,
                                              survivor.program)


def test_corpus_roundtrip(session_report, tmp_path):
    report = session_report
    paths = write_corpus(report.survivors, str(tmp_path))
    entries = load_corpus(str(tmp_path))
    assert len(entries) == len(paths)
    by_name = {s.name: s for s in report.survivors}
    for entry in entries:
        survivor = by_name[entry.name]
        assert entry.oracle == survivor.oracle
        assert entry.program == survivor.program


def test_load_corpus_errors():
    with pytest.raises(FuzzError, match="does not exist"):
        load_corpus("/nonexistent/corpus/dir")


def test_fuzz_metrics_registered(session_report):
    from repro.obs.metrics import load_all

    registry = load_all()
    snapshot = registry.collect(session_report, subsystem="fuzz")
    assert snapshot["fuzz.session.cases"] == SESSION_CONFIG.budget
    assert snapshot["fuzz.session.executions"] >= SESSION_CONFIG.budget
    assert "fuzz.session.programs_per_second" in snapshot
    assert snapshot["fuzz.session.survivors"] == len(session_report.survivors)
