"""Property sweep: every public generator at its boundary parameters.

For each workload template the spec layer discovers, instantiate the
boundary cases — primary trip count 0 and 1, ``sequential=0`` where the
template has a sequential tail, and full stride aliasing where it has a
stride knob — and require the full differential contract to hold:

* the program compiles (with hints) and runs to completion,
* the fast and reference engine paths are bit-identical
  (cycles, instructions, squashes, final memory),
* the LoopFrog core's committed memory matches the functional executor.
"""

import pytest

from repro.uarch import LoopFrogCore
from repro.uarch.core import set_engine_reference_mode
from repro.uarch.executor import Executor
from repro.workloads.spec import WorkloadSpec, template_names, template_params

# The parameter that controls each template's primary trip count.
TRIP_PARAM = {
    "branchy_count": "n",
    "convolution": "height",
    "dp_row": "rows",
    "event_queue": "nodes",
    "gauss_mix": "senones",
    "grid_relax": "cells",
    "hash_probe": "queries",
    "hist_prefetch": "n",
    "huge_body": "n",
    "low_trip_blocks": "groups",
    "lz_match": "n",
    "md_force": "n",
    "network_flow": "n",
    "ray_sphere": "rays",
    "sad_block": "blocks",
    "saturated_fp": "n",
    "scan_prefetch": "queries",
    "sparse_matvec": "nrows",
    "stencil_rows": "rows",
    "stream_op": "n",
    "tiny_loop": "outer",
    "transpose": "rows",
}

MAX_CYCLES = 4_000_000


def _boundary_cases():
    cases = []
    for template in template_names():
        params = template_params(template)
        trip = TRIP_PARAM[template]
        assert trip in params, f"{template}: TRIP_PARAM out of date"
        for value in (0, 1):
            cases.append((template, {trip: value}, f"{trip}={value}"))
        if "sequential" in params and params["sequential"] != 0:
            cases.append((template, {"sequential": 0}, "sequential=0"))
        # Full aliasing: every iteration lands on the same conflict
        # granule as its neighbour.
        if "stride" in params:
            cases.append((template, {"stride": 1}, "stride=1"))
        if "col_stride" in params:
            cases.append((template, {"col_stride": 1}, "col_stride=1"))
    return cases


CASES = _boundary_cases()


def test_trip_param_map_is_exhaustive():
    assert sorted(TRIP_PARAM) == template_names()


def _image(memory):
    return {a: memory.load_byte(a) for a in memory.written_addresses()}


@pytest.mark.parametrize(
    "template,overrides,label",
    CASES,
    ids=[f"{t}-{label}" for t, _, label in CASES],
)
def test_boundary_case_differential(template, overrides, label):
    spec = WorkloadSpec(
        template=template,
        name=f"prop_{template}",
        params=overrides,
        seed=99,
    )
    workload = spec.instantiate()
    program = workload.program  # compiles with hints

    # Functional executor: the golden model.
    memory, regs = workload.fresh_input()
    ex = Executor(program, memory)
    ex.regs.update(regs)
    ex.run(max_instructions=4_000_000)
    exec_image = _image(ex.memory)

    # Fast engine path.
    memory, regs = workload.fresh_input()
    set_engine_reference_mode(False)
    try:
        fast = LoopFrogCore().run(program, memory, regs,
                                  max_cycles=MAX_CYCLES)
    finally:
        set_engine_reference_mode(None)

    # Reference engine path.
    memory, regs = workload.fresh_input()
    set_engine_reference_mode(True)
    try:
        ref = LoopFrogCore().run(program, memory, regs,
                                 max_cycles=MAX_CYCLES)
    finally:
        set_engine_reference_mode(None)

    # Engine parity: bit-identical behaviour.
    assert fast.stats.cycles == ref.stats.cycles
    assert fast.stats.arch_instructions == ref.stats.arch_instructions
    assert fast.stats.threadlets_squashed == ref.stats.threadlets_squashed
    assert _image(fast.memory) == _image(ref.memory)

    # Semantics: speculation must commit the executor's memory.
    assert _image(fast.memory) == exec_image
