"""Tests for profiling-based loop selection (paper section 5.1)."""

import pytest

from repro.compiler import (
    CompileOptions,
    apply_selection,
    compile_frog,
    profile_and_select,
    profile_program,
    select_profitable,
)
from repro.uarch import LoopFrogCore, SparseMemory
from repro.uarch.executor import Executor

SOURCE = """
fn main(a: ptr<int>, b: ptr<int>, n: int) {
    // A worthwhile loop: decent trips and body.
    for (var i: int = 0; i < n; i = i + 1) {
        var x: int = a[i];
        b[i] = x * x + x * 3 + (x >> 2) + 1;
    }
    // A tiny loop with a 2-instruction body: not worth annotating.
    for (var j: int = 0; j < 3; j = j + 1) {
        b[n + j] = j;
    }
}
"""


def compiled_all_marked():
    return compile_frog(SOURCE, CompileOptions(mark_all_loops=True))


def inputs(n=64):
    mem = SparseMemory()
    mem.store_int_array(0x8000, [(3 * i) % 17 for i in range(n)])
    return mem, {"r1": 0x8000, "r2": 0x1000, "r3": n}


def test_mark_all_loops_annotates_unpragmaed():
    result = compiled_all_marked()
    assert len(result.annotated_loops) == 2


def test_profile_counts_regions():
    result = compiled_all_marked()
    mem, regs = inputs()
    profiles = profile_program(result.program, mem, regs)
    assert len(profiles) == 2
    big = max(profiles, key=lambda p: p.instructions)
    small = min(profiles, key=lambda p: p.instructions)
    assert big.entries == 1
    assert big.iterations == 64
    assert big.mean_trip_count == pytest.approx(64)
    assert small.iterations == 3
    assert big.coverage > small.coverage


def test_select_profitable_drops_tiny_loops():
    result = compiled_all_marked()
    mem, regs = inputs()
    profiles = profile_program(result.program, mem, regs)
    keep = select_profitable(profiles)
    assert len(keep) == 1
    kept = next(p for p in profiles if p.region in keep)
    assert kept.mean_trip_count > 10


def test_apply_selection_nops_unselected_hints():
    result = compiled_all_marked()
    mem, regs = inputs()
    selected = profile_and_select(result.program, mem, regs)
    kept_regions = {i.region for i in selected if i.is_hint}
    assert len(kept_regions) == 1
    # The unselected loop's hints are nops but the layout is unchanged.
    assert len(selected) == len(result.program)


def test_selected_program_still_correct():
    result = compiled_all_marked()
    mem, regs = inputs()
    selected = profile_and_select(result.program, mem, regs)

    mem_ref, regs_ref = inputs()
    ex = Executor(result.program, mem_ref)
    ex.regs.update(regs_ref)
    ex.run()

    mem_sim, regs_sim = inputs()
    LoopFrogCore().run(selected, mem_sim, regs_sim)
    n = 64
    assert mem_sim.load_int_array(0x1000, n + 3) == mem_ref.load_int_array(
        0x1000, n + 3
    )


def test_selection_thresholds_configurable():
    result = compiled_all_marked()
    mem, regs = inputs()
    profiles = profile_program(result.program, mem, regs)
    keep_all = select_profitable(
        profiles, min_coverage=0.0, min_trip_count=0, min_iteration_size=0
    )
    assert len(keep_all) == 2
    keep_none = select_profitable(profiles, min_coverage=0.99)
    assert not keep_none
