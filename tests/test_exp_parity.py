"""Golden parity tests for the declarative experiment registry.

Every figure/table used to be a hand-rolled ``run_*`` function calling
``run_suite``/``run_workload`` directly.  These tests replicate those
pre-refactor computations inline (lifted verbatim from the old modules)
and assert the registry path produces **numerically identical** results
and **identical rendered text** on shared workload subsets.

Exact ``==`` on floats is deliberate: the engine is deterministic and the
spec engine must be pure bookkeeping — any drift, however small, means
the refactor changed an experiment's semantics.
"""

from repro.analysis.categorize import categorize_runs, phase_classifications
from repro.analysis.speedup import geometric_mean
from repro.experiments import registry, run_suite, run_workload
from repro.experiments.ablations import machine_with_bloom, machine_with_threadlets
from repro.experiments.assoc_sensitivity import CONFIGURATIONS, machine_with_assoc
from repro.experiments.fig9_ssb_size import SIZES, machine_with_ssb_size
from repro.experiments.fig10_granule import GRANULES, machine_with_granule
from repro.experiments.metrics import suite_geomean
from repro.experiments.packing_ablation import machine_without_packing
from repro.tls import extract_tasks, simulate_multiscalar, simulate_stampede
from repro.uarch.config import default_machine, scaled_core
from repro.workloads.base import ALL_CATEGORIES
from repro.workloads.suites import suite

SUBSET17 = ["imagick", "omnetpp", "x264"]
SUBSET06 = ["libquantum", "mcf06"]
BOTH = SUBSET17 + SUBSET06


def _percent(runs):
    return (suite_geomean(runs) - 1.0) * 100.0


def _speedups(runs):
    return [(r.name, r.speedup_percent) for r in runs]


# ---------------------------------------------------------------------------
# Paired whole-suite experiments
# ---------------------------------------------------------------------------

def test_fig6_matches_direct_run_suite():
    result = registry.run_experiment("fig6", only=BOTH).result
    runs_2006 = run_suite("spec2006", only=BOTH)
    runs_2017 = run_suite("spec2017", only=BOTH)
    assert _speedups(result.runs_2006) == _speedups(runs_2006)
    assert _speedups(result.runs_2017) == _speedups(runs_2017)
    assert result.geomean_2006_percent == _percent(runs_2006)
    assert result.geomean_2017_percent == _percent(runs_2017)
    # Pre-refactor profitability rule: strictly more than +1%.
    expected_profitable = [
        r.name for r in runs_2006 + runs_2017 if r.speedup_percent > 1.0
    ]
    assert [r.name for r in result.profitable()] == expected_profitable


def test_fig7_matches_direct_utilization_computation():
    result = registry.run_experiment("fig7", only=SUBSET17).result
    runs = run_suite("spec2017", only=SUBSET17)
    assert [r.name for r in result.rows] == [r.name for r in runs]
    for row, run in zip(result.rows, runs):
        stats = run.phases[0].loopfrog
        assert row.at_least_2 == stats.threadlet_utilization(2)
        assert row.at_least_3 == stats.threadlet_utilization(3)
        assert row.all_4 == stats.threadlet_utilization(4)
    assert result.profitable_names == [
        r.name for r in runs if r.speedup_percent > 1.0
    ]


def test_fig8_matches_direct_commit_ratios():
    result = registry.run_experiment("fig8", only=SUBSET17).result
    runs = run_suite("spec2017", dynamic_deselection=False, only=SUBSET17)
    assert [r.name for r in result.rows] == [r.name for r in runs]
    for row, run in zip(result.rows, runs):
        base = run.phases[0].baseline
        frog = run.phases[0].loopfrog
        base_ipc = base.arch_instructions / base.cycles
        assert row.arch_ratio == (frog.arch_instructions / frog.cycles) / base_ipc
        assert row.spec_ratio == (
            frog.spec_committed_instructions / frog.cycles
        ) / base_ipc
        assert row.failed_ratio == (
            frog.failed_spec_instructions / frog.cycles
        ) / base_ipc


# ---------------------------------------------------------------------------
# Machine-variant sweeps
# ---------------------------------------------------------------------------

def test_fig9_matches_per_size_run_suite_sweep():
    result = registry.run_experiment("fig9", only=SUBSET17).result
    expected = [
        (size, _percent(run_suite("spec2017", machine_with_ssb_size(size),
                                  only=SUBSET17)))
        for size in SIZES
    ]
    assert result.points == expected


def test_fig10_matches_per_granule_run_suite_sweep():
    result = registry.run_experiment("fig10", only=SUBSET17).result
    for granule in GRANULES:
        runs = run_suite("spec2017", machine_with_granule(granule),
                         only=SUBSET17)
        assert result.speedup_at(granule) == _percent(runs)
        assert result.per_benchmark[granule] == {
            r.name: r.speedup_percent for r in runs
        }


def test_assoc_matches_per_configuration_sweep():
    result = registry.run_experiment("assoc", only=SUBSET17).result
    assert [p.label for p in result.points] == [c[0] for c in CONFIGURATIONS]
    for label, assoc, victim in CONFIGURATIONS:
        runs = run_suite("spec2017", machine_with_assoc(assoc, victim),
                         only=SUBSET17)
        assert result.geomean(label) == _percent(runs)
        assert result.benchmark(label, "imagick") == runs[0].speedup_percent


def test_threadlets_matches_per_context_sweep():
    result = registry.run_experiment("threadlets", only=SUBSET17).result
    for contexts in (2, 4, 8):
        runs = run_suite("spec2017", machine_with_threadlets(contexts),
                         only=SUBSET17)
        assert result.speedup_at(contexts) == _percent(runs)


def test_bloom_matches_exact_vs_bloom_runs():
    result = registry.run_experiment("bloom", only=SUBSET17).result
    assert result.exact_percent == _percent(
        run_suite("spec2017", only=SUBSET17)
    )
    assert result.bloom_percent == _percent(
        run_suite("spec2017", machine_with_bloom(), only=SUBSET17)
    )


def test_packing_matches_with_without_comparison():
    result = registry.run_experiment("packing", only=SUBSET17).result
    runs_with = run_suite("spec2017", default_machine(), only=SUBSET17)
    runs_without = run_suite("spec2017", machine_without_packing(),
                             only=SUBSET17)
    assert result.geomean_with_percent == _percent(runs_with)
    assert result.geomean_without_percent == _percent(runs_without)
    expected_affected = [
        w.name for w, wo in zip(runs_with, runs_without)
        if abs(w.speedup_percent - wo.speedup_percent) > 0.5
    ]
    assert result.affected == expected_affected
    assert result.per_benchmark == {
        w.name: {"with": w.speedup_percent, "without": wo.speedup_percent}
        for w, wo in zip(runs_with, runs_without)
    }


# ---------------------------------------------------------------------------
# Tables and reports
# ---------------------------------------------------------------------------

def test_table2_matches_direct_categorization():
    result = registry.run_experiment("table2", only=BOTH).result
    runs = []
    for name in ("spec2017", "spec2006"):
        runs.extend(run_suite(name, only=BOTH))
    profitable = [r for r in runs if r.speedup_percent > 1.0]
    assert result.shares == categorize_runs(profitable)
    assert result.classified == phase_classifications(profitable)
    expected = {}
    for run in profitable:
        for workload, _ in run.benchmark.phases:
            if workload.category in ALL_CATEGORIES:
                expected[workload.name] = workload.category
    assert result.expected == expected


def test_table3_matches_direct_tls_simulation():
    result = registry.run_experiment("table3", only=SUBSET17).result
    frog_runs = run_suite("spec2017", only=SUBSET17)
    assert result.row("LoopFrog").speedup == suite_geomean(frog_runs)

    multiscalar, stampede, task_sizes = [], [], []
    for benchmark in suite("spec2017"):
        if benchmark.name not in SUBSET17:
            continue
        for workload, _ in benchmark.phases:
            memory, regs = workload.fresh_input()
            trace = extract_tasks(workload.program, memory, regs)
            if trace.mean_parallel_task_size():
                task_sizes.append(trace.mean_parallel_task_size())
            multiscalar.append(simulate_multiscalar(trace).speedup)
            stampede.append(simulate_stampede(trace).speedup)
    assert result.row("STAMPede").speedup == geometric_mean(stampede)
    assert result.row("MultiScalar").speedup == geometric_mean(multiscalar)
    assert result.mean_task_size == sum(task_sizes) / len(task_sizes)


def test_area_matches_direct_overhead_sums():
    result = registry.run_experiment("area", only=SUBSET17).result
    runs = run_suite("spec2017", dynamic_deselection=False, only=SUBSET17)
    base_issued = sum(p.baseline.issued_instructions
                      for r in runs for p in r.phases)
    frog_issued = sum(p.loopfrog.issued_instructions
                      for r in runs for p in r.phases)
    base_l2 = sum(p.baseline.l2_accesses for r in runs for p in r.phases)
    frog_l2 = sum(p.loopfrog.l2_accesses for r in runs for p in r.phases)
    assert result.issued_increase_percent == 100.0 * (
        frog_issued / base_issued - 1.0
    )
    assert result.l2_access_increase_percent == 100.0 * (
        frog_l2 / base_l2 - 1.0
    )


def test_loops_matches_direct_region_speedups():
    result = registry.run_experiment("loops", only=BOTH).result
    speedups = {}
    for name in ("spec2017", "spec2006"):
        for run in run_suite(name, dynamic_deselection=False, only=BOTH):
            speedups.update(run.region_speedups())
    assert result.loop_speedups == speedups


# ---------------------------------------------------------------------------
# Single-config (unpaired) mode
# ---------------------------------------------------------------------------

def test_fig1_matches_direct_width_sweep():
    result = registry.run_experiment("fig1", only=SUBSET17).result
    for point in result.points:
        machine = scaled_core(point.width)
        ipcs, utils = [], []
        for benchmark in suite("spec2017"):
            if benchmark.name not in SUBSET17:
                continue
            per_phase, util_phase = [], []
            for workload, weight in benchmark.phases:
                stats = run_workload(workload, machine)
                per_phase.append((stats.ipc, weight))
                util_phase.append(
                    (stats.commit_utilization(machine.core.commit_width),
                     weight)
                )
            ipcs.append(sum(v * w for v, w in per_phase))
            utils.append(sum(v * w for v, w in util_phase))
        assert point.geomean_ipc == geometric_mean(ipcs)
        assert point.commit_utilization == sum(utils) / len(utils)


# ---------------------------------------------------------------------------
# Rendered text parity
# ---------------------------------------------------------------------------

def test_renders_are_identical_to_legacy_entry_points():
    """The thin ``run_*`` wrappers delegate to the registry with the same
    axes, so their rendered reports must match the registry's character
    for character (same subset via the shared cell cache)."""
    from repro.experiments.fig9_ssb_size import run_fig9
    from repro.experiments.packing_ablation import run_packing_ablation

    via_registry = registry.run_experiment("fig9", only=SUBSET17)
    via_wrapper = run_fig9(only=SUBSET17)
    assert via_wrapper.render() == via_registry.result.render()
    assert via_wrapper.render() == via_registry.render()

    assert (run_packing_ablation(only=SUBSET17).render()
            == registry.run_experiment("packing", only=SUBSET17).render())
