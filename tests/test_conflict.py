"""Unit tests for the conflict detector (paper algorithm 1)."""


from repro.uarch.conflict import BloomGranuleSet, ConflictDetector, GranuleSet


def detector(granule=4, slots=4, **kw):
    return ConflictDetector(granule, slots, **kw)


def test_granule_decomposition():
    d = detector(granule=4)
    assert d.granules(0, 4) == [0]
    assert d.granules(2, 4) == [0, 1]      # straddles two granules
    assert d.granules(8, 8) == [2, 3]
    assert d.granules(7, 1) == [1]


def test_read_then_older_write_conflicts():
    # Threadlet 1 reads granule 10; then threadlet 0 (older) writes it:
    # threadlet 1 observed a stale value and must squash.
    d = detector()
    d.on_speculative_read(1, 40, 4)
    victim = d.on_write(0, 40, 4, younger_slots=[1, 2, 3])
    assert victim == 1


def test_disjoint_accesses_no_conflict():
    d = detector()
    d.on_speculative_read(1, 100, 4)
    assert d.on_write(0, 200, 4, younger_slots=[1]) is None


def test_own_writes_mask_reads():
    # Algorithm 1 line 2: granules already in the threadlet's write set are
    # forwarded from itself, so they do not join the read set.
    d = detector()
    d.on_write(1, 40, 4, younger_slots=[])
    d.on_speculative_read(1, 40, 4)
    assert d.on_write(0, 40, 4, younger_slots=[1]) is None


def test_intervening_write_shields_younger_readers():
    # W0 (slot 0) ... W1 (slot 1) ... R2 (slot 2 reads slot 1's value).
    # When slot 0 writes, slot 2's read must NOT be flagged: slot 1's write
    # re-sources the granule (algorithm 1 line 13).
    d = detector()
    d.on_write(1, 40, 4, younger_slots=[2, 3])
    d.on_speculative_read(2, 40, 4)
    victim = d.on_write(0, 40, 4, younger_slots=[1, 2, 3])
    assert victim is None


def test_oldest_conflicting_threadlet_reported():
    d = detector()
    d.on_speculative_read(1, 40, 4)
    d.on_speculative_read(2, 40, 4)
    assert d.on_write(0, 40, 4, younger_slots=[1, 2, 3]) == 1


def test_partial_granule_overlap_conflicts():
    # A 1-byte read and a 1-byte write in the same granule conflict even if
    # the bytes differ (reads/writes on any part of a granule overlap).
    d = detector(granule=8)
    d.on_speculative_read(1, 40, 1)
    assert d.on_write(0, 47, 1, younger_slots=[1]) == 1


def test_byte_granularity_avoids_false_sharing():
    d = detector(granule=1)
    d.on_speculative_read(1, 40, 1)
    assert d.on_write(0, 47, 1, younger_slots=[1]) is None


def test_clear_resets_sets():
    d = detector()
    d.on_speculative_read(1, 40, 4)
    d.clear(1)
    assert d.on_write(0, 40, 4, younger_slots=[1]) is None
    assert d.read_set_size(1) == 0


def test_coherence_interface():
    d = detector()
    d.on_write(1, 64, 8, younger_slots=[])
    d.on_speculative_read(2, 128, 8)
    assert d.write_set_intersects(1, 64, 8)
    assert not d.write_set_intersects(1, 256, 8)
    assert d.read_set_intersects(2, 128, 4)


# ---------------------------------------------------------------------------
# Bloom filter variant
# ---------------------------------------------------------------------------


def test_bloom_no_false_negatives():
    b = BloomGranuleSet(bits=1024, hashes=3)
    added = list(range(0, 2000, 7))
    b.add_many(added)
    for g in added:
        assert b.contains(g), "Bloom filters must never produce false negatives"


def test_bloom_clear():
    b = BloomGranuleSet(bits=512, hashes=3)
    b.add_many([1, 2, 3])
    b.clear()
    assert not b.contains(1)
    assert len(b) == 0


def test_bloom_false_positive_rate_reasonable():
    b = BloomGranuleSet(bits=4096, hashes=4)
    b.add_many(range(100))
    false_positives = sum(1 for g in range(10_000, 11_000) if b.contains(g))
    assert false_positives < 50  # < 5% at this load factor


def test_detector_with_bloom_sets_is_conservative():
    exact = detector()
    bloom = detector(use_bloom=True, bloom_bits=4096, bloom_hashes=4)
    for d in (exact, bloom):
        d.on_speculative_read(1, 40, 4)
    # The Bloom detector must flag at least whatever the exact one flags.
    exact_victim = exact.on_write(0, 40, 4, younger_slots=[1])
    bloom_victim = bloom.on_write(0, 40, 4, younger_slots=[1])
    assert exact_victim == 1
    assert bloom_victim == 1
