"""Direct unit tests for the shared derived-metric helpers
(repro.experiments.metrics) — the computations every figure/table result
dataclass leans on."""

from dataclasses import dataclass

import pytest

from repro.experiments import metrics


@dataclass
class FakeRun:
    name: str
    speedup: float

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0


RUNS = [
    FakeRun("imagick", 1.86),
    FakeRun("omnetpp", 1.54),
    FakeRun("leela", 1.002),
    FakeRun("xz", 0.999),
]


def test_suite_geomean_matches_hand_computation():
    value = metrics.suite_geomean(RUNS)
    product = 1.86 * 1.54 * 1.002 * 0.999
    assert value == pytest.approx(product ** 0.25)


def test_suite_geomean_single_run_is_identity():
    assert metrics.suite_geomean([FakeRun("a", 1.25)]) == pytest.approx(1.25)


def test_suite_geomean_empty_raises():
    with pytest.raises(ValueError):
        metrics.suite_geomean([])


def test_geomean_percent_is_paper_convention():
    assert metrics.geomean_percent([FakeRun("a", 1.10)]) == pytest.approx(10.0)
    assert metrics.geomean_percent([FakeRun("a", 1.0)]) == pytest.approx(0.0)


def test_speedup_of_finds_named_run():
    assert metrics.speedup_of(RUNS, "omnetpp") == pytest.approx(54.0)


def test_speedup_of_missing_name_raises_keyerror():
    with pytest.raises(KeyError):
        metrics.speedup_of(RUNS, "nonexistent")


def test_profitable_uses_paper_threshold():
    assert metrics.PROFITABLE_THRESHOLD_PERCENT == 1.0
    names = [r.name for r in metrics.profitable(RUNS)]
    assert names == ["imagick", "omnetpp"]  # leela at +0.2% is excluded


def test_profitable_threshold_is_strict():
    @dataclass
    class PinnedRun:
        name: str
        speedup_percent: float

    edge = PinnedRun("edge", 1.0)  # exactly at the threshold
    assert metrics.profitable([edge]) == []
    assert metrics.profitable([edge], threshold_percent=0.5) == [edge]


def test_profitable_names_preserves_run_order():
    shuffled = [RUNS[1], RUNS[3], RUNS[0]]
    assert metrics.profitable_names(shuffled) == ["omnetpp", "imagick"]


def test_mean_basic_and_empty_default():
    assert metrics.mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert metrics.mean([]) == 0.0
    assert metrics.mean([], default=1.5) == 1.5
    assert metrics.mean(iter([4.0])) == 4.0  # accepts any iterable


def test_helpers_duck_type_against_real_benchmark_runs():
    from repro.experiments import run_suite

    runs = run_suite("spec2017", only=["imagick", "xz"])
    assert metrics.suite_geomean(runs) > 1.0
    assert metrics.speedup_of(runs, "imagick") > 50.0
    assert metrics.profitable_names(runs) == ["imagick"]
