"""Integration tests for the external-observer coherence model (4.1.4).

LoopFrog's deployability claim: speculation is invisible to the memory
system, and remote traffic that conflicts with a threadlet's read/write
sets squashes it rather than exposing speculative state.
"""

import pytest

from repro.compiler import compile_frog
from repro.uarch import SparseMemory, default_machine
from repro.uarch.coherence import CoherenceAgent
from repro.uarch.core import Engine

KERNEL = """
fn main(dst: ptr<int>, src: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        dst[i] = src[i] + 1000;
    }
}
"""

DST, SRC, N = 4096, 8192, 48


def engine_mid_speculation():
    result = compile_frog(KERNEL)
    mem = SparseMemory()
    mem.store_int_array(SRC, list(range(N)))
    engine = Engine(
        default_machine(), result.program, mem,
        {"r1": DST, "r2": SRC, "r3": N},
    )
    # Step until several threadlets are live and have buffered state.
    for _ in range(50_000):
        engine.step()
        if engine.finished:
            break
        spec = [t for t in engine.order if not t.is_arch]
        if len(spec) >= 2 and any(
            engine.ssb.occupancy_bytes(t.slot) for t in spec
        ):
            return engine
    pytest.skip("speculation window too short to observe")


def test_remote_read_sees_only_committed_state():
    engine = engine_mid_speculation()
    agent = CoherenceAgent(engine)
    # Find an address buffered speculatively but not yet committed.
    spec = [t for t in engine.order if not t.is_arch]
    target = None
    for t in spec:
        sl = engine.ssb.slice(t.slot)
        if sl.data:
            target = next(iter(sl.data))
            break
    assert target is not None
    committed_byte = engine.memory.load_byte(target)
    snoop = agent.remote_read(target)
    line_start = (target // agent.line_size) * agent.line_size
    assert snoop.data[target - line_start] == committed_byte


def test_remote_write_squashes_conflicting_threadlet():
    engine = engine_mid_speculation()
    agent = CoherenceAgent(engine)
    spec = [t for t in engine.order if not t.is_arch]
    victim_addr = None
    for t in spec:
        sl = engine.ssb.slice(t.slot)
        if sl.data:
            victim_addr = next(iter(sl.data))
            break
    assert victim_addr is not None
    before = engine.stats.threadlets_squashed
    snoop = agent.remote_write(victim_addr, bytes(64))
    assert snoop.squashed_threadlets
    assert engine.stats.threadlets_squashed > before


def test_remote_traffic_to_unrelated_lines_is_harmless():
    engine = engine_mid_speculation()
    agent = CoherenceAgent(engine)
    before = engine.stats.threadlets_squashed
    snoop = agent.remote_read(0x900000)
    assert not snoop.squashed_threadlets
    assert engine.stats.threadlets_squashed == before


def test_execution_correct_after_remote_interference():
    engine = engine_mid_speculation()
    agent = CoherenceAgent(engine)
    # Hammer the destination region with remote reads while running.
    for k in range(10):
        agent.remote_read(DST + 64 * k)
        for _ in range(20):
            if engine.finished:
                break
            engine.step()
    while not engine.finished:
        engine.step()
    assert engine.memory.load_int_array(DST, N) == [i + 1000 for i in range(N)]


def test_speculation_in_flight_detection():
    engine = engine_mid_speculation()
    agent = CoherenceAgent(engine)
    spec = [t for t in engine.order if not t.is_arch]
    addr = None
    for t in spec:
        sl = engine.ssb.slice(t.slot)
        if sl.data:
            addr = next(iter(sl.data))
            break
    assert agent.speculation_in_flight(addr, 1)
    assert not agent.speculation_in_flight(0xDEAD0000, 8)
