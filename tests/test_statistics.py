"""Unit tests for the statistics containers and derived metrics."""

import pytest

from repro.uarch.statistics import SimStats


def test_ipc_and_utilization():
    s = SimStats(cycles=100, arch_instructions=250)
    assert s.ipc == 2.5
    assert s.commit_utilization(8) == pytest.approx(250 / 800)


def test_zero_cycles_safe():
    s = SimStats()
    assert s.ipc == 0.0
    assert s.commit_utilization(8) == 0.0
    assert s.threadlet_utilization(2) == 0.0


def test_total_committed_ipc_includes_spec_and_failed():
    s = SimStats(cycles=100, arch_instructions=100,
                 spec_committed_instructions=60,
                 failed_spec_instructions=40)
    assert s.total_committed_ipc == pytest.approx(2.0)


def test_branch_mpki():
    s = SimStats(arch_instructions=10_000, branch_mispredicts=42)
    assert s.branch_mpki == pytest.approx(4.2)


def test_l1d_miss_rate():
    s = SimStats(l1d_accesses=200, l1d_misses=30)
    assert s.l1d_miss_rate == pytest.approx(0.15)


def test_active_threadlet_histogram():
    s = SimStats()
    for count in (1, 2, 2, 4, 4, 4):
        s.note_active_threadlets(count)
    s.cycles = 6
    assert s.threadlet_utilization(2) == pytest.approx(5 / 6)
    assert s.threadlet_utilization(4) == pytest.approx(3 / 6)
    assert s.threadlet_utilization(1) == 1.0


def test_region_registry():
    s = SimStats()
    region = s.region("loop_a")
    region.arch_cycles += 10
    assert s.region("loop_a").arch_cycles == 10
    assert s.region("loop_b").arch_cycles == 0
    assert set(s.regions) == {"loop_a", "loop_b"}


def test_mean_packing_factor_defaults_to_one():
    s = SimStats()
    assert s.mean_packing_factor == 1.0
    s.packing_events = 4
    s.packing_factor_sum = 12
    assert s.mean_packing_factor == 3.0


def test_summary_renders():
    s = SimStats(cycles=10, arch_instructions=20)
    text = s.summary()
    assert "IPC" in text and "2.0" in text
