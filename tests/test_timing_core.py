"""Integration tests for the timing models (baseline and LoopFrog).

The key invariants:
* both timing models produce the same architectural memory/registers as the
  functional executor (speculation never changes semantics);
* LoopFrog actually spawns/commits threadlets on hinted parallel loops;
* conflict detection catches真 cross-threadlet violations and recovers.
"""


from repro.compiler import CompileOptions, compile_frog
from repro.uarch import BaselineCore, LoopFrogCore, SparseMemory
from repro.uarch.executor import Executor


PARALLEL_KERNEL = """
fn main(dst: ptr<int>, src: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        var x: int = src[i];
        dst[i] = x * x + 3;
    }
}
"""


def make_mem(n=64, src=2000):
    mem = SparseMemory()
    mem.store_int_array(src, [(7 * i) % 23 - 5 for i in range(n)])
    return mem


def functional_reference(program, mem, args):
    ex = Executor(program, mem)
    for reg, value in zip(("r1", "r2", "r3", "r4"), args):
        ex.regs[reg] = value
    ex.run()
    return ex


def test_baseline_matches_functional():
    result = compile_frog(PARALLEL_KERNEL)
    n = 64
    ref_mem = make_mem(n)
    functional_reference(result.program, ref_mem, (1000, 2000, n))

    sim_mem = make_mem(n)
    sim = BaselineCore().run(
        result.program, sim_mem, {"r1": 1000, "r2": 2000, "r3": n}
    )
    assert sim_mem.load_int_array(1000, n) == ref_mem.load_int_array(1000, n)
    assert sim.stats.cycles > 0
    assert sim.stats.arch_instructions > n  # at least one instr per element


def test_loopfrog_matches_functional():
    result = compile_frog(PARALLEL_KERNEL)
    n = 64
    ref_mem = make_mem(n)
    functional_reference(result.program, ref_mem, (1000, 2000, n))

    sim_mem = make_mem(n)
    sim = LoopFrogCore().run(
        result.program, sim_mem, {"r1": 1000, "r2": 2000, "r3": n}
    )
    assert sim_mem.load_int_array(1000, n) == ref_mem.load_int_array(1000, n)


def test_loopfrog_spawns_and_commits_threadlets():
    result = compile_frog(PARALLEL_KERNEL)
    n = 64
    sim = LoopFrogCore().run(
        result.program, make_mem(n), {"r1": 1000, "r2": 2000, "r3": n}
    )
    assert sim.stats.threadlets_spawned > 0
    assert sim.stats.threadlets_committed > 0
    assert sim.stats.threadlet_utilization(2) > 0.0


def test_loopfrog_faster_than_baseline_on_parallel_loop():
    result = compile_frog(PARALLEL_KERNEL)
    n = 256
    base = BaselineCore().run(
        result.program, make_mem(n), {"r1": 1000, "r2": 2000, "r3": n}
    )
    frog = LoopFrogCore().run(
        result.program, make_mem(n), {"r1": 1000, "r2": 2000, "r3": n}
    )
    assert frog.stats.cycles < base.stats.cycles


def test_same_dynamic_instruction_count():
    # Baseline arch commits == LoopFrog (arch + successful spec) commits.
    result = compile_frog(PARALLEL_KERNEL)
    n = 48
    base = BaselineCore().run(
        result.program, make_mem(n), {"r1": 1000, "r2": 2000, "r3": n}
    )
    frog = LoopFrogCore().run(
        result.program, make_mem(n), {"r1": 1000, "r2": 2000, "r3": n}
    )
    base_total = base.stats.arch_instructions
    frog_total = (
        frog.stats.arch_instructions + frog.stats.spec_committed_instructions
    )
    assert frog_total == base_total


CONFLICT_KERNEL = """
fn main(data: ptr<int>, idx: ptr<int>, n: int) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        var j: int = idx[i];
        data[j] = data[j] + 1;
    }
}
"""


def test_cross_iteration_memory_conflicts_are_detected_and_repaired():
    # Every iteration read-modify-writes the same location, with an
    # unpredictable branch between read and write so older threadlets
    # stall mid-iteration while younger ones race ahead and read stale
    # data.  Conflicts must be detected and the final value exact.
    source = """
    fn main(data: ptr<int>, noise: ptr<int>, n: int) {
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) {
            var v: int = data[0];
            if (noise[i] % 3 == 0) {
                data[0] = v + 2;
            } else {
                data[0] = v + 1;
            }
        }
    }
    """
    result = compile_frog(source)
    n = 60
    import random

    rng = random.Random(11)
    noise = [rng.randrange(1 << 20) for _ in range(n)]
    mem = SparseMemory()
    mem.store_int_array(3000, noise)
    sim = LoopFrogCore().run(
        result.program, mem, {"r1": 1000, "r2": 3000, "r3": n}
    )
    expected = sum(2 if v % 3 == 0 else 1 for v in noise)
    assert mem.load_int(1000) == expected
    assert sim.stats.squash_conflicts > 0


def test_same_location_increments_stay_exact():
    # The simplest possible through-memory LCD: all iterations increment
    # data[0].  Whether or not conflicts fire (forwarding may win), the
    # result must equal the sequential one.
    result = compile_frog(CONFLICT_KERNEL)
    n = 40
    mem = SparseMemory()
    mem.store_int_array(3000, [0] * n)           # idx: all zeros -> data[0]
    mem.store_int_array(1000, [0] * 8)
    LoopFrogCore().run(result.program, mem, {"r1": 1000, "r2": 3000, "r3": n})
    assert mem.load_int(1000) == n


def test_disjoint_indices_cause_no_conflicts():
    result = compile_frog(CONFLICT_KERNEL)
    n = 40
    mem = SparseMemory()
    mem.store_int_array(3000, list(range(n)))    # idx: disjoint
    sim = LoopFrogCore().run(
        result.program, mem, {"r1": 1000, "r2": 3000, "r3": n}
    )
    assert mem.load_int_array(1000, n) == [1] * n
    assert sim.stats.squash_conflicts == 0


BREAK_KERNEL = """
fn main(a: ptr<int>, n: int, out: ptr<int>) {
    #pragma loopfrog
    for (var i: int = 0; i < n; i = i + 1) {
        if (a[i] < 0) { break; }
        out[i] = a[i] + 1;
    }
}
"""


def test_early_exit_sync_squashes_successors():
    result = compile_frog(BREAK_KERNEL)
    n = 64
    mem = SparseMemory()
    values = [5] * n
    values[20] = -1  # loop breaks at i == 20
    mem.store_int_array(2000, values)
    sim = LoopFrogCore().run(
        result.program, mem, {"r1": 2000, "r2": n, "r3": 4000}
    )
    assert mem.load_int_array(4000, 20) == [6] * 20
    assert mem.load_int(4000 + 20 * 8) == 0  # untouched past the break
    assert sim.stats.squash_syncs > 0


def test_pointer_chase_loop_runs_correctly_under_speculation():
    source = """
    fn main(next: ptr<int>, data: ptr<int>, out: ptr<int>, node: int) {
        var k: int = 0;
        #pragma loopfrog
        while (node != 0) {
            out[k] = data[node] * 2;
            k = k + 1;
            node = next[node];
        }
    }
    """
    result = compile_frog(source)
    n = 50
    mem = SparseMemory()
    order = list(range(1, n + 1))
    for pos, node in enumerate(order):
        nxt = order[pos + 1] if pos + 1 < n else 0
        mem.store_int(1000 + 8 * node, nxt)
        mem.store_int(3000 + 8 * node, node * 7)
    sim = LoopFrogCore().run(
        result.program, mem,
        {"r1": 1000, "r2": 3000, "r3": 6000, "r4": order[0]},
    )
    expected = [node * 14 for node in order]
    assert mem.load_int_array(6000, n) == expected


def test_baseline_ignores_hints_single_threadlet():
    result = compile_frog(PARALLEL_KERNEL)
    sim = BaselineCore().run(
        result.program, make_mem(16), {"r1": 1000, "r2": 2000, "r3": 16}
    )
    assert sim.stats.threadlets_spawned == 0
    assert sim.stats.active_threadlet_cycles.keys() == {1}


def test_region_stats_collected():
    result = compile_frog(PARALLEL_KERNEL)
    sim = LoopFrogCore().run(
        result.program, make_mem(32), {"r1": 1000, "r2": 2000, "r3": 32}
    )
    regions = {k: v for k, v in sim.stats.regions.items() if k != "<none>"}
    assert regions
    region = next(iter(regions.values()))
    assert region.arch_cycles > 0
    assert region.epochs_spawned > 0


def test_unhinted_program_identical_between_cores_semantics():
    source = """
    fn main(dst: ptr<int>, n: int) -> int {
        var acc: int = 0;
        for (var i: int = 0; i < n; i = i + 1) {
            dst[i] = i * i;
            acc = acc + i;
        }
        return acc;
    }
    """
    result = compile_frog(source, CompileOptions(insert_hints=False))
    mem_a, mem_b = SparseMemory(), SparseMemory()
    a = BaselineCore().run(result.program, mem_a, {"r1": 500, "r2": 20})
    b = LoopFrogCore().run(result.program, mem_b, {"r1": 500, "r2": 20})
    assert a.registers["r1"] == b.registers["r1"] == sum(range(20))
    assert mem_a.load_int_array(500, 20) == mem_b.load_int_array(500, 20)


def test_speedup_requires_enough_iterations():
    # A 2-trip loop cannot fill 4 threadlets; it must still be correct.
    result = compile_frog(PARALLEL_KERNEL)
    mem = make_mem(2)
    sim = LoopFrogCore().run(result.program, mem, {"r1": 1000, "r2": 2000, "r3": 2})
    ref_mem = make_mem(2)
    functional_reference(result.program, ref_mem, (1000, 2000, 2))
    assert mem.load_int_array(1000, 2) == ref_mem.load_int_array(1000, 2)


def test_zero_trip_loop():
    result = compile_frog(PARALLEL_KERNEL)
    sim = LoopFrogCore().run(
        result.program, SparseMemory(), {"r1": 1000, "r2": 2000, "r3": 0}
    )
    assert sim.stats.arch_instructions > 0
