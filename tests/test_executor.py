"""Unit tests for the functional executor (golden reference model)."""

import pytest

from repro.errors import ExecutionError
from repro.isa import assemble
from repro.uarch import Executor, SparseMemory, run_program


def run_asm(text, memory=None, max_instructions=1_000_000):
    return run_program(assemble(text), memory, max_instructions=max_instructions)


def test_sum_loop():
    result = run_asm(
        """
        li r1, 0
        li r2, 10
        loop:
        add r1, r1, r2
        sub r2, r2, 1
        bnez r2, loop
        halt
        """
    )
    assert result.registers["r1"] == 55
    assert result.halted


def test_arithmetic_ops():
    result = run_asm(
        """
        li r1, 7
        li r2, 3
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        div r6, r1, r2
        rem r7, r1, r2
        and r8, r1, r2
        or  r9, r1, r2
        xor r10, r1, r2
        shl r11, r1, 2
        shr r12, r1, 1
        halt
        """
    )
    r = result.registers
    assert (r["r3"], r["r4"], r["r5"], r["r6"], r["r7"]) == (10, 4, 21, 2, 1)
    assert (r["r8"], r["r9"], r["r10"], r["r11"], r["r12"]) == (3, 7, 4, 28, 3)


def test_division_truncates_toward_zero():
    result = run_asm(
        """
        li r1, -7
        li r2, 2
        div r3, r1, r2
        rem r4, r1, r2
        halt
        """
    )
    assert result.registers["r3"] == -3
    assert result.registers["r4"] == -1


def test_64bit_wraparound():
    result = run_asm(
        """
        li r1, 0x7fffffffffffffff
        add r2, r1, 1
        halt
        """
    )
    assert result.registers["r2"] == -(1 << 63)


def test_comparisons():
    result = run_asm(
        """
        li r1, 5
        li r2, 9
        slt r3, r1, r2
        sle r4, r2, r2
        seq r5, r1, r2
        sne r6, r1, r2
        min r7, r1, r2
        max r8, r1, r2
        halt
        """
    )
    r = result.registers
    assert (r["r3"], r["r4"], r["r5"], r["r6"]) == (1, 1, 0, 1)
    assert (r["r7"], r["r8"]) == (5, 9)


def test_float_ops():
    result = run_asm(
        """
        fli f1, 2.0
        fli f2, 8.0
        fadd f3, f1, f2
        fmul f4, f1, f2
        fdiv f5, f2, f1
        fsqrt f6, f2
        fsub f7, f1, f2
        fabs f8, f7
        halt
        """
    )
    r = result.registers
    assert r["f3"] == 10.0
    assert r["f4"] == 16.0
    assert r["f5"] == 4.0
    assert r["f6"] == pytest.approx(2.8284271247)
    assert r["f8"] == 6.0


def test_float_int_conversion():
    result = run_asm(
        """
        li r1, 3
        fcvt f1, r1
        fli f2, 2.7
        icvt r2, f2
        halt
        """
    )
    assert result.registers["f1"] == 3.0
    assert result.registers["r2"] == 2


def test_memory_roundtrip():
    result = run_asm(
        """
        li r1, 1000
        li r2, -42
        store r2, r1, 0
        load r3, r1, 0
        store4 r2, r1, 8
        load4 r4, r1, 8
        halt
        """
    )
    assert result.registers["r3"] == -42
    assert result.registers["r4"] == -42


def test_memory_little_endian_byte_access():
    result = run_asm(
        """
        li r1, 2000
        li r2, 0x0102030405060708
        store r2, r1, 0
        load1 r3, r1, 0
        load1 r4, r1, 7
        halt
        """
    )
    assert result.registers["r3"] == 0x08
    assert result.registers["r4"] == 0x01


def test_float_memory_roundtrip():
    mem = SparseMemory()
    mem.store_float(512, 3.25)
    result = run_asm(
        """
        li r1, 512
        fload f1, r1, 0
        fadd f1, f1, f1
        fstore f1, r1, 8
        halt
        """,
        memory=mem,
    )
    assert result.registers["f1"] == 6.5
    assert result.memory.load_float(520) == 6.5


def test_call_and_ret():
    result = run_asm(
        """
        li r1, 5
        call double
        add r2, r1, 0
        halt
        double:
        add r1, r1, r1
        ret
        """
    )
    assert result.registers["r2"] == 10


def test_hints_are_functional_nops():
    with_hints = run_asm(
        """
        li r2, 4
        li r1, 0
        loop:
        detach cont
        add r1, r1, r2
        reattach cont
        cont:
        sub r2, r2, 1
        bnez r2, loop
        sync cont
        halt
        """
    )
    assert with_hints.registers["r1"] == 10


def test_hints_vs_nohints_same_result():
    prog = assemble(
        """
        li r2, 6
        li r1, 0
        loop:
        detach cont
        mul r3, r2, r2
        add r1, r1, r3
        reattach cont
        cont:
        sub r2, r2, 1
        bnez r2, loop
        sync cont
        halt
        """
    )
    a = run_program(prog)
    b = run_program(prog.without_hints())
    assert a.registers["r1"] == b.registers["r1"]
    assert a.instructions == b.instructions


def test_division_by_zero_raises():
    with pytest.raises(ExecutionError):
        run_asm("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt\n")


def test_runaway_program_hits_budget():
    with pytest.raises(ExecutionError):
        run_asm("spin: jmp spin\n", max_instructions=1000)


def test_step_interface_and_counts():
    ex = Executor(assemble("li r1, 1\nadd r1, r1, 1\nhalt\n"))
    assert ex.step().opcode.value == "li"
    assert ex.step().opcode.value == "add"
    assert ex.step().opcode.value == "halt"
    assert ex.step() is None
    assert ex.instruction_count == 3


def test_trace_hook_sees_memory_addresses():
    seen = []
    prog = assemble("li r1, 64\nstore r1, r1, 8\nload r2, r1, 8\nhalt\n")
    ex = Executor(prog, trace_hook=lambda pc, i, res: seen.append(res.mem_addr))
    ex.run()
    assert seen[1] == 72 and seen[2] == 72


def test_sparse_memory_array_helpers():
    mem = SparseMemory()
    end = mem.store_int_array(0, [1, -2, 3], size=4)
    assert end == 12
    assert mem.load_int_array(0, 3, size=4) == [1, -2, 3]
    mem.store_float_array(100, [0.5, -1.5])
    assert mem.load_float_array(100, 2) == [0.5, -1.5]
