"""Unit tests for the analysis package: speedup math, area model, reports."""

import math

import pytest

from repro.analysis import (
    amdahl_region_speedup,
    amdahl_whole_program,
    area_report,
    format_bars,
    format_series,
    format_table,
    geometric_mean,
    pollack_expected_speedup_percent,
    speedup_percent,
    ssb_area_mm2,
    ssb_energy_nj_per_access,
    weighted_time,
)
from repro.uarch.config import LoopFrogConfig


def test_geometric_mean_basic():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([1.0]) == 1.0


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


def test_weighted_time_simpoint_style():
    assert weighted_time([(100, 0.25), (200, 0.75)]) == pytest.approx(175)
    # Weights are normalised.
    assert weighted_time([(100, 1), (200, 3)]) == pytest.approx(175)


def test_speedup_percent():
    assert speedup_percent(110, 100) == pytest.approx(10.0)


def test_amdahl_inversion_roundtrip():
    whole = amdahl_whole_program(region_speedup=1.43, parallel_fraction=0.4)
    back = amdahl_region_speedup(whole, parallel_fraction=0.4)
    assert back == pytest.approx(1.43)


def test_amdahl_paper_figures_consistent():
    # Paper 6.3: 43% in-region speedup and the observed utilisation imply a
    # whole-program speedup in the reported range.
    whole = amdahl_whole_program(1.43, 0.35)
    assert 1.05 < whole < 1.15


def test_amdahl_validates_inputs():
    with pytest.raises(ValueError):
        amdahl_region_speedup(1.1, 0.0)
    with pytest.raises(ValueError):
        amdahl_whole_program(-1.0, 0.5)


# ---------------------------------------------------------------------------
# Area model (section 6.8)
# ---------------------------------------------------------------------------


def test_ssb_area_matches_paper_at_22nm():
    # The paper quotes 0.025 mm^2 for the four 2-KiB slices at 22 nm.
    assert ssb_area_mm2(LoopFrogConfig(), node_nm=22) == pytest.approx(0.025)


def test_ssb_area_7nm_matches_paper():
    assert ssb_area_mm2(LoopFrogConfig(), node_nm=7) == pytest.approx(0.02)


def test_area_report_headline_percentages():
    report = area_report(LoopFrogConfig())
    # Paper: new structures ~2% of an N1 core; total 12-17% with SMT.
    assert 1.0 < report.new_structures_percent < 3.0
    assert 11.0 < report.total_overhead_percent_low < 13.0
    assert 16.0 < report.total_overhead_percent_high < 18.0


def test_pollack_rule_range():
    # Paper: 12-17% area -> ~6-8% expected traditional speedup.
    assert 5.5 < pollack_expected_speedup_percent(12) < 6.5
    assert 7.5 < pollack_expected_speedup_percent(17) < 8.5


def test_energy_scales_with_capacity():
    small = ssb_energy_nj_per_access(LoopFrogConfig(ssb_total_bytes=4096))
    large = ssb_energy_nj_per_access(LoopFrogConfig(ssb_total_bytes=16384))
    assert large == pytest.approx(small * 4)


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


def test_format_table_alignment():
    text = format_table(["a", "bb"], [(1, 2), ("xxx", 4.5)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "xxx" in text and "4.50" in text


def test_format_bars_scales():
    text = format_bars([("one", 10.0), ("two", 5.0)], unit="%")
    one_line = next(l for l in text.splitlines() if l.startswith("one"))
    two_line = next(l for l in text.splitlines() if l.startswith("two"))
    assert one_line.count("#") > two_line.count("#")
    assert "+10.0%" in one_line


def test_format_series():
    text = format_series("x", "y", [("a", 1.0), ("b", 2.0)], title="S")
    assert "S" in text and "a" in text and "2.00" in text
