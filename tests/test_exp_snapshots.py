"""Snapshot tests pinning the determinism of experiment artifacts.

``repro exp`` output is meant to be diffable: running the same experiment
twice — in the same process or across processes — must produce the same
rendered text and byte-identical JSON artifacts.  These tests pin the
ordering rules (rows sorted by (suite, name), ``sort_keys`` JSON, no
timestamps) so nondeterminism can't creep back in.
"""

import json

from repro.experiments import registry, run_suite
from repro.experiments.spec import run_rows

SUBSET17 = ["imagick", "x264"]
BOTH = SUBSET17 + ["libquantum", "mcf06"]


def test_repeat_runs_produce_identical_payloads():
    first = registry.run_experiment("fig9", only=SUBSET17)
    second = registry.run_experiment("fig9", only=SUBSET17)
    assert first.render() == second.render()
    # Cell counters legitimately differ between invocations (cold cache
    # vs warm); the experiment data itself must be identical.
    a, b = first.to_json(), second.to_json()
    a.pop("cells")
    b.pop("cells")
    assert a == b
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_payload_key_set_is_pinned():
    payload = registry.run_experiment("fig9", only=SUBSET17).to_json()
    assert set(payload) == {
        "cells", "data", "experiment", "kind", "render",
        "sampled", "suites", "title", "variants",
    }


def test_run_rows_sorted_by_suite_then_name():
    # Feed rows in deliberately scrambled order: 2017 runs first, each
    # suite's runs reversed.
    runs_2017 = run_suite("spec2017", only=SUBSET17)
    runs_2006 = run_suite("spec2006", only=BOTH)
    scrambled = list(reversed(runs_2017)) + list(reversed(runs_2006))
    rows = run_rows(scrambled)
    keys = [(r["suite"], r["name"]) for r in rows]
    assert keys == sorted(keys)
    assert keys[0][0] == "spec2006"
    assert set(rows[0]) == {
        "suite", "name", "baseline_cycles", "loopfrog_cycles",
        "speedup_percent", "deselected",
    }


def test_two_suite_payload_rows_are_suite_sorted():
    payload = registry.run_experiment("fig6", only=BOTH).to_json()
    keys = [(r["suite"], r["name"]) for r in payload["data"]["benchmarks"]]
    assert keys == sorted(keys)


def test_artifact_trees_are_byte_identical(tmp_path):
    names = ["fig9", "bloom"]
    # Warm every cell first so both invocations see identical (all-cached)
    # counters — the artifact bytes include them.
    registry.run_all(names, only=SUBSET17)
    dirs = []
    for sub in ("a", "b"):
        out = tmp_path / sub
        runs = registry.run_all(names, only=SUBSET17)
        registry.write_artifacts(runs, str(out))
        dirs.append(out)

    a_files = sorted(p.name for p in dirs[0].iterdir())
    b_files = sorted(p.name for p in dirs[1].iterdir())
    assert a_files == b_files
    assert a_files == ["bloom.json", "bloom.txt", "fig9.json", "fig9.txt",
                       "manifest.json"]
    for name in a_files:
        assert (dirs[0] / name).read_bytes() == (dirs[1] / name).read_bytes()


def test_manifest_has_no_timestamps_or_volatile_fields(tmp_path):
    runs = registry.run_all(["fig9"], only=SUBSET17)
    registry.write_artifacts(runs, str(tmp_path))
    raw = (tmp_path / "manifest.json").read_text()
    manifest = json.loads(raw)
    assert set(manifest) == {"tool", "experiments", "cells"}
    # Serialized with sort_keys and a trailing newline, like every other
    # artifact, so the files diff cleanly.
    assert raw == json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    for banned in ("time", "date", "duration", "seconds", "host"):
        assert banned not in raw.lower()


def test_json_artifact_matches_in_process_payload(tmp_path):
    [run] = registry.run_all(["fig9"], only=SUBSET17)
    registry.write_artifacts([run], str(tmp_path))
    on_disk = json.loads((tmp_path / "fig9.json").read_text())
    in_process = json.loads(json.dumps(run.to_json(), sort_keys=True))
    # The cell counters legitimately differ between invocations (warm vs
    # cold cache); everything else must match exactly.
    on_disk.pop("cells")
    in_process.pop("cells")
    assert on_disk == in_process
