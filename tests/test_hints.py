"""Focused tests for the hint-insertion pass (paper section 5.3)."""


from repro.compiler import (
    CompileOptions,
    HintOptions,
    compile_frog,
    insert_hints,
    lower_module,
)
from repro.compiler.ir import IROp
from repro.isa import Opcode
from repro.lang import parse


def lower(source, entry="main"):
    module = lower_module(parse(source), entry)
    return module[entry]


def test_hint_order_in_emitted_code():
    # detach must precede the body, reattach must precede the continuation,
    # and the continuation label must follow the reattach immediately
    # (fall-through layout keeps the dynamic stream identical).
    result = compile_frog(
        """
        fn main(dst: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) { dst[i] = i; }
        }
        """
    )
    prog = result.program
    ops = [i.opcode for i in prog]
    detach_at = ops.index(Opcode.DETACH)
    reattach_at = ops.index(Opcode.REATTACH)
    assert detach_at < reattach_at
    region_index = prog[detach_at].region_index
    assert region_index == reattach_at + 1  # continuation right after


def test_detach_and_reattach_share_region_with_syncs():
    result = compile_frog(
        """
        fn main(dst: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                if (dst[i] < 0) { break; }
                dst[i] = i;
            }
        }
        """
    )
    regions = {
        i.region for i in result.program if i.is_hint
    }
    assert len(regions) == 1


def test_min_body_size_rejects_tiny_loops():
    source = """
    fn main(dst: ptr<int>, n: int) {
        #pragma loopfrog
        for (var i: int = 0; i < n; i = i + 1) { dst[i] = i; }
    }
    """
    options = CompileOptions(hint_options=HintOptions(min_body_instrs=50))
    result = compile_frog(source, options)
    assert not result.annotated_loops
    from repro.compiler.hints import REASON_BODY_TOO_SMALL

    assert result.rejected_loops[0].reason == REASON_BODY_TOO_SMALL
    assert "below the minimum" in result.rejected_loops[0].detail


def test_while_with_continue_rejected():
    # `continue` in a while loop produces a second latch; the pass must
    # refuse rather than emit broken epochs.
    result = compile_frog(
        """
        fn main(a: ptr<int>, n: int) {
            var i: int = 0;
            #pragma loopfrog
            while (i < n) {
                i = i + 1;
                if (a[i] == 0) { continue; }
                a[i] = 1;
            }
        }
        """
    )
    assert not result.annotated_loops
    from repro.compiler.hints import REASON_MULTIPLE_LATCHES

    assert result.rejected_loops[0].reason == REASON_MULTIPLE_LATCHES
    assert "latch" in result.rejected_loops[0].detail


def test_for_with_continue_is_fine():
    # In a for loop, continue targets the increment block: single latch.
    result = compile_frog(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                if (a[i] == 0) { continue; }
                a[i] = a[i] + 1;
            }
        }
        """
    )
    assert len(result.annotated_loops) == 1


def test_two_marked_loops_get_distinct_regions():
    result = compile_frog(
        """
        fn main(a: ptr<int>, b: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) { a[i] = i; }
            #pragma loopfrog
            for (var j: int = 0; j < n; j = j + 1) { b[j] = j * 2; }
        }
        """
    )
    assert len(result.annotated_loops) == 2
    regions = {i.region for i in result.program if i.is_hint}
    assert len(regions) == 2


def test_marked_nested_loops_both_annotated():
    # Architecturally permitted (distinct region IDs); the hardware picks
    # one level at run time (section 3.3).
    result = compile_frog(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                #pragma loopfrog
                for (var j: int = 0; j < n; j = j + 1) {
                    a[i * n + j] = i + j;
                }
            }
        }
        """
    )
    assert len(result.annotated_loops) == 2


def test_split_point_in_single_block_while():
    # Pointer chase: the LCD load must land in the continuation, the store
    # before it stays in the body.
    func = lower(
        """
        fn main(next: ptr<int>, out: ptr<int>, node: int) {
            var k: int = 0;
            #pragma loopfrog
            while (node != 0) {
                out[k] = node;
                k = k + 1;
                node = next[node];
            }
        }
        """
    )
    reports = insert_hints(func)
    assert reports[0].annotated
    assert reports[0].split_index > 0  # part of the latch stayed in the body
    cont = func.block(reports[0].region)
    cont_ops = [i.op for i in cont.instrs]
    assert IROp.LOAD in cont_ops  # the pointer-chase load moved there


def test_insert_hints_idempotent_for_unmarked():
    func = lower(
        "fn main(a: ptr<int>, n: int) { for (var i: int = 0; i < n; i = i + 1) { a[i] = i; } }"
    )
    assert insert_hints(func) == []
    assert not any(i.is_hint for i in func.instructions())


def test_marked_non_loop_rejected():
    func = lower(
        "fn main(a: ptr<int>, n: int) { for (var i: int = 0; i < n; i = i + 1) { a[i] = i; } }"
    )
    func.marked_loops.append(func.entry.name)  # the entry block heads no loop
    reports = insert_hints(func)
    from repro.compiler.hints import REASON_NOT_A_LOOP

    assert [r.reason for r in reports if not r.annotated] == [REASON_NOT_A_LOOP]


def test_infinite_header_rejected_as_no_conditional_exit():
    # `for (;;)` with a break in the body: the header falls through
    # unconditionally, so there is no place to hang the reattach test.
    result = compile_frog(
        """
        fn main(a: ptr<int>) {
            #pragma loopfrog
            for (var i: int = 0; ; i = i + 1) {
                if (i > 4) { break; }
                a[i] = i;
            }
        }
        """
    )
    assert not result.annotated_loops
    from repro.compiler.hints import REASON_NO_CONDITIONAL_EXIT

    assert result.rejected_loops[0].reason == REASON_NO_CONDITIONAL_EXIT


def test_header_exit_into_loop_rejected_as_not_guarded():
    # Rewire a well-formed loop so the header's "exit" edge points back
    # into the loop: the conditional no longer guards the exit.
    func = lower(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            while (n > 0) {
                n = n - 1;
                if (a[n] > 0) { a[n] = 0; }
            }
        }
        """
    )
    header = func.marked_loops[0]
    term = func.block(header).terminator
    term.iffalse = term.iftrue  # both arms now stay inside the loop
    reports = insert_hints(func)
    from repro.compiler.hints import REASON_EXIT_NOT_GUARDED

    assert [r.reason for r in reports] == [REASON_EXIT_NOT_GUARDED]


def test_every_reject_reason_is_a_stable_identifier():
    from repro.compiler import hints

    constants = {
        value
        for name, value in vars(hints).items()
        if name.startswith("REASON_")
    }
    assert constants == set(hints.REJECT_REASONS)
    for reason in hints.REJECT_REASONS:
        # Identifier-shaped: lowercase kebab-case, no prose.
        assert reason == reason.lower()
        assert " " not in reason


def test_zero_trip_loop_correct_with_hints():
    from repro.uarch import SparseMemory
    from repro.uarch.executor import Executor

    result = compile_frog(
        """
        fn main(dst: ptr<int>, n: int) -> int {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) { dst[i] = 7; }
            return 99;
        }
        """
    )
    ex = Executor(result.program, SparseMemory())
    ex.regs["r1"], ex.regs["r2"] = 1000, 0
    ex.run()
    assert ex.regs["r1"] == 99
