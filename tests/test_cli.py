"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_regs, build_parser, main


@pytest.fixture
def frog_file(tmp_path):
    path = tmp_path / "kernel.frog"
    path.write_text(
        """
        fn main(dst: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < 32; i = i + 1) {
                dst[i] = i * 3;
            }
        }
        """
    )
    return str(path)


def test_parse_regs():
    regs = _parse_regs("r1=0x1000,r2=64,f1=2.5")
    assert regs == {"r1": 0x1000, "r2": 64, "f1": 2.5}
    assert _parse_regs(None) == {}
    assert _parse_regs("") == {}


def test_parse_regs_rejects_garbage():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        _parse_regs("r1")


def test_compile_command(frog_file, capsys):
    assert main(["compile", frog_file]) == 0
    out = capsys.readouterr().out
    assert "annotated" in out
    assert "detach" in out


def test_compile_no_hints(frog_file, capsys):
    assert main(["compile", frog_file, "--no-hints"]) == 0
    out = capsys.readouterr().out
    assert "detach" not in out


def test_compile_with_ir(frog_file, capsys):
    assert main(["compile", frog_file, "--ir"]) == 0
    out = capsys.readouterr().out
    assert "fn main" in out


def test_run_command(frog_file, capsys):
    assert main(["run", frog_file, "--regs", "r1=0x2000"]) == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "LoopFrog:" in out
    assert "speedup:" in out


def test_run_baseline_only(frog_file, capsys):
    assert main(["run", frog_file, "--baseline-only"]) == 0
    out = capsys.readouterr().out
    assert "LoopFrog" not in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "imagick" in out
    assert "libquantum" in out
    assert "profitable" in out


def test_unknown_experiment_id(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_missing_file_is_an_error(capsys):
    assert main(["compile", "/nonexistent.frog"]) == 1


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
