"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_regs, build_parser, main


@pytest.fixture
def frog_file(tmp_path):
    path = tmp_path / "kernel.frog"
    path.write_text(
        """
        fn main(dst: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < 32; i = i + 1) {
                dst[i] = i * 3;
            }
        }
        """
    )
    return str(path)


def test_parse_regs():
    regs = _parse_regs("r1=0x1000,r2=64,f1=2.5")
    assert regs == {"r1": 0x1000, "r2": 64, "f1": 2.5}
    assert _parse_regs(None) == {}
    assert _parse_regs("") == {}


def test_parse_regs_rejects_garbage():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        _parse_regs("r1")


def test_compile_command(frog_file, capsys):
    assert main(["compile", frog_file]) == 0
    out = capsys.readouterr().out
    assert "annotated" in out
    assert "detach" in out


def test_compile_no_hints(frog_file, capsys):
    assert main(["compile", frog_file, "--no-hints"]) == 0
    out = capsys.readouterr().out
    assert "detach" not in out


def test_compile_with_ir(frog_file, capsys):
    assert main(["compile", frog_file, "--ir"]) == 0
    out = capsys.readouterr().out
    assert "fn main" in out


def test_run_command(frog_file, capsys):
    assert main(["run", frog_file, "--regs", "r1=0x2000"]) == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "LoopFrog:" in out
    assert "speedup:" in out


def test_run_baseline_only(frog_file, capsys):
    assert main(["run", frog_file, "--baseline-only"]) == 0
    out = capsys.readouterr().out
    assert "LoopFrog" not in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "imagick" in out
    assert "libquantum" in out
    assert "profitable" in out


def test_unknown_experiment_id(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_workloads_lists_longrun_suite(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "longrun:" in out
    assert "longrun_hash" in out


# ---------------------------------------------------------------------------
# sample
# ---------------------------------------------------------------------------


@pytest.fixture
def _restore_default_store():
    """CLI store flags override the process default; put it back."""
    from repro.results import get_default_store, set_default_store

    saved = get_default_store()
    yield
    set_default_store(saved)


def test_sample_command_with_verification(_restore_default_store, capsys):
    # imagick_conv sits under the full-detail threshold, so the sampled
    # estimate is exact and --verify 0.0 must hold.
    assert main(["sample", "imagick_conv", "--no-store", "--jobs", "1",
                 "--verify", "0.0"]) == 0
    out = capsys.readouterr().out
    assert "estimated CPI" in out
    assert "verification passed" in out


def test_sample_unknown_workload_is_an_error(_restore_default_store, capsys):
    assert main(["sample", "no_such_workload", "--no-store"]) == 1
    assert "error" in capsys.readouterr().err


def test_suite_parser_accepts_sampled_and_longrun():
    args = build_parser().parse_args(["suite", "longrun", "--sampled"])
    assert args.name == "longrun"
    assert args.sampled
    args = build_parser().parse_args(["suite", "spec2017"])
    assert not args.sampled


def test_missing_file_is_an_error(capsys):
    assert main(["compile", "/nonexistent.frog"]) == 1


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ---------------------------------------------------------------------------
# results stats / gc
# ---------------------------------------------------------------------------


@pytest.fixture
def populated_store(tmp_path):
    """A store dir holding one current record, one stale, one corrupt."""
    from repro.results import ResultStore
    from repro.uarch.core import SimStats

    root = tmp_path / "store"
    current = ResultStore(root)
    current.save("aa" + "0" * 62, SimStats(cycles=10))
    stale = ResultStore(root, schema=current.schema - 1)
    stale.save("bb" + "0" * 62, SimStats(cycles=20))
    shard = root / "cc"
    shard.mkdir(parents=True)
    (shard / ("cc" + "0" * 62 + ".json")).write_text("{corrupt")
    return str(root)


def test_results_stats(populated_store, capsys):
    assert main(["results", "stats", "--store-dir", populated_store]) == 0
    out = capsys.readouterr().out
    assert "records:  2" in out  # parseable records; corrupt counted apart
    assert "corrupt:  1" in out
    assert "(current)" in out
    assert "(stale)" in out


def test_results_gc_removes_stale_keeps_current(populated_store, capsys):
    assert main(["results", "gc", "--store-dir", populated_store]) == 0
    assert "removed 2 stale/corrupt records" in capsys.readouterr().out
    assert main(["results", "stats", "--store-dir", populated_store]) == 0
    out = capsys.readouterr().out
    assert "records:  1" in out
    assert "corrupt:  0" in out


def test_results_gc_purge_empties_store(populated_store, capsys):
    assert main(["results", "gc", "--purge",
                 "--store-dir", populated_store]) == 0
    assert "removed 3 all records" in capsys.readouterr().out


def test_results_stats_on_missing_store(tmp_path, capsys):
    missing = str(tmp_path / "never-created")
    assert main(["results", "stats", "--store-dir", missing]) == 0
    assert "records:  0" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# --jobs / --store-dir error paths
# ---------------------------------------------------------------------------


def test_negative_jobs_is_an_error(capsys):
    assert main(["suite", "spec2017", "--only", "imagick",
                 "--no-store", "--jobs", "-1"]) == 1
    assert "--jobs must be >= 0" in capsys.readouterr().err


def test_non_integer_jobs_is_a_usage_error():
    with pytest.raises(SystemExit) as exc:
        main(["suite", "spec2017", "--jobs", "many"])
    assert exc.value.code == 2


def test_store_dir_collision_with_file(tmp_path, capsys):
    not_a_dir = tmp_path / "occupied"
    not_a_dir.write_text("I am a file")
    assert main(["suite", "spec2017", "--only", "imagick",
                 "--store-dir", str(not_a_dir)]) == 1
    assert "not a directory" in capsys.readouterr().err
    assert not_a_dir.read_text() == "I am a file"  # untouched


def test_results_store_dir_collision_with_file(tmp_path, capsys):
    not_a_dir = tmp_path / "occupied"
    not_a_dir.write_text("I am a file")
    assert main(["results", "stats", "--store-dir", str(not_a_dir)]) == 1
    assert "not a directory" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------


def test_trace_command(frog_file, capsys):
    assert main(["trace", frog_file, "--regs", "r1=0x2000"]) == 0
    out = capsys.readouterr().out
    assert "compile" in out
    assert "simulate" in out
    assert "epoch.spawn" in out


def test_trace_with_output_metrics_and_summarize(frog_file, tmp_path, capsys):
    timeline = tmp_path / "run.jsonl"
    assert main(["trace", frog_file, "--regs", "r1=0x2000",
                 "--out", str(timeline), "--metrics"]) == 0
    out = capsys.readouterr().out
    assert f"records to {timeline}" in out
    assert "uarch.core.cycles" in out

    # Second mode: summarize the written timeline.
    assert main(["trace", str(timeline)]) == 0
    summary = capsys.readouterr().out
    assert "simulate" in summary and "epoch.spawn" in summary


def test_trace_baseline_has_no_epochs(frog_file, capsys):
    assert main(["trace", frog_file, "--baseline"]) == 0
    out = capsys.readouterr().out
    assert "simulate" in out
    assert "epoch.spawn" not in out


def test_trace_leaves_tracing_disabled(frog_file, capsys):
    from repro.obs.tracing import current_tracer

    assert main(["trace", frog_file]) == 0
    capsys.readouterr()
    assert current_tracer() is None


# -- lint ---------------------------------------------------------------------


@pytest.fixture
def conflict_file(tmp_path):
    path = tmp_path / "conflict.frog"
    path.write_text(
        """
        fn main(a: ptr<int>, n: int) {
            #pragma loopfrog
            for (var i: int = 0; i < n; i = i + 1) {
                a[i + 1] = a[i] + 3;
            }
        }
        """
    )
    return str(path)


def test_lint_command_text(frog_file, capsys):
    assert main(["lint", frog_file]) == 0
    out = capsys.readouterr().out
    assert "independent" in out


def test_lint_command_reports_conflict(conflict_file, capsys):
    assert main(["lint", conflict_file]) == 0
    out = capsys.readouterr().out
    assert "must-conflict" in out
    assert "distance 1" in out


def test_lint_command_json(conflict_file, capsys):
    import json

    assert main(["lint", conflict_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    loops = payload[0]["loops"]
    assert loops[0]["verdict"] == "must-conflict"
    assert loops[0]["line"] > 0
    assert loops[0]["witness"]["store"]["line"] > 0


def test_lint_requires_files_or_validate(capsys):
    assert main(["lint"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")


@pytest.fixture
def malformed_file(tmp_path):
    path = tmp_path / "broken.frog"
    path.write_text("fn main(a {\n")
    return str(path)


def test_lint_malformed_file_clean_error(malformed_file, capsys):
    # Regression: parse failures must exit 1 with a one-line error, not a
    # traceback.
    assert main(["lint", malformed_file]) == 1
    captured = capsys.readouterr()
    err = captured.err
    assert err.startswith("error:")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err + captured.out


def test_compile_malformed_file_clean_error(malformed_file, capsys):
    assert main(["compile", malformed_file]) == 1
    captured = capsys.readouterr()
    err = captured.err
    assert err.startswith("error:")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err + captured.out


def test_lint_missing_file_clean_error(capsys):
    assert main(["lint", "/nonexistent/nowhere.frog"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")


def test_froglint_tool(conflict_file, frog_file, capsys):
    import tools.froglint as froglint

    assert froglint.main([frog_file]) == 0
    capsys.readouterr()
    assert froglint.main(["--fail-on-conflict", conflict_file]) == 2
    out = capsys.readouterr().out
    assert "must-conflict" in out


# ---------------------------------------------------------------------------
# workloads gen / suite --spec / fuzz (docs/workloads.md)
# ---------------------------------------------------------------------------


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "specs.yaml"
    path.write_text(
        "- template: stream_op\n"
        "  name: cli_stream\n"
        "  params:\n"
        "    n: 16\n"
        "  seed: 3\n"
        "- template: tiny_loop\n"
        "  name: cli_tiny\n"
        "  params:\n"
        "    outer: 4\n"
    )
    return str(path)


@pytest.fixture
def suite_spec_file(tmp_path):
    path = tmp_path / "suite.yaml"
    path.write_text(
        "suite: cli_suite\n"
        "benchmarks:\n"
        "  - name: cli_bench\n"
        "    phases:\n"
        "      - template: stream_op\n"
        "        name: cli_suite_stream\n"
        "        params:\n"
        "          n: 16\n"
    )
    return str(path)


def test_workloads_list_still_works(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "spec2017" in out


def test_workloads_gen_lists_specs(spec_file, capsys):
    assert main(["workloads", "gen", spec_file]) == 0
    out = capsys.readouterr().out
    assert "cli_stream" in out
    assert "seed=3" in out
    assert "hinted loop" in out


def test_workloads_gen_writes_frog_files(spec_file, tmp_path, capsys):
    out_dir = tmp_path / "frogs"
    assert main(["workloads", "gen", spec_file, "--out", str(out_dir)]) == 0
    names = sorted(p.name for p in out_dir.glob("*.frog"))
    assert names == ["cli_stream.frog", "cli_tiny.frog"]
    assert "#pragma loopfrog" in (out_dir / "cli_stream.frog").read_text()


def test_workloads_gen_requires_spec(capsys):
    assert main(["workloads", "gen"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert len(err.strip().splitlines()) == 1


def test_workloads_gen_malformed_yaml(tmp_path, capsys):
    bad = tmp_path / "bad.yaml"
    bad.write_text("template: [flow, style]\n")
    assert main(["workloads", "gen", str(bad)]) == 1
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert len(captured.err.strip().splitlines()) == 1
    assert "Traceback" not in captured.err + captured.out


def test_workloads_gen_unknown_template(tmp_path, capsys):
    bad = tmp_path / "unk.yaml"
    bad.write_text("template: no_such_template\nname: x\n")
    assert main(["workloads", "gen", str(bad)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "unknown template" in err
    assert len(err.strip().splitlines()) == 1


def test_suite_with_spec_file(suite_spec_file, capsys):
    assert main(["suite", "--spec", suite_spec_file]) == 0
    out = capsys.readouterr().out
    assert "cli_suite" in out
    assert "cli_bench" in out


def test_suite_spec_workload_document_rejected(spec_file, capsys):
    # A plain workload list is not a suite document.
    assert main(["suite", "--spec", spec_file]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")


def test_suite_unknown_name_clean_error(capsys):
    assert main(["suite", "nope"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")


def test_fuzz_smoke_session(capsys):
    assert main(["fuzz", "--seed", "3", "--budget", "2"]) == 0
    out = capsys.readouterr().out
    assert "seed 3, budget 2" in out
    assert "survivors:" in out


def test_fuzz_json_output(capsys):
    import json

    assert main(["fuzz", "--seed", "3", "--budget", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["seed"] == 3
    assert payload["cases"] == 2


def test_fuzz_rejects_bad_budget(capsys):
    assert main(["fuzz", "--budget", "0"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert len(err.strip().splitlines()) == 1


def test_fuzz_replay_empty_corpus(tmp_path, capsys):
    empty = tmp_path / "corpus"
    empty.mkdir()
    assert main(["fuzz", "--replay", "--corpus", str(empty)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no .yaml entries" in err


def test_fuzz_replay_missing_corpus(capsys):
    assert main(["fuzz", "--replay", "--corpus", "/nonexistent/dir"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")


def test_fuzz_write_and_replay_roundtrip(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    assert main([
        "fuzz", "--seed", "3", "--budget", "4",
        "--corpus", str(corpus), "--write",
    ]) == 0
    capsys.readouterr()
    assert main(["fuzz", "--replay", "--corpus", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out
