#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh engine benchmark against a baseline.

Run:  PYTHONPATH=src python tools/bench_compare.py [options]

Compares two ``bench_engine.py`` result records — by default the committed
``BENCH_engine.json`` baseline against a freshly-measured run — and exits
nonzero when either gate fails:

* **Semantics gate (exact).**  When both records were produced by the same
  ``ENGINE_SCHEMA_VERSION``, total simulated cycles and instructions over
  the pinned workload subset must match *bit-identically*.  Any drift
  means the engine's timing semantics changed without a schema bump —
  which silently poisons the persistent result store.  This check is
  machine-independent, so it gates hard everywhere (including CI).
* **Throughput gate (noise-tolerant).**  Cold instructions/second must be
  at least ``(1 - tolerance)`` of the baseline.  The default tolerance of
  15% absorbs ordinary machine noise while still catching a 20% slowdown;
  ``--runs N`` measures N times and keeps the best, squeezing noise
  further.  Raise ``--tolerance`` on shared/virtualized hardware.
* **Experiment-dispatch gate.**  The declarative experiment registry's
  warm-cache dispatch pass (``exp_dispatch_seconds``) must stay below a
  fixed fraction of the subset's cold simulation wall time, so the
  spec/registry layer can never silently regress suite throughput.
  Skipped when either record predates the field.

``--current FILE`` compares two existing records without simulating
(useful for tests and offline analysis); ``--output FILE`` saves the fresh
measurement for artifact upload.
"""

import argparse
import json
import sys

DEFAULT_BASELINE = "BENCH_engine.json"
DEFAULT_TOLERANCE = 0.15
# Warm registry dispatch must stay below this fraction of the subset's
# cold simulation wall time (see measure_exp_dispatch in bench_engine.py).
EXP_DISPATCH_CEILING = 0.10


def load_record(path):
    with open(path) as fh:
        record = json.load(fh)
    if not isinstance(record, dict) or "instructions_per_second" not in record:
        raise ValueError(f"{path}: not a bench_engine result record")
    return record


def measure_current(runs):
    """Run the engine benchmark ``runs`` times; keep the fastest.

    Cycle/instruction totals must agree across repeats (same engine, same
    pinned inputs) — a mismatch is reported as a nondeterminism failure.
    """
    from bench_engine import run_bench

    best = None
    for i in range(runs):
        result = run_bench()
        print(
            f"run {i + 1}/{runs}: "
            f"{result['instructions_per_second']:.0f} instr/s "
            f"({result['wall_seconds']}s)"
        )
        if best is not None and (
            result["cycles"] != best["cycles"]
            or result["instructions"] != best["instructions"]
        ):
            raise SystemExit(
                "FAIL: repeated runs disagree on cycles/instructions — "
                "the engine is nondeterministic"
            )
        if best is None or (
            result["instructions_per_second"]
            > best["instructions_per_second"]
        ):
            best = result
    return best


def compare(baseline, current, tolerance=DEFAULT_TOLERANCE):
    """Returns ``(ok, lines)``: the verdict plus a human-readable report."""
    lines = []
    ok = True

    # -- semantics gate ------------------------------------------------------
    base_schema = baseline.get("engine_schema")
    cur_schema = current.get("engine_schema")
    comparable = (
        base_schema is not None
        and base_schema == cur_schema
        and baseline.get("suite") == current.get("suite")
        and baseline.get("benchmarks") == current.get("benchmarks")
    )
    if comparable:
        for field in ("cycles", "instructions", "simulations"):
            base_v, cur_v = baseline.get(field), current.get(field)
            if base_v != cur_v:
                ok = False
                lines.append(
                    f"FAIL semantics: {field} changed "
                    f"{base_v} -> {cur_v} without an ENGINE_SCHEMA_VERSION "
                    f"bump (stored results are now silently stale)"
                )
        if ok:
            lines.append(
                f"semantics: cycles/instructions bit-identical "
                f"({baseline.get('cycles')} cycles, "
                f"{baseline.get('instructions')} instructions, "
                f"schema {base_schema})"
            )
    else:
        lines.append(
            "semantics: skipped (engine schema or workload subset differs: "
            f"baseline schema {base_schema}, current schema {cur_schema})"
        )

    # -- throughput gate -----------------------------------------------------
    base_ips = baseline["instructions_per_second"]
    cur_ips = current["instructions_per_second"]
    ratio = cur_ips / base_ips if base_ips else 0.0
    floor = 1.0 - tolerance
    lines.append(
        f"throughput: baseline {base_ips:.0f} instr/s, "
        f"current {cur_ips:.0f} instr/s, ratio {ratio:.3f} "
        f"(floor {floor:.3f})"
    )
    if ratio < floor:
        ok = False
        lines.append(
            f"FAIL throughput: {(1 - ratio) * 100:.1f}% slower than "
            f"baseline, exceeds the {tolerance * 100:.0f}% tolerance"
        )
        worst = _worst_regressor(baseline, current)
        if worst is not None:
            name, base_b, cur_b, b_ratio = worst
            lines.append(
                f"  worst regressor: {name} "
                f"({base_b:.0f} -> {cur_b:.0f} instr/s, "
                f"ratio {b_ratio:.3f})"
            )

    # -- engine-mode speedups (informational; parity is gated by tests) ------
    cur_ref = current.get("reference_instructions_per_second")
    if cur_ref:
        lines.append(
            f"default mode: {cur_ips / cur_ref:.2f}x the reference engine "
            f"({cur_ref:.0f} instr/s reference)"
        )
    cur_ep = current.get("epoch_parallel_instructions_per_second")
    if cur_ep:
        cur_fast = current.get("fast_instructions_per_second")
        vs_fast = (
            f", {cur_ep / cur_fast:.2f}x the serial fast path "
            f"({cur_fast:.0f} instr/s)" if cur_fast else ""
        )
        lines.append(
            f"epoch-parallel: {cur_ep:.0f} instr/s{vs_fast}"
        )

    # -- fuzz throughput (informational; no gate — the fuzz session mixes
    # compile, differential execution and minimization, so its programs/s
    # moves with all of them and a dedicated floor would double-gate) -------
    cur_fuzz = current.get("fuzz_programs_per_second")
    if cur_fuzz:
        base_fuzz = baseline.get("fuzz_programs_per_second")
        baseline_note = (
            f" (baseline {base_fuzz:.0f})" if base_fuzz else ""
        )
        lines.append(
            f"fuzz: {cur_fuzz:.0f} programs/s over "
            f"{current.get('fuzz_programs', '?')} executions"
            f"{baseline_note}"
        )

    # -- lint-throughput gate (skipped for records predating the field) ------
    base_lint = baseline.get("lint_loops_per_second")
    cur_lint = current.get("lint_loops_per_second")
    if base_lint and cur_lint:
        lint_ratio = cur_lint / base_lint
        lines.append(
            f"lint: baseline {base_lint:.0f} loops/s, "
            f"current {cur_lint:.0f} loops/s, ratio {lint_ratio:.3f} "
            f"(floor {floor:.3f})"
        )
        if lint_ratio < floor:
            ok = False
            lines.append(
                f"FAIL lint throughput: {(1 - lint_ratio) * 100:.1f}% "
                f"slower than baseline, exceeds the "
                f"{tolerance * 100:.0f}% tolerance"
            )

    # -- experiment-dispatch gate (skipped for records predating the field) --
    # The declarative registry (docs/experiments.md) is bookkeeping on top
    # of the runner: its warm-cache dispatch pass must stay a small
    # fraction of the subset's cold simulation wall time, or spec dispatch
    # has started to eat into suite throughput.
    cur_dispatch = current.get("exp_dispatch_seconds")
    cur_wall = current.get("wall_seconds")
    if cur_dispatch is not None and cur_wall:
        dispatch_ratio = cur_dispatch / cur_wall
        lines.append(
            f"exp dispatch: {cur_dispatch:.4f}s for "
            f"{current.get('exp_dispatch_cells', '?')} warm cells, "
            f"{dispatch_ratio:.1%} of simulation wall time "
            f"(ceiling {EXP_DISPATCH_CEILING:.0%})"
        )
        if dispatch_ratio > EXP_DISPATCH_CEILING:
            ok = False
            lines.append(
                f"FAIL exp dispatch: registry overhead is "
                f"{dispatch_ratio:.1%} of suite wall time, exceeds the "
                f"{EXP_DISPATCH_CEILING:.0%} ceiling"
            )
    return ok, lines


def _worst_regressor(baseline, current):
    """Lowest per-benchmark throughput ratio, or ``None`` when either
    record predates the ``per_benchmark`` breakdown."""
    base_pb = baseline.get("per_benchmark")
    cur_pb = current.get("per_benchmark")
    if not isinstance(base_pb, dict) or not isinstance(cur_pb, dict):
        return None
    worst = None
    for name in base_pb:
        if name not in cur_pb:
            continue
        base_ips = base_pb[name].get("instructions_per_second") or 0.0
        cur_ips = cur_pb[name].get("instructions_per_second") or 0.0
        if not base_ips:
            continue
        ratio = cur_ips / base_ips
        if worst is None or ratio < worst[3]:
            worst = (name, base_ips, cur_ips, ratio)
    return worst


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline record "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--current", metavar="FILE",
                        help="compare this record instead of measuring")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional throughput drop "
                             f"(default: {DEFAULT_TOLERANCE})")
    parser.add_argument("--runs", type=int, default=1,
                        help="measurements to take; the fastest is compared")
    parser.add_argument("--output", metavar="FILE",
                        help="also save the fresh measurement to FILE")
    args = parser.parse_args(argv)

    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    if args.runs < 1:
        parser.error(f"--runs must be >= 1, got {args.runs}")

    baseline = load_record(args.baseline)
    if args.current:
        current = load_record(args.current)
    else:
        current = measure_current(args.runs)
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(current, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.output}")

    ok, lines = compare(baseline, current, args.tolerance)
    for line in lines:
        print(line)
    print("OK" if ok else "REGRESSION DETECTED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
