#!/usr/bin/env python3
"""Standalone Frog lint driver: static loop-carried dependence verdicts.

Run:  PYTHONPATH=src python tools/froglint.py FILE [FILE...] [--json]

A thin wrapper over ``repro lint`` (see ``repro.analysis.lint``) for use
outside the installed package — editor integrations, pre-commit hooks,
CI.  Exit status: 0 on success, 1 on a parse/lowering error, and 2 when
``--fail-on-conflict`` is given and any loop is classified must-conflict.
"""

import argparse
import json
import sys

from repro.analysis.lint import lint_source, render_lint
from repro.compiler.depanal import VERDICT_MUST_CONFLICT
from repro.errors import ReproError


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="Frog source files")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--entry", default="main",
                        help="entry function name (default: main)")
    parser.add_argument("--granule", type=int, default=4, metavar="BYTES",
                        help="conflict-detector granule (default: 4)")
    parser.add_argument("--fail-on-conflict", action="store_true",
                        help="exit 2 if any loop is must-conflict")
    args = parser.parse_args(argv)

    payload = []
    conflicts = 0
    for path in args.files:
        try:
            with open(path) as fh:
                source = fh.read()
            lint = lint_source(source, path=path, entry=args.entry,
                               granule_bytes=args.granule)
        except (ReproError, OSError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
        conflicts += sum(
            1 for dep in lint.loops if dep.verdict == VERDICT_MUST_CONFLICT
        )
        if args.json:
            payload.append(lint.to_dict())
        else:
            print(render_lint(lint))
    if args.json:
        print(json.dumps(payload, indent=2))
    if args.fail_on_conflict and conflicts:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
