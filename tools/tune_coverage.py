"""Coverage tuner: suggest `sequential` (serial-chain iterations) per
benchmark so whole-program speedups land near the paper's figure-6 values.

Run:  python tools/tune_coverage.py [suite]
"""
import sys
from repro.experiments.runner import run_benchmark
from repro.workloads import suite

SERIAL_CYCLES_PER_ITER = 15.0

TARGETS = {
    # spec2017 (paper section 6.2 / figure 6)
    "imagick": 1.87, "omnetpp": 1.54, "nab": 1.15, "gcc": 1.12,
    "xalancbmk": 1.11, "mcf": 1.05, "perlbench": 1.03, "x264": 1.09,
    "exchange2": 1.06, "povray": 1.04, "bwaves": 1.07, "parest": 1.05,
    "cactuBSSN": 1.03, "namd": 1.0, "lbm": 1.0, "blender": 1.0,
    "deepsjeng": 1.0, "leela": 1.0, "xz": 1.0, "wrf": 1.005,
    # spec2006
    "perlbench06": 1.10, "bzip2": 1.0, "gcc06": 1.11, "mcf06": 1.18,
    "gobmk": 1.0, "hmmer": 1.12, "sjeng": 1.0, "libquantum": 1.35,
    "h264ref": 1.15, "omnetpp06": 1.40, "astar": 1.11,
    "xalancbmk06": 1.12, "milc": 1.14, "namd06": 1.0, "povray06": 1.04,
    "lbm06": 1.0, "sphinx3": 1.13,
}

def main(suite_name):
    for bench in suite(suite_name):
        run = run_benchmark(bench, dynamic_deselection=False)
        base = run.phases[0].baseline
        frog = run.phases[0].loopfrog
        t_region_b = sum(r.arch_cycles for k, r in base.regions.items() if k != "<none>")
        t_region_f = sum(r.arch_cycles for k, r in frog.regions.items() if k != "<none>")
        s_loop = t_region_b / t_region_f if t_region_f else 1.0
        target = TARGETS.get(bench.name, 1.0)
        t_other = base.cycles - t_region_b
        line = (f"{bench.name:13s} now={run.speedup:6.3f} loop={s_loop:5.2f} "
                f"t_region={t_region_b:7.0f} t_other={t_other:7.0f}")
        if target <= 1.0:
            print(line + "  (unprofitable; leave)")
            continue
        if s_loop <= target:
            print(line + f"  !! loop speedup {s_loop:.2f} <= target {target}")
            continue
        f_needed = (1 - 1/target) / (1 - 1/s_loop)
        t_seq_needed = t_region_b * (1/f_needed - 1)
        delta_iters = (t_seq_needed - t_other) / SERIAL_CYCLES_PER_ITER
        print(line + f"  target={target} f={f_needed:.3f} add_seq={delta_iters:+.0f}")

if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "spec2017")
