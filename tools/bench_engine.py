#!/usr/bin/env python3
"""Engine throughput smoke: cold-simulate a fixed workload subset and
record wall time + simulated instructions/sec in BENCH_engine.json.

Run:  PYTHONPATH=src python tools/bench_engine.py [--output FILE]

The subset is pinned (first three spec2017 benchmarks, both configs, all
phases) so numbers are comparable across commits.  Runs are cold: the
in-process cache and the persistent store are both bypassed, so this
measures raw engine speed, never cache hits.
"""

import argparse
import json
import sys
import time

from repro.experiments.runner import _simulate
from repro.uarch.config import baseline_machine, default_machine
from repro.uarch.core import ENGINE_SCHEMA_VERSION
from repro.workloads.suites import suite

BENCH_SUITE = "spec2017"
BENCH_COUNT = 3  # first N benchmarks of the suite


def run_bench():
    benchmarks = suite(BENCH_SUITE)[:BENCH_COUNT]
    machines = [("baseline", baseline_machine()), ("loopfrog", default_machine())]
    instructions = 0
    cycles = 0
    sims = 0
    start = time.perf_counter()
    for benchmark in benchmarks:
        for workload, _weight in benchmark.phases:
            for _label, machine in machines:
                stats = _simulate(workload, machine)
                instructions += stats.arch_instructions
                cycles += stats.cycles
                sims += 1
    elapsed = time.perf_counter() - start
    return {
        "suite": BENCH_SUITE,
        # Cycle/instruction totals are only comparable between runs of the
        # same timing semantics; bench_compare.py keys its exactness gate
        # on this matching.
        "engine_schema": ENGINE_SCHEMA_VERSION,
        "benchmarks": [b.name for b in benchmarks],
        "simulations": sims,
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": round(elapsed, 3),
        "instructions_per_second": round(instructions / elapsed, 1),
        "cycles_per_second": round(cycles / elapsed, 1),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)
    result = run_bench()
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(
        f"{result['simulations']} simulations, "
        f"{result['instructions']} instructions in "
        f"{result['wall_seconds']}s -> "
        f"{result['instructions_per_second']:.0f} instr/s"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
