#!/usr/bin/env python3
"""Engine throughput smoke: cold-simulate a fixed workload subset and
record wall time + simulated instructions/sec in BENCH_engine.json.

Run:  PYTHONPATH=src python tools/bench_engine.py [--output FILE]

The subset is pinned (first three spec2017 benchmarks, both configs, all
phases) so numbers are comparable across commits.  Runs are cold: the
in-process cache and the persistent store are both bypassed, so this
measures raw engine speed, never cache hits.

The headline ``instructions_per_second`` measures the *default* engine
mode (epoch-parallel).  Besides the aggregate, the record carries a
``per_benchmark`` breakdown (so bench_compare.py can name the worst
regressor on a throughput failure), per-mode throughput for all three
engine modes (``reference_instructions_per_second``,
``fast_instructions_per_second``,
``epoch_parallel_instructions_per_second`` — the mode speedups are the
ratios; the parity matrix proves the modes bit-identical), a
per-step-phase ``phases`` breakdown from a profiled pass, and
``fast_forward_instructions_per_second`` — the steady-state throughput
of the functional fast-forward executor that sampled simulation
(docs/sampling.md) uses to skip between detailed windows.
"""

import argparse
import json
import sys
import time

from repro.experiments.runner import _simulate
from repro.uarch.config import baseline_machine, default_machine
from repro.uarch.core import ENGINE_SCHEMA_VERSION
from repro.workloads.suites import suite

BENCH_SUITE = "spec2017"
BENCH_COUNT = 3  # first N benchmarks of the suite


def measure_fast_forward(benchmarks):
    """Steady-state functional fast-forward throughput on the same subset.

    Each phase is executed once unmeasured to populate the per-program
    handler caches, then once timed — matching how the sampling runner
    uses the executor (one compile, many skipped instructions).
    """
    from repro.sampling.fastforward import FastForwardExecutor

    def run_all():
        executed = 0
        for benchmark in benchmarks:
            for workload, _weight in benchmark.phases:
                memory, regs = workload.fresh_input()
                ff = FastForwardExecutor(workload.program, memory, regs)
                executed += ff.run_to_halt()
        return executed

    run_all()  # warm the handler caches
    start = time.perf_counter()
    executed = run_all()
    elapsed = time.perf_counter() - start
    return round(executed / elapsed, 1) if elapsed else 0.0


def measure_lint(benchmarks):
    """Wall time of the static dependence analysis (``repro lint``) over
    the same subset: fresh compiles with ``static_analysis=True``, so a
    pathological slowdown in the depanal pass shows up here.
    """
    from repro.analysis.lint import lint_source

    def run_all():
        loops = 0
        for benchmark in benchmarks:
            for workload, _weight in benchmark.phases:
                lint = lint_source(workload.source, path=workload.name)
                loops += len(lint.loops)
        return loops

    run_all()  # warm module imports
    start = time.perf_counter()
    loops = run_all()
    elapsed = time.perf_counter() - start
    return {
        "lint_loops": loops,
        "lint_wall_seconds": round(elapsed, 3),
        "lint_loops_per_second": round(loops / elapsed, 1) if elapsed else 0.0,
    }


def measure_exp_dispatch(benchmarks):
    """Warm-cache wall time of one registry experiment over the subset.

    A cold pass through ``repro.experiments.registry`` populates the
    in-process cell cache (store disabled, so nothing leaks to disk);
    the timed second pass then costs only spec dispatch, sweep
    bookkeeping, ``derive`` and rendering — the pure overhead the
    declarative experiment layer adds on top of the runner.  The
    fig9 spec is used because its four-variant sweep exercises the
    grid walk and it renders cleanly on a subset.
    """
    from repro.experiments import registry
    from repro.experiments.runner import clear_cache
    from repro.results import get_default_store, set_default_store

    names = [b.name for b in benchmarks]
    saved_store = get_default_store()
    set_default_store(None)
    clear_cache()
    try:
        registry.run_experiment("fig9", only=names, jobs=1)  # warm the cache
        start = time.perf_counter()
        run = registry.run_experiment("fig9", only=names, jobs=1)
        run.to_json()
        elapsed = time.perf_counter() - start
    finally:
        clear_cache()
        set_default_store(saved_store)
    return {
        "exp_dispatch_seconds": round(elapsed, 4),
        "exp_dispatch_cells": run.counters.cells_total,
    }


def measure_fuzz():
    """Fuzzing throughput: generated-and-executed programs per second.

    One short pinned session (seed/budget fixed, so the work is identical
    across commits).  Programs/s counts every execution the session pays
    for — generation, oracle evaluation and minimization re-runs — which
    is what bounds how much coverage a CI fuzz-smoke budget buys.
    """
    from repro.fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(seed=3, budget=8, max_mutations=2, minimize_steps=40)
    run_fuzz(FuzzConfig(seed=3, budget=1))  # warm compiler/engine imports
    report = run_fuzz(config)
    return {
        "fuzz_programs": report.executions,
        "fuzz_wall_seconds": round(report.wall_seconds, 3),
        "fuzz_programs_per_second": round(report.programs_per_second, 1),
    }


def measure_mode(benchmarks, machines, mode):
    """Throughput of one pinned engine mode on the same subset.

    Together with the headline ``instructions_per_second`` (the default
    mode, epoch-parallel) this makes the per-mode speedups visible
    directly in BENCH_engine.json; the parity matrix
    (tests/test_engine_parity.py) proves all modes bit-identical.
    """
    from repro.uarch.core import set_engine_mode

    set_engine_mode(mode)
    try:
        instructions = 0
        start = time.perf_counter()
        for benchmark in benchmarks:
            for workload, _weight in benchmark.phases:
                for _label, machine in machines:
                    stats = _simulate(workload, machine)
                    instructions += stats.arch_instructions
        elapsed = time.perf_counter() - start
    finally:
        set_engine_mode(None)
    return round(instructions / elapsed, 1) if elapsed else 0.0


def measure_phases(benchmarks, machines):
    """Per-step-phase wall breakdown of the fast path (profiled pass).

    Runs the subset once more under cProfile and folds the phase-method
    cumtimes with the same logic as tools/profile_engine.py, so the bench
    record shows where engine time goes without re-deriving it by hand.
    The profiled pass is separate from the timed pass — profiling
    overhead never contaminates ``instructions_per_second``.
    """
    import cProfile
    import pstats

    try:
        from profile_engine import _phase_breakdown
    except ImportError:  # imported as a package module rather than a script
        from tools.profile_engine import _phase_breakdown

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    for benchmark in benchmarks:
        for workload, _weight in benchmark.phases:
            for _label, machine in machines:
                _simulate(workload, machine)
    profiler.disable()
    wall = time.perf_counter() - start
    return _phase_breakdown(pstats.Stats(profiler), wall)


def run_bench():
    benchmarks = suite(BENCH_SUITE)[:BENCH_COUNT]
    machines = [("baseline", baseline_machine()), ("loopfrog", default_machine())]
    instructions = 0
    cycles = 0
    sims = 0
    per_benchmark = {}
    start = time.perf_counter()
    for benchmark in benchmarks:
        b_instructions = 0
        b_cycles = 0
        b_start = time.perf_counter()
        for workload, _weight in benchmark.phases:
            for _label, machine in machines:
                stats = _simulate(workload, machine)
                b_instructions += stats.arch_instructions
                b_cycles += stats.cycles
                sims += 1
        b_elapsed = time.perf_counter() - b_start
        instructions += b_instructions
        cycles += b_cycles
        per_benchmark[benchmark.name] = {
            "instructions": b_instructions,
            "cycles": b_cycles,
            "wall_seconds": round(b_elapsed, 3),
            "instructions_per_second": round(
                b_instructions / b_elapsed, 1
            ) if b_elapsed else 0.0,
        }
    elapsed = time.perf_counter() - start
    return {
        "suite": BENCH_SUITE,
        # Cycle/instruction totals are only comparable between runs of the
        # same timing semantics; bench_compare.py keys its exactness gate
        # on this matching.
        "engine_schema": ENGINE_SCHEMA_VERSION,
        "benchmarks": [b.name for b in benchmarks],
        "simulations": sims,
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": round(elapsed, 3),
        "instructions_per_second": round(instructions / elapsed, 1),
        "cycles_per_second": round(cycles / elapsed, 1),
        "per_benchmark": per_benchmark,
        "reference_instructions_per_second": measure_mode(
            benchmarks, machines, "reference"
        ),
        "fast_instructions_per_second": measure_mode(
            benchmarks, machines, "fast"
        ),
        "epoch_parallel_instructions_per_second": measure_mode(
            benchmarks, machines, "epoch-parallel"
        ),
        "phases": measure_phases(benchmarks, machines),
        "fast_forward_instructions_per_second": measure_fast_forward(
            benchmarks
        ),
        **measure_lint(benchmarks),
        **measure_exp_dispatch(benchmarks),
        **measure_fuzz(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)
    result = run_bench()
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    print(
        f"{result['simulations']} simulations, "
        f"{result['instructions']} instructions in "
        f"{result['wall_seconds']}s -> "
        f"{result['instructions_per_second']:.0f} instr/s"
    )
    ref = result["reference_instructions_per_second"]
    if ref:
        speedup = result["instructions_per_second"] / ref
        print(f"reference path: {ref:.0f} instr/s "
              f"(default mode is {speedup:.2f}x)")
    fast = result["fast_instructions_per_second"]
    ep = result["epoch_parallel_instructions_per_second"]
    if fast and ep:
        print(f"modes: fast {fast:.0f} instr/s, "
              f"epoch-parallel {ep:.0f} instr/s "
              f"({ep / fast:.2f}x serial fast)")
    ff = result["fast_forward_instructions_per_second"]
    ratio = ff / result["instructions_per_second"]
    print(f"fast-forward: {ff:.0f} instr/s ({ratio:.1f}x detailed)")
    print(
        f"lint: {result['lint_loops']} loops in "
        f"{result['lint_wall_seconds']}s -> "
        f"{result['lint_loops_per_second']:.0f} loops/s"
    )
    print(
        f"exp dispatch: {result['exp_dispatch_cells']} warm cells in "
        f"{result['exp_dispatch_seconds']}s"
    )
    print(
        f"fuzz: {result['fuzz_programs']} programs in "
        f"{result['fuzz_wall_seconds']}s -> "
        f"{result['fuzz_programs_per_second']:.0f} programs/s"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
