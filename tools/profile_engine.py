#!/usr/bin/env python3
"""Hot-function profile of the detailed engine over a workload suite.

Run:  PYTHONPATH=src python tools/profile_engine.py [options]

Simulates a pinned workload subset (the bench_engine.py subset by
default) under cProfile and reports two views:

* the top-N hottest functions by cumulative time, and
* a per-step-phase breakdown — how much wall time the engine spent in
  fetch, dispatch, issue, commit, completion processing, threadlet
  commit and per-cycle statistics — resolved from the profile of the
  ``Engine`` phase methods themselves.

The JSON output is the before/after evidence artifact for engine perf
work: run it on the parent commit and on your branch, and diff the
phase seconds.  ``--mode {reference,fast,epoch-parallel}`` pins the
engine mode to profile (default: the session default, epoch-parallel);
``--reference`` is a legacy alias for ``--mode reference``.  Under
epoch-parallel the breakdown additionally attributes time to the two
episode monoliths (``episode_single``/``episode_multi``) and reports
per-episode counts, so the epoch-batched paths and the serial
reconciliation fallback are visible separately.
"""

import argparse
import cProfile
import json
import pstats
import sys
import time

# The engine step phases, in the order step() runs them.  Both the fast
# path and the reference path keep these method names, so the breakdown
# is comparable across engine modes.
PHASE_METHODS = {
    "completions": "_process_completions",
    "commit": "_commit",
    "threadlet_commit": "_threadlet_commit",
    "issue": "_issue",
    "dispatch": "_dispatch",
    "fetch": "_fetch",
    "per_cycle_stats": "_per_cycle_stats",
    # The fast path merges every phase into one monolithic step for the
    # dominant single-threadlet case; attribute it as its own phase.
    "single_threadlet_step": "_fast_step_single",
    # The epoch-parallel mode executes *episodes* — maximal runs of
    # cycles with a stable threadlet population — as cross-cycle
    # monoliths.  Each call is one episode, so the calls column is the
    # episode count: "episode_single" covers lone-threadlet epochs,
    # "episode_multi" the multi-threadlet (reconciliation) epochs.
    "episode_single": "_ep_run_single",
    "episode_multi": "_ep_run_multi",
}


def simulate_subset(suite_name, count):
    """Cold-simulate the subset on both machine configs; returns totals."""
    from repro.experiments.runner import _simulate
    from repro.uarch.config import baseline_machine, default_machine
    from repro.workloads.suites import suite

    instructions = 0
    cycles = 0
    sims = 0
    for benchmark in suite(suite_name)[:count]:
        for workload, _weight in benchmark.phases:
            for machine in (baseline_machine(), default_machine()):
                stats = _simulate(workload, machine)
                instructions += stats.arch_instructions
                cycles += stats.cycles
                sims += 1
    return {"instructions": instructions, "cycles": cycles,
            "simulations": sims}


def _function_rows(stats, limit):
    """Top functions by cumulative time as JSON-friendly rows."""
    rows = []
    entries = sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    )
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in entries:
        rows.append({
            "function": name,
            "file": filename,
            "line": lineno,
            "calls": nc,
            "total_seconds": round(tt, 4),
            "cumulative_seconds": round(ct, 4),
        })
        if len(rows) >= limit:
            break
    return rows


def _phase_breakdown(stats, wall_seconds):
    """Cumulative seconds per engine step phase, from the phase methods.

    Methods are matched by (core.py, method-name); cumtime of each phase
    method is exactly the wall time spent inside that phase (phases never
    call each other).  The fast path prefixes its phase methods with
    ``_fast`` (e.g. ``_fast_commit``), so both spellings fold into the
    same phase bucket and reference/fast profiles stay comparable.
    """
    phases = {}
    for (filename, _lineno, name), (_cc, nc, _tt, ct, _callers) in (
        stats.stats.items()
    ):
        for phase, method in PHASE_METHODS.items():
            if (
                (name == method or name == "_fast" + method)
                and filename.endswith("core.py")
            ):
                entry = phases.setdefault(
                    phase, {"calls": 0, "seconds": 0.0}
                )
                entry["calls"] += nc
                entry["seconds"] = round(entry["seconds"] + ct, 4)
    accounted = sum(p["seconds"] for p in phases.values())
    phases["other"] = {
        "calls": 0,
        "seconds": round(max(0.0, wall_seconds - accounted), 4),
    }
    for phase, entry in phases.items():
        entry["share"] = round(
            entry["seconds"] / wall_seconds, 4
        ) if wall_seconds else 0.0
    return phases


def _episode_attribution(phases):
    """Per-episode view of the epoch-parallel monoliths.

    Each ``_ep_run_*`` call is one episode, so calls/seconds of those
    phase rows convert directly into episode counts and mean per-episode
    cost — the reconciliation-overhead evidence for perf work.
    """
    episodes = {}
    for phase, kind in (("episode_single", "single"),
                        ("episode_multi", "multi")):
        entry = phases.get(phase)
        if not entry or not entry["calls"]:
            continue
        episodes[kind] = {
            "episodes": entry["calls"],
            "seconds": entry["seconds"],
            "mean_microseconds": round(
                entry["seconds"] / entry["calls"] * 1e6, 2
            ),
        }
    return episodes


def run_profile(suite_name, count, top, mode=None):
    from repro.uarch import core as _core

    if mode is not None:
        _core.set_engine_mode(mode)
    resolved_mode = _core.engine_mode()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    totals = simulate_subset(suite_name, count)
    profiler.disable()
    wall = time.perf_counter() - start
    stats = pstats.Stats(profiler)
    phases = _phase_breakdown(stats, wall)
    return {
        "suite": suite_name,
        "benchmark_count": count,
        "engine_mode": resolved_mode,
        "reference_path": resolved_mode == "reference",
        "wall_seconds": round(wall, 3),
        "instructions": totals["instructions"],
        "cycles": totals["cycles"],
        "simulations": totals["simulations"],
        "instructions_per_second": round(
            totals["instructions"] / wall, 1
        ) if wall else 0.0,
        "phases": phases,
        "episodes": _episode_attribution(phases),
        "top_functions": _function_rows(stats, top),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="spec2017")
    parser.add_argument("--count", type=int, default=3,
                        help="benchmarks of the suite to profile")
    parser.add_argument("--top", type=int, default=25,
                        help="hot functions to report")
    parser.add_argument("--mode", choices=("reference", "fast",
                                           "epoch-parallel"),
                        help="engine mode to profile (default: the "
                             "session default, epoch-parallel)")
    parser.add_argument("--reference", action="store_true",
                        help="legacy alias for --mode reference")
    parser.add_argument("--output", metavar="FILE",
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)
    mode = args.mode
    if args.reference:
        if mode and mode != "reference":
            parser.error("--reference conflicts with --mode " + mode)
        mode = "reference"

    report = run_profile(args.suite, args.count, args.top, mode=mode)
    payload = json.dumps(report, indent=2) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(payload)
    phases = report["phases"]
    order = sorted(phases, key=lambda p: -phases[p]["seconds"])
    summary = ", ".join(
        f"{p} {phases[p]['share']:.0%}" for p in order if phases[p]["seconds"]
    )
    print(
        f"# {report['instructions']} instr in {report['wall_seconds']}s "
        f"-> {report['instructions_per_second']:.0f} instr/s "
        f"({report['engine_mode']} mode)",
        file=sys.stderr,
    )
    print(f"# phases: {summary}", file=sys.stderr)
    episodes = report.get("episodes") or {}
    for kind in sorted(episodes):
        e = episodes[kind]
        print(
            f"# episodes[{kind}]: {e['episodes']} x "
            f"{e['mean_microseconds']}us = {e['seconds']}s",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
