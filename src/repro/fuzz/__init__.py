"""Performance fuzzing: mutate generated Frog programs, hunt pathologies.

The fuzzer draws seed-pinned random loop nests (:mod:`.model`), perturbs
them with named mutators (:mod:`.mutators`), executes each candidate on
the functional executor and the LoopFrog core, and keeps the ones an
*interestingness oracle* flags (:mod:`.oracles`): differential state
divergence, static-verdict/observed-squash disagreement, squash storms,
packing pathologies, SSB overflow.  Survivors are minimized and frozen
into a corpus directory (:mod:`.corpus`) that
``tests/test_fuzz_regressions.py`` replays as permanent named workloads.
"""

from .corpus import corpus_workloads, load_corpus, write_corpus
from .engine import FuzzConfig, FuzzReport, Survivor, run_fuzz
from .model import LoopSpec, ProgramSpec, StmtSpec
from .oracles import ORACLES, OracleOutcome, evaluate_case

__all__ = [
    "FuzzConfig",
    "FuzzReport",
    "LoopSpec",
    "ORACLES",
    "OracleOutcome",
    "ProgramSpec",
    "StmtSpec",
    "Survivor",
    "corpus_workloads",
    "evaluate_case",
    "load_corpus",
    "run_fuzz",
    "write_corpus",
]
