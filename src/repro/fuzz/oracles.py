"""Interestingness oracles: what makes a fuzzed program worth keeping.

Each oracle inspects one executed :class:`FuzzCase` — the compiled
program (with static dependence verdicts attached), the functional
executor's final memory image, and the LoopFrog core's final image and
:class:`~repro.uarch.statistics.SimStats` — and returns a short
deterministic detail string when it fires, ``None`` otherwise.

The registry is ordered by severity: differential state divergence (an
engine correctness bug) outranks analyzer/observed disagreements, which
outrank the throughput pathologies (squash storms, packing failures,
SSB overflow).  The fuzz engine files each survivor under its
highest-severity firing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..compiler.depanal import VERDICT_INDEPENDENT, VERDICT_MUST_CONFLICT
from .model import ProgramSpec

# Thresholds for the pathology oracles.  Derived from the repro.obs
# metrics the suite-level experiments read (uarch.core.threadlets_*,
# uarch.conflict.*, uarch.packing.*).
SQUASH_STORM_MIN_SPAWNED = 16
SQUASH_STORM_RATE = 0.6
SILENT_MUST_CONFLICT_MIN_EPOCHS = 4


@dataclass
class FuzzCase:
    """Everything the oracles may inspect about one executed candidate."""

    spec: ProgramSpec
    source: str
    compile_result: object          # CompileResult (dependence + reports)
    exec_image: Dict[int, int]      # functional executor final memory
    frog_image: Dict[int, int]      # LoopFrog core final memory
    stats: object                   # SimStats of the LoopFrog run


@dataclass(frozen=True)
class OracleOutcome:
    """One oracle firing on one case."""

    oracle: str
    detail: str


def state_divergence(case: FuzzCase) -> Optional[str]:
    """Speculative execution committed different memory than the
    functional executor: an engine correctness bug, always a keeper."""
    if case.frog_image == case.exec_image:
        return None
    diffs = sorted(
        set(case.frog_image.items()) ^ set(case.exec_image.items())
    )
    addrs = sorted({addr for addr, _ in diffs})
    return (
        f"{len(addrs)} address(es) diverged from the functional "
        f"executor, first at {addrs[0]:#x}"
    )


def _annotated_reports(case: FuzzCase):
    return [r for r in case.compile_result.hint_reports if r.annotated]


def unsound_independent(case: FuzzCase) -> Optional[str]:
    """Static verdict says independent, the conflict detector squashed:
    the PR-4 soundness contract violated on a generated program."""
    for report in _annotated_reports(case):
        if report.static_verdict != VERDICT_INDEPENDENT:
            continue
        region = case.stats.regions.get(report.region)
        if region is not None and region.squash_conflicts > 0:
            return (
                f"region {report.region} classified independent but "
                f"squash_conflicts={region.squash_conflicts}"
            )
    return None


def silent_must_conflict(case: FuzzCase) -> Optional[str]:
    """Static verdict says must-conflict, yet a real run with epochs
    spawned never squashed on a conflict — the analyzer and the machine
    disagree about a *certain* dependence."""
    for report in _annotated_reports(case):
        if report.static_verdict != VERDICT_MUST_CONFLICT:
            continue
        region = case.stats.regions.get(report.region)
        if (
            region is not None
            and region.epochs_spawned >= SILENT_MUST_CONFLICT_MIN_EPOCHS
            and region.squash_conflicts == 0
        ):
            return (
                f"region {report.region} classified must-conflict but "
                f"{region.epochs_spawned} epochs ran squash-free"
            )
    return None


def squash_storm(case: FuzzCase) -> Optional[str]:
    """Most spawned threadlets die: speculation is pure overhead here."""
    spawned = case.stats.threadlets_spawned
    squashed = case.stats.threadlets_squashed
    if spawned < SQUASH_STORM_MIN_SPAWNED:
        return None
    rate = squashed / spawned
    if rate < SQUASH_STORM_RATE:
        return None
    return (
        f"threadlets_squashed={squashed} of threadlets_spawned={spawned} "
        f"(rate {rate:.2f})"
    )


def packing_pathology(case: FuzzCase) -> Optional[str]:
    """Iteration packing mispredicted a trip count and forced squashes."""
    if case.stats.squash_packing <= 0:
        return None
    return (
        f"squash_packing={case.stats.squash_packing} over "
        f"packing_events={case.stats.packing_events}"
    )


def ssb_overflow(case: FuzzCase) -> Optional[str]:
    """A threadlet overflowed its speculative store buffer slice."""
    if case.stats.squash_overflow <= 0:
        return None
    return f"squash_overflow={case.stats.squash_overflow}"


# Ordered most-severe first; the engine reports the first firing oracle.
ORACLES: Dict[str, Callable[[FuzzCase], Optional[str]]] = {
    "state_divergence": state_divergence,
    "unsound_independent": unsound_independent,
    "ssb_overflow": ssb_overflow,
    "packing_pathology": packing_pathology,
    "squash_storm": squash_storm,
    "silent_must_conflict": silent_must_conflict,
}


def evaluate_case(case: FuzzCase) -> List[OracleOutcome]:
    """All firing oracles for a case, in severity order."""
    outcomes = []
    for name, oracle in ORACLES.items():
        detail = oracle(case)
        if detail is not None:
            outcomes.append(OracleOutcome(oracle=name, detail=detail))
    return outcomes
