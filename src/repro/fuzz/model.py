"""The fuzzer's program model: a small structured space of Frog loop nests.

Mutating raw source text mostly yields parse errors; mutating a typed
tree keeps every candidate compilable while still spanning the behaviours
the simulator cares about — strides and offsets (conflict granule
aliasing), trip counts (packing, spawn overhead), nesting, pragma
placement, and statement kinds ranging from embarrassingly parallel
streams to shared-cell read-modify-writes and cross-iteration carried
dependences.

Safety by construction: array indices are non-negative affine forms of
the loop counters with small bounded coefficients, so every access lands
inside three fixed disjoint regions (``a``/``b`` inputs, ``out``).
Unwritten loads read as zero (SparseMemory semantics), which the
differential oracles rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..errors import FuzzError

# Register-mapped array bases (r1/r2/r3), matching the differential tests.
A_BASE = 0x0001_0000
B_BASE = 0x0002_0000
OUT_BASE = 0x0003_0000

# Where the accumulator is flushed so the reduction cannot be dead code.
ACC_SINK_INDEX = 60_000

# Mutation/generation bounds.  Kept small enough that the largest index
# (trip * stride + nested_trip + offset + distance) stays well inside one
# region, and one case simulates in well under a millisecond.
MAX_TRIP = 48
MAX_STRIDE = 8
MAX_OFFSET = 32
MAX_DISTANCE = 16
MAX_NESTED_TRIP = 8
INPUT_ELEMS = 512

STMT_STREAM = "stream"      # independent strided store
STMT_ACCUM = "accum"        # reduction through a register accumulator
STMT_SHARED = "shared"      # read-modify-write of one shared out-cell
STMT_CARRIED = "carried"    # reads a cell an earlier iteration wrote
STMT_BRANCH = "branch"      # data-dependent branch over the input
STMT_KINDS = (STMT_STREAM, STMT_ACCUM, STMT_SHARED, STMT_CARRIED,
              STMT_BRANCH)


@dataclass(frozen=True)
class StmtSpec:
    """One loop-body statement."""

    kind: str
    scale: int = 1          # multiplier in the value expression
    distance: int = 4       # shared slot index / carried-store distance

    def __post_init__(self):
        if self.kind not in STMT_KINDS:
            raise FuzzError(f"unknown statement kind {self.kind!r}")
        if not 0 <= self.distance <= MAX_DISTANCE:
            raise FuzzError(f"distance {self.distance} out of range")

    def render(self, idx: str, ivar: str) -> List[str]:
        if self.kind == STMT_STREAM:
            return [f"out[{idx}] = a[{idx}] * {self.scale} + {ivar};"]
        if self.kind == STMT_ACCUM:
            return [f"acc = acc + a[{idx}] * {self.scale};"]
        if self.kind == STMT_SHARED:
            slot = self.distance
            return [f"out[{slot}] = out[{slot}] + a[{idx}] + {self.scale};"]
        if self.kind == STMT_CARRIED:
            return [
                f"out[{idx} + {self.distance}] = "
                f"out[{idx}] + a[{idx}] * {self.scale};"
            ]
        # STMT_BRANCH
        return [
            f"if (a[{idx}] & 1 == 1) {{",
            f"    out[{idx}] = a[{idx}] * {self.scale} + 1;",
            "} else {",
            f"    out[{idx}] = b[{idx}] - {self.scale};",
            "}",
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "scale": self.scale,
            "distance": self.distance,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StmtSpec":
        return cls(
            kind=data["kind"],
            scale=int(data.get("scale", 1)),
            distance=int(data.get("distance", 4)),
        )


@dataclass(frozen=True)
class LoopSpec:
    """One (possibly nested) countable loop."""

    trip: int
    stride: int = 1
    offset: int = 0
    pragma: bool = True
    nested_trip: int = 0    # 0 = no inner loop
    stmts: Tuple[StmtSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not 0 <= self.trip <= MAX_TRIP:
            raise FuzzError(f"trip {self.trip} out of range")
        if not 1 <= self.stride <= MAX_STRIDE:
            raise FuzzError(f"stride {self.stride} out of range")
        if not 0 <= self.offset <= MAX_OFFSET:
            raise FuzzError(f"offset {self.offset} out of range")
        if not 0 <= self.nested_trip <= MAX_NESTED_TRIP:
            raise FuzzError(f"nested_trip {self.nested_trip} out of range")
        if not self.stmts:
            raise FuzzError("loop has no statements")
        if isinstance(self.stmts, list):
            object.__setattr__(self, "stmts", tuple(self.stmts))

    def render(self, index: int) -> List[str]:
        ivar = f"i{index}"
        lines: List[str] = []
        if self.pragma:
            lines.append("#pragma loopfrog")
        lines.append(
            f"for (var {ivar}: int = 0; {ivar} < {self.trip}; "
            f"{ivar} = {ivar} + 1) {{"
        )
        body_ivar = ivar
        if self.nested_trip:
            jvar = f"j{index}"
            lines.append(
                f"    for (var {jvar}: int = 0; {jvar} < "
                f"{self.nested_trip}; {jvar} = {jvar} + 1) {{"
            )
            idx = f"{ivar} * {self.stride} + {jvar} + {self.offset}"
            pad = "        "
        else:
            idx = f"{ivar} * {self.stride} + {self.offset}"
            pad = "    "
        for stmt in self.stmts:
            for line in stmt.render(idx, body_ivar):
                lines.append(pad + line)
        if self.nested_trip:
            lines.append("    }")
        lines.append("}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trip": self.trip,
            "stride": self.stride,
            "offset": self.offset,
            "pragma": self.pragma,
            "nested_trip": self.nested_trip,
            "stmts": [s.to_dict() for s in self.stmts],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LoopSpec":
        return cls(
            trip=int(data["trip"]),
            stride=int(data.get("stride", 1)),
            offset=int(data.get("offset", 0)),
            pragma=bool(data.get("pragma", True)),
            nested_trip=int(data.get("nested_trip", 0)),
            stmts=tuple(
                StmtSpec.from_dict(s) for s in data.get("stmts", [])
            ),
        )


@dataclass(frozen=True)
class ProgramSpec:
    """A whole fuzz program: loops plus the input-data seed."""

    loops: Tuple[LoopSpec, ...]
    input_seed: int = 0

    def __post_init__(self):
        if not self.loops:
            raise FuzzError("program has no loops")
        if isinstance(self.loops, list):
            object.__setattr__(self, "loops", tuple(self.loops))

    def render(self) -> str:
        """Frog source for this spec (deterministic)."""
        lines = [
            "fn main(a: ptr<int>, b: ptr<int>, out: ptr<int>) {",
            "    var acc: int = 0;",
        ]
        for index, loop in enumerate(self.loops):
            for line in loop.render(index):
                lines.append("    " + line)
        lines.append(f"    out[{ACC_SINK_INDEX}] = acc;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def fresh_input(self):
        """``(memory, regs)`` for one run — deterministic in input_seed."""
        from ..uarch.memory_state import SparseMemory

        rng = random.Random(self.input_seed)
        memory = SparseMemory()
        memory.store_int_array(
            A_BASE, [rng.randrange(1 << 16) for _ in range(INPUT_ELEMS)]
        )
        memory.store_int_array(
            B_BASE, [rng.randrange(1 << 16) for _ in range(INPUT_ELEMS)]
        )
        return memory, {"r1": A_BASE, "r2": B_BASE, "r3": OUT_BASE}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "input_seed": self.input_seed,
            "loops": [loop.to_dict() for loop in self.loops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgramSpec":
        try:
            loops = tuple(
                LoopSpec.from_dict(entry) for entry in data["loops"]
            )
            return cls(loops=loops, input_seed=int(data.get("input_seed", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FuzzError(f"malformed program spec: {exc}") from exc


def generate_program(rng: random.Random) -> ProgramSpec:
    """Draw a random base program (1-3 loops, 1-3 statements each)."""
    loops = []
    for _ in range(rng.randint(1, 3)):
        stmts = tuple(
            StmtSpec(
                kind=rng.choice(STMT_KINDS),
                scale=rng.choice([1, 2, 3, 5]),
                distance=rng.choice([1, 2, 4, 8]),
            )
            for _ in range(rng.randint(1, 3))
        )
        loops.append(
            LoopSpec(
                trip=rng.randint(2, 40),
                stride=rng.choice([1, 1, 2, 4, 8]),
                offset=rng.choice([0, 0, 1, 2, 8]),
                pragma=rng.random() < 0.85,
                nested_trip=rng.choice([0, 0, 0, 2, 4]),
                stmts=stmts,
            )
        )
    return ProgramSpec(loops=tuple(loops), input_seed=rng.randrange(1 << 30))
