"""The seed-pinned fuzzing session: generate, mutate, execute, minimize.

A session is fully determined by its :class:`FuzzConfig`: case ``i`` of a
session draws everything (base program, mutation count, mutator choices)
from a private ``random.Random`` derived from ``(seed, i)``, and the
minimizer is a greedy deterministic descent — so the same config replays
to byte-identical survivors and corpus files, which is the contract
``repro fuzz`` advertises and the regression corpus relies on.

Every candidate is compiled with the static dependence analysis attached,
run once on the functional executor (golden model) and once on the
LoopFrog core, then shown to the oracle registry
(:mod:`repro.fuzz.oracles`).  A case that fires an oracle is *minimized*:
structural simplifications first (drop loops, drop statements, remove
nesting), numeric shrinking second (trip, stride, offset, scale,
distance), each step kept only if the same oracle still fires.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler import CompileOptions, compile_frog
from ..errors import ReproError
from ..obs import metrics as _metrics
from ..uarch import LoopFrogCore
from ..uarch.executor import Executor
from .model import LoopSpec, ProgramSpec, StmtSpec, generate_program
from .mutators import apply_mutations
from .oracles import ORACLES, FuzzCase, evaluate_case

# Bounds one candidate's execution so a pathological mutant cannot hang
# the session (the model's size caps keep real cases far below this).
CASE_MAX_CYCLES = 2_000_000
CASE_MAX_INSTRUCTIONS = 2_000_000


@dataclass(frozen=True)
class FuzzConfig:
    """Session parameters (the reproducibility key)."""

    seed: int = 0
    budget: int = 50           # number of generated cases
    max_mutations: int = 3     # mutations applied per case (0..max)
    minimize_steps: int = 160  # execution cap per survivor minimization


@dataclass
class Survivor:
    """One minimized interesting program."""

    name: str
    oracle: str
    detail: str
    case_seed: int
    mutations: Tuple[str, ...]
    program: ProgramSpec

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "oracle": self.oracle,
            "detail": self.detail,
            "case_seed": self.case_seed,
            "mutations": list(self.mutations),
            "program": self.program.to_dict(),
        }


@dataclass
class FuzzReport:
    """Outcome of one session (the ``fuzz.session.*`` collection target)."""

    seed: int
    budget: int
    cases: int = 0
    executions: int = 0        # including minimization re-runs
    crashes: int = 0
    survivors: List[Survivor] = field(default_factory=list)
    oracle_counts: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def programs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.executions / self.wall_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "cases": self.cases,
            "executions": self.executions,
            "crashes": self.crashes,
            "oracle_counts": dict(sorted(self.oracle_counts.items())),
            "survivors": [s.to_dict() for s in self.survivors],
        }


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute_spec(spec: ProgramSpec) -> FuzzCase:
    """Compile + run one candidate on both reference and timing models.

    Raises :class:`~repro.errors.ReproError` on compile or runtime
    failure — the session records those as crashes.
    """
    source = spec.render()
    result = compile_frog(
        source, CompileOptions(static_analysis=True, name="fuzz")
    )

    memory, regs = spec.fresh_input()
    ex = Executor(result.program, memory)
    ex.regs.update(regs)
    ex.run(max_instructions=CASE_MAX_INSTRUCTIONS)
    exec_image = _image(ex.memory)

    memory, regs = spec.fresh_input()
    sim = LoopFrogCore().run(
        result.program, memory, regs, max_cycles=CASE_MAX_CYCLES
    )
    return FuzzCase(
        spec=spec,
        source=source,
        compile_result=result,
        exec_image=exec_image,
        frog_image=_image(sim.memory),
        stats=sim.stats,
    )


def _image(memory) -> Dict[int, int]:
    return {
        addr: memory.load_byte(addr) for addr in memory.written_addresses()
    }


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------


def _shrink_candidates(spec: ProgramSpec) -> List[ProgramSpec]:
    """Strictly-simpler neighbours, structural first, deterministic order."""
    out: List[ProgramSpec] = []

    def with_loop(index: int, loop: LoopSpec) -> ProgramSpec:
        loops = list(spec.loops)
        loops[index] = loop
        return ProgramSpec(loops=tuple(loops), input_seed=spec.input_seed)

    def loop_with(loop: LoopSpec, **kwargs) -> LoopSpec:
        fields = {
            "trip": loop.trip, "stride": loop.stride,
            "offset": loop.offset, "pragma": loop.pragma,
            "nested_trip": loop.nested_trip, "stmts": loop.stmts,
        }
        fields.update(kwargs)
        return LoopSpec(**fields)

    # Drop whole loops.
    if len(spec.loops) > 1:
        for i in range(len(spec.loops)):
            loops = spec.loops[:i] + spec.loops[i + 1:]
            out.append(ProgramSpec(loops=loops, input_seed=spec.input_seed))
    for i, loop in enumerate(spec.loops):
        # Drop statements.
        if len(loop.stmts) > 1:
            for k in range(len(loop.stmts)):
                stmts = loop.stmts[:k] + loop.stmts[k + 1:]
                out.append(with_loop(i, loop_with(loop, stmts=stmts)))
        # Remove nesting.
        if loop.nested_trip:
            out.append(with_loop(i, loop_with(loop, nested_trip=0)))
        # Shrink trip count.
        for trip in (0, 1, 2, 3, 5, 8):
            if trip < loop.trip:
                out.append(with_loop(i, loop_with(loop, trip=trip)))
        # Normalize stride / offset.
        if loop.stride > 1:
            out.append(with_loop(i, loop_with(loop, stride=1)))
        if loop.offset > 0:
            out.append(with_loop(i, loop_with(loop, offset=0)))
        # Shrink statement constants.
        for k, stmt in enumerate(loop.stmts):
            simpler = []
            if stmt.scale != 1:
                simpler.append(StmtSpec(kind=stmt.kind, scale=1,
                                        distance=stmt.distance))
            if stmt.distance > 1:
                simpler.append(StmtSpec(kind=stmt.kind, scale=stmt.scale,
                                        distance=1))
            for new in simpler:
                stmts = loop.stmts[:k] + (new,) + loop.stmts[k + 1:]
                out.append(with_loop(i, loop_with(loop, stmts=stmts)))
    return out


def minimize(
    spec: ProgramSpec,
    still_interesting: Callable[[ProgramSpec], Optional[str]],
    max_steps: int = 160,
) -> Tuple[ProgramSpec, str, int]:
    """Greedy descent: accept the first simpler neighbour that still
    fires, restart from it, stop at a fixpoint or the execution cap.

    Returns ``(minimized_spec, final_detail, executions_used)``.
    """
    detail = still_interesting(spec)
    if detail is None:
        raise ValueError("minimize() called on an uninteresting spec")
    executions = 0
    progress = True
    while progress and executions < max_steps:
        progress = False
        for candidate in _shrink_candidates(spec):
            if executions >= max_steps:
                break
            executions += 1
            new_detail = still_interesting(candidate)
            if new_detail is not None:
                spec = candidate
                detail = new_detail
                progress = True
                break
    return spec, detail, executions


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


def _case_rng(seed: int, index: int) -> random.Random:
    # Stable across platforms/sessions: a pure integer mix, no hash().
    return random.Random((seed * 1_000_003 + index) & 0xFFFF_FFFF_FFFF)


def survivor_name(oracle: str, program: ProgramSpec) -> str:
    payload = json.dumps(
        [oracle, program.to_dict()], sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:8]
    return f"{oracle}_{digest}"


def run_fuzz(
    config: FuzzConfig,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one deterministic fuzzing session."""
    report = FuzzReport(seed=config.seed, budget=config.budget)
    seen: Dict[str, Survivor] = {}
    start = time.perf_counter()

    for index in range(config.budget):
        rng = _case_rng(config.seed, index)
        base = generate_program(rng)
        count = rng.randint(0, config.max_mutations)
        spec, mutations = apply_mutations(base, rng, count)
        report.cases += 1
        report.executions += 1
        try:
            case = execute_spec(spec)
        except ReproError as exc:
            report.crashes += 1
            report.oracle_counts["crash"] = (
                report.oracle_counts.get("crash", 0) + 1
            )
            if log:
                log(f"case {index}: crash: {exc}")
            continue

        outcomes = evaluate_case(case)
        for outcome in outcomes:
            report.oracle_counts[outcome.oracle] = (
                report.oracle_counts.get(outcome.oracle, 0) + 1
            )
        if not outcomes:
            continue
        # File under the highest-severity firing oracle.
        oracle = outcomes[0].oracle
        oracle_fn = ORACLES[oracle]

        def still_interesting(candidate: ProgramSpec) -> Optional[str]:
            try:
                return oracle_fn(execute_spec(candidate))
            except ReproError:
                return None

        minimized, detail, used = minimize(
            spec, still_interesting, max_steps=config.minimize_steps
        )
        report.executions += used
        name = survivor_name(oracle, minimized)
        if name not in seen:
            survivor = Survivor(
                name=name,
                oracle=oracle,
                detail=detail,
                case_seed=index,
                mutations=tuple(mutations),
                program=minimized,
            )
            seen[name] = survivor
            report.survivors.append(survivor)
            if log:
                log(f"case {index}: {oracle}: {detail} -> {name}")

    report.wall_seconds = time.perf_counter() - start
    return report


# ---------------------------------------------------------------------------
# Metrics (docs/observability.md section `fuzz`)
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("fuzz.session.cases", _metrics.COUNTER, "fuzz",
                        "Generated candidate programs in one session",
                        unit="programs", source="cases"),
    _metrics.MetricSpec("fuzz.session.executions", _metrics.COUNTER, "fuzz",
                        "Programs executed, including minimization re-runs",
                        unit="programs", source="executions"),
    _metrics.MetricSpec("fuzz.session.crashes", _metrics.COUNTER, "fuzz",
                        "Candidates that failed to compile or run",
                        unit="programs", source="crashes"),
    _metrics.MetricSpec("fuzz.session.survivors", _metrics.COUNTER, "fuzz",
                        "Unique minimized survivors found",
                        unit="programs",
                        derive=lambda r: len(r.survivors)),
    _metrics.MetricSpec("fuzz.session.oracle_hits", _metrics.HISTOGRAM,
                        "fuzz",
                        "Oracle firings by oracle name (pre-dedup)",
                        unit="cases", source="oracle_counts"),
    _metrics.MetricSpec("fuzz.session.programs_per_second", _metrics.GAUGE,
                        "fuzz",
                        "Mutated+executed program throughput of the session",
                        unit="programs/s",
                        derive=lambda r: r.programs_per_second),
)
