"""Named, deterministic mutation operators over :class:`ProgramSpec`.

Each mutator takes ``(spec, rng)`` and returns a new spec (the tree is
immutable).  All randomness flows through the passed ``random.Random``,
so a (seed, budget) pair replays to byte-identical candidates.  The
registry is ordered and name-keyed: sessions draw mutators by index from
their private rng, and corpus entries can name which mutations produced
them.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from .model import (
    MAX_NESTED_TRIP,
    MAX_OFFSET,
    MAX_TRIP,
    STMT_CARRIED,
    STMT_KINDS,
    STMT_SHARED,
    LoopSpec,
    ProgramSpec,
    StmtSpec,
)

Mutator = Callable[[ProgramSpec, random.Random], ProgramSpec]


def _replace_loop(spec: ProgramSpec, index: int,
                  loop: LoopSpec) -> ProgramSpec:
    loops = list(spec.loops)
    loops[index] = loop
    return ProgramSpec(loops=tuple(loops), input_seed=spec.input_seed)


def _pick_loop(spec: ProgramSpec, rng: random.Random) -> int:
    return rng.randrange(len(spec.loops))


def _with(loop: LoopSpec, **kwargs) -> LoopSpec:
    fields = {
        "trip": loop.trip, "stride": loop.stride, "offset": loop.offset,
        "pragma": loop.pragma, "nested_trip": loop.nested_trip,
        "stmts": loop.stmts,
    }
    fields.update(kwargs)
    return LoopSpec(**fields)


def perturb_stride(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Stride perturbation: exercises conflict-granule aliasing."""
    i = _pick_loop(spec, rng)
    loop = spec.loops[i]
    choices = [s for s in (1, 2, 3, 4, 5, 8) if s != loop.stride]
    return _replace_loop(spec, i, _with(loop, stride=rng.choice(choices)))


def perturb_offset(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Offset perturbation: shifts which granules iterations touch."""
    i = _pick_loop(spec, rng)
    loop = spec.loops[i]
    return _replace_loop(
        spec, i, _with(loop, offset=rng.randrange(MAX_OFFSET + 1))
    )


def toggle_pragma(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Hint placement: annotate or un-annotate one loop."""
    i = _pick_loop(spec, rng)
    loop = spec.loops[i]
    return _replace_loop(spec, i, _with(loop, pragma=not loop.pragma))


def inject_conflict(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Conflict injection: add a shared-cell RMW or carried dependence."""
    i = _pick_loop(spec, rng)
    loop = spec.loops[i]
    stmt = StmtSpec(
        kind=rng.choice([STMT_SHARED, STMT_CARRIED]),
        scale=rng.choice([1, 2, 3]),
        distance=rng.choice([1, 2, 4, 8]),
    )
    return _replace_loop(spec, i, _with(loop, stmts=loop.stmts + (stmt,)))


def drop_stmt(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Remove one statement (loops keep at least one)."""
    candidates = [
        i for i, loop in enumerate(spec.loops) if len(loop.stmts) > 1
    ]
    if not candidates:
        return spec
    i = rng.choice(candidates)
    loop = spec.loops[i]
    k = rng.randrange(len(loop.stmts))
    stmts = loop.stmts[:k] + loop.stmts[k + 1:]
    return _replace_loop(spec, i, _with(loop, stmts=stmts))


def mutate_trip(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Trip-count mutation, biased to the interesting extremes (0, 1,
    packing-relevant smalls, and the cap)."""
    i = _pick_loop(spec, rng)
    loop = spec.loops[i]
    choices = [t for t in (0, 1, 2, 3, 5, 8, 13, 21, 34, MAX_TRIP)
               if t != loop.trip]
    return _replace_loop(spec, i, _with(loop, trip=rng.choice(choices)))


def nest_loop(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Nesting mutation: add, resize or remove an inner loop."""
    i = _pick_loop(spec, rng)
    loop = spec.loops[i]
    choices = [n for n in (0, 2, 4, MAX_NESTED_TRIP)
               if n != loop.nested_trip]
    return _replace_loop(
        spec, i, _with(loop, nested_trip=rng.choice(choices))
    )


def mutate_stmt_kind(spec: ProgramSpec, rng: random.Random) -> ProgramSpec:
    """Swap one statement's kind, keeping its scale/distance."""
    i = _pick_loop(spec, rng)
    loop = spec.loops[i]
    k = rng.randrange(len(loop.stmts))
    old = loop.stmts[k]
    kind = rng.choice([kd for kd in STMT_KINDS if kd != old.kind])
    stmts = list(loop.stmts)
    stmts[k] = StmtSpec(kind=kind, scale=old.scale, distance=old.distance)
    return _replace_loop(spec, i, _with(loop, stmts=tuple(stmts)))


MUTATORS: Dict[str, Mutator] = {
    "perturb_stride": perturb_stride,
    "perturb_offset": perturb_offset,
    "toggle_pragma": toggle_pragma,
    "inject_conflict": inject_conflict,
    "drop_stmt": drop_stmt,
    "mutate_trip": mutate_trip,
    "nest_loop": nest_loop,
    "mutate_stmt_kind": mutate_stmt_kind,
}

MUTATOR_NAMES: Tuple[str, ...] = tuple(MUTATORS)


def apply_mutations(
    spec: ProgramSpec, rng: random.Random, count: int
) -> Tuple[ProgramSpec, List[str]]:
    """Apply ``count`` randomly-chosen mutators; returns (spec, names)."""
    names: List[str] = []
    for _ in range(count):
        name = MUTATOR_NAMES[rng.randrange(len(MUTATOR_NAMES))]
        spec = MUTATORS[name](spec, rng)
        names.append(name)
    return spec, names
