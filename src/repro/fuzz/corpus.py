"""The fuzz corpus: minimized survivors frozen as permanent workloads.

Each survivor is one YAML file (deterministic sorted-key emission via
:mod:`repro.workloads.specyaml`) naming the oracle that flagged it, the
session case that found it, and the full minimized program tree.  The
regression suite (``tests/test_fuzz_regressions.py``) loads the directory
and replays every entry as a named :class:`~repro.workloads.base.Workload`
on both engine paths — so a fuzzing run can only ever *grow* the
regression suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import FuzzError, SpecError
from ..workloads import specyaml
from ..workloads.base import Workload
from .engine import Survivor
from .model import (
    A_BASE,
    B_BASE,
    INPUT_ELEMS,
    OUT_BASE,
    ProgramSpec,
)

# Default checked-in corpus location, relative to the repo root.
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")


# Replay expectations (the ``expect`` corpus key):
#
# * ``oracle-fires`` (default) — the recorded oracle must still fire; the
#   entry pins an *open* engine defect or a deliberate severity signal.
# * ``states-match`` — the entry pinned a since-fixed defect: the oracle
#   must NOT fire any more, the LoopFrog core must commit exactly the
#   functional executor's memory, and the program must still *exercise*
#   the fixed path (see :func:`fixed_path_trigger`), so a regression
#   flips the replay red again.
EXPECT_ORACLE_FIRES = "oracle-fires"
EXPECT_STATES_MATCH = "states-match"
_EXPECTATIONS = (EXPECT_ORACLE_FIRES, EXPECT_STATES_MATCH)


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus file, parsed."""

    name: str
    oracle: str
    detail: str
    case_seed: int
    mutations: Tuple[str, ...]
    program: ProgramSpec
    expect: str = EXPECT_ORACLE_FIRES

    @classmethod
    def from_dict(cls, data: object, path: str = "") -> "CorpusEntry":
        where = f"{path}: " if path else ""
        if not isinstance(data, dict):
            raise FuzzError(f"{where}corpus entry must be a mapping")
        for key in ("name", "oracle", "program"):
            if key not in data:
                raise FuzzError(f"{where}corpus entry needs a {key!r} key")
        try:
            program = ProgramSpec.from_dict(data["program"])
        except FuzzError as exc:
            raise FuzzError(f"{where}{exc}") from exc
        expect = str(data.get("expect", EXPECT_ORACLE_FIRES))
        if expect not in _EXPECTATIONS:
            raise FuzzError(
                f"{where}unknown expect {expect!r} "
                f"(choose from {', '.join(_EXPECTATIONS)})"
            )
        return cls(
            name=str(data["name"]),
            oracle=str(data["oracle"]),
            detail=str(data.get("detail", "")),
            case_seed=int(data.get("case_seed", 0)),
            mutations=tuple(data.get("mutations") or ()),
            program=program,
            expect=expect,
        )


def write_corpus(survivors: List[Survivor], directory: str) -> List[str]:
    """Write one deterministic YAML file per survivor; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for survivor in survivors:
        path = os.path.join(directory, f"{survivor.name}.yaml")
        with open(path, "w") as fh:
            fh.write(specyaml.dump(survivor.to_dict()))
        paths.append(path)
    return paths


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Parse every ``*.yaml`` of a corpus directory, sorted by file name."""
    if not os.path.isdir(directory):
        raise FuzzError(f"corpus directory {directory!r} does not exist")
    names = sorted(
        n for n in os.listdir(directory) if n.endswith(".yaml")
    )
    if not names:
        raise FuzzError(f"corpus directory {directory!r} has no .yaml entries")
    entries = []
    for file_name in names:
        path = os.path.join(directory, file_name)
        with open(path) as fh:
            text = fh.read()
        try:
            data = specyaml.load(text)
        except SpecError as exc:
            raise FuzzError(f"{path}: {exc}") from exc
        entries.append(CorpusEntry.from_dict(data, path=path))
    return entries


def entry_workload(entry: CorpusEntry) -> Workload:
    """Freeze a corpus entry as a named workload.

    The workload seed is the program's input seed and the setup draws in
    the same order as :meth:`ProgramSpec.fresh_input`, so the ordinary
    ``Workload.fresh_input`` path reproduces the exact fuzz-time input.
    """
    spec = entry.program

    def setup(mem, rng):
        mem.store_int_array(
            A_BASE, [rng.randrange(1 << 16) for _ in range(INPUT_ELEMS)]
        )
        mem.store_int_array(
            B_BASE, [rng.randrange(1 << 16) for _ in range(INPUT_ELEMS)]
        )
        return {"r1": A_BASE, "r2": B_BASE, "r3": OUT_BASE}

    return Workload(
        name=entry.name,
        source=spec.render(),
        setup=setup,
        description=f"fuzz survivor ({entry.oracle}): {entry.detail}",
        seed=spec.input_seed,
        max_cycles=4_000_000,
    )


def corpus_workloads(directory: Optional[str] = None) -> List[Workload]:
    """Every corpus entry of ``directory`` as a replayable workload."""
    entries = load_corpus(directory or DEFAULT_CORPUS_DIR)
    return [entry_workload(entry) for entry in entries]


def fixed_path_trigger(case) -> Optional[str]:
    """Does a case exercise the since-fixed cross-region packing path?

    The schema-v2 fix cancels pending packed-iteration skips when an
    epoch exits its region at SYNC; a ``states-match`` survivor must
    still reach that cancellation (and commit clean state), or it has
    stopped covering the defect it pins.  Returns a detail string when
    the trigger holds, like an oracle, so the minimizer can descend on
    it; ``None`` otherwise.
    """
    if case.frog_image != case.exec_image:
        return None
    cancelled = case.stats.packing_skips_cancelled
    if cancelled <= 0:
        return None
    return (
        f"{cancelled} pending packed skip(s) cancelled at region exit; "
        f"committed state matches the functional executor"
    )


def replay_entry(entry: CorpusEntry) -> Tuple[bool, str]:
    """Re-execute a corpus entry on both engine paths.

    The contract depends on the entry's expectation.  ``oracle-fires``:
    the oracle that flagged the entry must fire again on the fast *and*
    the reference engine.  ``states-match``: the oracle must fire on
    neither, the LoopFrog core must commit the functional executor's
    exact memory, and :func:`fixed_path_trigger` must still hold.  In
    both cases the two engine paths must agree on every statistic (the
    bit-identical parity invariant).  Returns ``(ok, message)``.
    """
    import dataclasses

    from ..errors import ReproError
    from ..uarch.core import set_engine_reference_mode
    from .engine import execute_spec
    from .oracles import ORACLES

    oracle = ORACLES.get(entry.oracle)
    if oracle is None:
        return False, f"unknown oracle {entry.oracle!r}"
    try:
        set_engine_reference_mode(False)
        try:
            fast = execute_spec(entry.program)
        finally:
            set_engine_reference_mode(None)
        set_engine_reference_mode(True)
        try:
            reference = execute_spec(entry.program)
        finally:
            set_engine_reference_mode(None)
    except ReproError as exc:
        return False, f"crashed: {exc}"
    if dataclasses.asdict(fast.stats) != dataclasses.asdict(reference.stats):
        return False, "fast/reference engine stats diverged"
    if fast.frog_image != reference.frog_image:
        return False, "fast/reference engine memory diverged"
    if entry.expect == EXPECT_STATES_MATCH:
        if oracle(fast) is not None:
            return False, f"{entry.oracle} fires again (fix regressed)"
        detail = fixed_path_trigger(fast)
        if detail is None:
            if fast.frog_image != fast.exec_image:
                return False, "committed state diverged (fix regressed)"
            return False, "entry no longer exercises the fixed path"
        return True, detail
    fast_detail = oracle(fast)
    if fast_detail is None:
        return False, "oracle no longer fires on the fast engine"
    if oracle(reference) is None:
        return False, "oracle no longer fires on the reference engine"
    return True, fast_detail
