"""Command-line interface: ``python -m repro <command>``.

Commands
    compile FILE        compile a Frog source file and print the listing
                        and hint-insertion report
    lint FILE...        static loop-carried dependence diagnostics per
                        pragma loop (``--json`` for machine-readable
                        output; ``--validate`` compares verdicts against
                        observed conflict squashes over the suites)
    run FILE            compile and simulate a Frog file on the baseline
                        and LoopFrog cores, printing the comparison
    suite NAME          run a SPEC stand-in suite (figure-6 style output)
    exp ACTION          the declarative experiment registry
                        (docs/experiments.md): ``exp list`` shows every
                        registered spec, ``exp run NAME...`` executes a
                        subset, ``exp all`` regenerates everything in one
                        invocation, simulating each distinct (workload,
                        config) cell at most once; ``--json`` emits the
                        machine-readable payload and ``--out DIR`` writes
                        per-experiment artifacts plus a manifest
    experiment ID       regenerate one paper artefact (fig1..fig10,
                        table2, table3, packing, assoc, area, ...);
                        legacy alias for ``exp run ID``
    sample WORKLOAD     SimPoint-style sampled simulation of one workload
                        (docs/sampling.md); ``--verify TOL`` also runs the
                        full detailed simulation and fails if the sampled
                        CPI estimate is off by more than TOL
    workloads           list available benchmarks and their phases
    results CMD         persistent result store maintenance (stats, gc)
    trace FILE          compile + simulate a Frog file with structured
                        tracing enabled and summarize the timeline; given
                        an existing ``.jsonl`` timeline, summarize it

``suite``, ``experiment`` and ``sample`` accept ``--jobs N`` (parallel
simulation across N processes; default: all cores), ``--no-store`` (skip
the persistent result cache) and ``--store-dir DIR`` (cache location,
default ``.repro-results/``).  ``suite`` additionally accepts
``--sampled`` to estimate every phase with sampled simulation instead of
running it in full.

The global ``--engine-mode MODE`` option (before the subcommand) pins
the detailed engine's execution mode — ``reference``, ``fast`` or
``epoch-parallel`` (the default).  All modes are bit-identical in cycles
and statistics (docs/microarchitecture.md); the flag only trades
simulation speed for debuggability.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from .analysis import format_bars
from .compiler import CompileOptions, compile_frog
from .errors import ReproError
from .uarch import BaselineCore, LoopFrogCore, SparseMemory


def _parse_regs(text: Optional[str]) -> Dict[str, float]:
    """Parse ``r1=100,f1=2.5`` into an initial-register dict."""
    regs: Dict[str, float] = {}
    if not text:
        return regs
    for pair in text.split(","):
        name, _, value = pair.partition("=")
        name = name.strip()
        if not name or not value:
            raise ReproError(f"bad register assignment {pair!r}")
        regs[name] = float(value) if name.startswith("f") else int(value, 0)
    return regs


def cmd_compile(args: argparse.Namespace) -> int:
    with open(args.file) as fh:
        source = fh.read()
    options = CompileOptions(insert_hints=not args.no_hints,
                             mark_all_loops=args.mark_all_loops)
    result = compile_frog(source, options)
    if result.hint_reports:
        print("hint insertion:")
        for report in result.hint_reports:
            if report.annotated:
                print(f"  {report.header}: annotated (region {report.region})")
            else:
                print(f"  {report.header}: rejected — {report.message}")
        print()
    if args.ir:
        print(result.ir)
        print()
    print(result.program.disassemble())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis.lint import (
        lint_source,
        render_lint,
        render_validation,
        validate_suites,
    )

    if args.validate:
        _apply_runner_options(args)
        suites = args.suite.split(",") if args.suite else None
        report = validate_suites(suites=suites)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(render_validation(report))
        return 1 if report.soundness_violations else 0

    if not args.files:
        raise ReproError("lint needs Frog files (or --validate)")
    payload = []
    for path in args.files:
        with open(path) as fh:
            source = fh.read()
        lint = lint_source(
            source, path=path, entry=args.entry,
            granule_bytes=args.granule,
        )
        if args.json:
            payload.append(lint.to_dict())
        else:
            print(render_lint(lint))
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    with open(args.file) as fh:
        source = fh.read()
    result = compile_frog(source)
    regs = _parse_regs(args.regs)

    def simulate(core):
        return core.run(result.program, SparseMemory(), dict(regs),
                        max_cycles=args.max_cycles)

    base = simulate(BaselineCore())
    print("baseline:")
    print("  " + base.stats.summary().replace("\n", "\n  "))
    if not args.baseline_only:
        frog = simulate(LoopFrogCore())
        print("LoopFrog:")
        print("  " + frog.stats.summary().replace("\n", "\n  "))
        print(f"speedup: {base.stats.cycles / frog.stats.cycles:.2f}x")
    return 0


def _check_store_dir(store_dir: Optional[str]) -> None:
    """Reject a store path that collides with an existing non-directory."""
    if store_dir and os.path.exists(store_dir) and not os.path.isdir(store_dir):
        raise ReproError(
            f"store dir {store_dir!r} exists and is not a directory"
        )


def _apply_runner_options(args: argparse.Namespace) -> None:
    """Translate --jobs/--no-store/--store-dir into runner/store defaults.

    Setting module-wide defaults (rather than threading parameters) means
    the experiment harnesses — which call ``run_suite`` internally —
    transparently pick up the requested parallelism and store.
    """
    from . import experiments
    from .results import ResultStore, set_default_store

    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 0:
        raise ReproError(
            f"--jobs must be >= 0 (0 means all cores), got {jobs}"
        )
    if getattr(args, "no_store", False):
        set_default_store(None)
    elif getattr(args, "store_dir", None):
        _check_store_dir(args.store_dir)
        set_default_store(ResultStore(args.store_dir))
    experiments.configure(jobs=jobs if jobs is not None else os.cpu_count())


def cmd_suite(args: argparse.Namespace) -> int:
    from .experiments import run_suite, suite_geomean
    from .workloads import available_suites

    _apply_runner_options(args)
    name = args.name
    if args.spec:
        from .workloads.spec import SuiteSpec, load_spec_file, register_spec_suite

        document = load_spec_file(args.spec)
        if not isinstance(document, SuiteSpec):
            raise ReproError(
                f"{args.spec}: --spec needs a suite document "
                f"('suite:' + 'benchmarks:'), not bare workload specs"
            )
        register_spec_suite(document)
        name = name or document.name
    if not name:
        raise ReproError("suite needs a name (or --spec FILE)")
    if name not in available_suites():
        raise ReproError(
            f"unknown suite {name!r}; choose from: "
            f"{', '.join(available_suites())}"
        )
    runs = run_suite(name, only=args.only.split(",") if args.only else None,
                     sampling=True if args.sampled else None)
    items = [(r.name, r.speedup_percent)
             for r in sorted(runs, key=lambda r: -r.speedup)]
    geomean = (suite_geomean(runs) - 1) * 100
    mode = " (sampled)" if args.sampled else ""
    print(format_bars(items, title=f"{name}: whole-program speedup"
                                   f"{mode} (geomean {geomean:+.1f}%)"))
    return 0


def cmd_sample(args: argparse.Namespace) -> int:
    from .experiments.runner import run_workload
    from .sampling.runner import SamplingConfig, run_workload_sampled
    from .uarch.config import default_machine
    from .workloads import get_workload

    _apply_runner_options(args)
    workload = get_workload(args.workload)
    config = SamplingConfig(
        interval_length=args.interval_length,
        max_clusters=args.max_clusters,
        seed=args.seed,
    )
    machine = default_machine()
    result = run_workload_sampled(workload, machine, config, jobs=args.jobs)
    cached = " (cached)" if result.cached else ""
    print(f"workload:            {workload.name}{cached}")
    print(f"total instructions:  {result.total_instructions:,}")
    print(f"intervals:           {result.num_intervals} "
          f"x {result.interval_length:,} instructions")
    print(f"clusters:            {result.num_clusters}")
    print(f"detailed simulation: {result.detailed_instructions:,} "
          f"instructions ({result.detailed_fraction:.1%} of total)")
    print(f"fast-forward rate:   "
          f"{result.ff_instructions_per_second:,.0f} instr/s")
    print(f"estimated CPI:       {result.estimated_cpi:.4f} "
          f"± {result.error_bound:.2%} (95% CI)")
    print(f"estimated cycles:    {result.estimated_cycles:,}")
    if args.verify is not None:
        full = run_workload(workload, machine)
        full_cpi = full.cycles / max(1, full.arch_instructions)
        err = (result.estimated_cpi - full_cpi) / full_cpi if full_cpi else 0.0
        print(f"full-detail CPI:     {full_cpi:.4f}")
        print(f"CPI error:           {err:+.2%} "
              f"(tolerance ±{args.verify:.2%})")
        if abs(err) > args.verify:
            print("verification FAILED", file=sys.stderr)
            return 1
        print("verification passed")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Legacy single-artefact command; ``exp run``/``exp all`` supersede it."""
    from .experiments import registry

    known = registry.names()
    ids = known if args.id == "all" else [args.id]
    for exp_id in ids:
        if exp_id not in known:
            print(f"unknown experiment {exp_id!r}; choose from: "
                  f"{', '.join(known)} or 'all'", file=sys.stderr)
            return 2
    _apply_runner_options(args)
    for exp_id in ids:
        print(registry.run_experiment(exp_id).render())
        print()
    return 0


def cmd_exp(args: argparse.Namespace) -> int:
    import json

    from .experiments import registry
    from .experiments.spec import global_counters, reset_counters

    if args.action == "list":
        if args.json:
            print(json.dumps([
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "title": spec.title,
                    "suites": list(spec.suites),
                    "variants": [v.label for v in spec.variants],
                    "description": spec.description,
                }
                for spec in registry.specs()
            ], indent=2))
            return 0
        for spec in registry.specs():
            axes = f"{len(spec.suites)} suite(s) x {len(spec.variants)} variant(s)"
            print(f"{spec.name:12s} {spec.kind:9s} {axes:26s} {spec.title}")
        return 0

    _apply_runner_options(args)
    reset_counters()
    names_to_run = registry.names() if args.action == "all" else args.names
    runs = registry.run_all(
        names_to_run,
        only=args.only.split(",") if args.only else None,
        sampling=True if args.sampled else None,
    )
    if args.out:
        manifest = registry.write_artifacts(runs, args.out)
        print(f"wrote {len(runs)} experiment(s) to {args.out} "
              f"(manifest: {manifest})", file=sys.stderr)
    if args.json:
        payload = [run.to_json() for run in runs]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2, sort_keys=True))
    else:
        for run in runs:
            print(run.render())
            print()
        cells = global_counters().to_dict()
        print(f"cells: {cells['total']} total, {cells['cached']} cached, "
              f"{cells['simulated']} simulated")
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    from .results import DEFAULT_STORE_DIR, ResultStore

    _check_store_dir(args.store_dir)
    store = ResultStore(args.store_dir or DEFAULT_STORE_DIR)
    if args.action == "stats":
        summary = store.stats()
        print(f"store:    {store.root}")
        print(f"records:  {summary.records}")
        print(f"bytes:    {summary.total_bytes}")
        print(f"corrupt:  {summary.corrupt}")
        for schema, count in sorted(summary.by_schema.items()):
            marker = " (current)" if schema == store.schema else " (stale)"
            print(f"schema {schema}: {count}{marker}")
    else:  # gc
        removed = store.gc(purge=args.purge)
        what = "all records" if args.purge else "stale/corrupt records"
        print(f"removed {removed} {what} from {store.root}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs.metrics import default_registry, format_snapshot
    from .obs.tracing import read_jsonl, summarize_records, trace_scope

    if args.file.endswith(".jsonl"):
        print(summarize_records(read_jsonl(args.file)))
        return 0

    with open(args.file) as fh:
        source = fh.read()
    regs = _parse_regs(args.regs)
    with trace_scope() as tracer:
        result = compile_frog(source)
        core = BaselineCore() if args.baseline else LoopFrogCore()
        sim = core.run(result.program, SparseMemory(), dict(regs),
                       max_cycles=args.max_cycles)
    if args.out:
        count = tracer.write_jsonl(args.out)
        print(f"wrote {count} records to {args.out}")
        print()
    print(tracer.summary())
    if args.metrics:
        print()
        print("metrics:")
        print(format_snapshot(default_registry().collect(sim.stats, "uarch")))
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    from .workloads import available_suites, suite

    if args.action == "gen":
        return _cmd_workloads_gen(args)

    for suite_name in available_suites():
        print(f"{suite_name}:")
        for bench in suite(suite_name):
            flag = "profitable" if bench.profitable else "no-speedup"
            phases = ", ".join(
                f"{w.name} (w={weight:.2f})" for w, weight in bench.phases
            )
            print(f"  {bench.name:14s} [{flag:10s}] {phases}")
        print()
    return 0


def _cmd_workloads_gen(args: argparse.Namespace) -> int:
    """``repro workloads gen SPEC``: materialize spec-defined workloads."""
    from .workloads.spec import SuiteSpec, build_suite, load_spec_file

    if not args.spec:
        raise ReproError("workloads gen needs a spec file argument")
    document = load_spec_file(args.spec)
    if isinstance(document, SuiteSpec):
        benchmarks = build_suite(document)
        print(f"suite {document.name}: {len(benchmarks)} benchmark(s)")
        workloads = []
        for bench in benchmarks:
            phases = ", ".join(
                f"{w.name} (w={weight:.2f})" for w, weight in bench.phases
            )
            print(f"  {bench.name:14s} {phases}")
            workloads.extend(w for w, _ in bench.phases)
    else:
        workloads = [spec.instantiate() for spec in document]
    print()
    for workload in workloads:
        program = workload.program
        hinted = sum(
            1 for r in workload.compiled().hint_reports if r.annotated
        )
        print(f"{workload.name:24s} seed={workload.seed:<8d} "
              f"{len(program.instructions):5d} instr, "
              f"{hinted} hinted loop(s)")
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for workload in workloads:
            path = os.path.join(args.out, f"{workload.name}.frog")
            with open(path, "w") as fh:
                fh.write(workload.source)
        print(f"\nwrote {len(workloads)} .frog file(s) to {args.out}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .fuzz import FuzzConfig, load_corpus, run_fuzz, write_corpus
    from .fuzz.corpus import DEFAULT_CORPUS_DIR, replay_entry

    corpus_dir = args.corpus or DEFAULT_CORPUS_DIR

    if args.replay:
        entries = load_corpus(corpus_dir)
        failures = 0
        for entry in entries:
            ok, message = replay_entry(entry)
            status = "ok" if ok else "FAIL"
            print(f"{status:4s} {entry.name}: {message}")
            if not ok:
                failures += 1
        print(f"replayed {len(entries)} corpus entr(ies), "
              f"{failures} failure(s)")
        return 1 if failures else 0

    if args.budget < 1:
        raise ReproError(f"--budget must be >= 1, got {args.budget}")
    if args.max_mutations < 0:
        raise ReproError(
            f"--max-mutations must be >= 0, got {args.max_mutations}"
        )
    config = FuzzConfig(
        seed=args.seed, budget=args.budget,
        max_mutations=args.max_mutations,
    )
    log = None if args.json else print
    report = run_fuzz(config, log=log)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        counts = ", ".join(
            f"{name}={count}"
            for name, count in sorted(report.oracle_counts.items())
        ) or "none"
        print(f"seed {report.seed}, budget {report.budget}: "
              f"{report.cases} case(s), {report.executions} execution(s), "
              f"{report.crashes} crash(es)")
        print(f"oracle hits: {counts}")
        print(f"survivors: {len(report.survivors)} unique "
              f"({report.programs_per_second:.0f} programs/s)")
    if args.write:
        paths = write_corpus(report.survivors, corpus_dir)
        print(f"wrote {len(paths)} corpus file(s) to {corpus_dir}",
              file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LoopFrog reproduction: compile, simulate, reproduce.",
    )
    from .uarch.core import ENGINE_MODES

    parser.add_argument(
        "--engine-mode", choices=ENGINE_MODES, metavar="MODE",
        help="detailed-engine execution mode: "
             f"{'|'.join(ENGINE_MODES)} (default: epoch-parallel; all "
             "modes are bit-identical, so this only affects speed; "
             "overrides REPRO_ENGINE_MODE)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a Frog file")
    p.add_argument("file")
    p.add_argument("--no-hints", action="store_true",
                   help="skip LoopFrog hint insertion")
    p.add_argument("--mark-all-loops", action="store_true",
                   help="annotate every loop regardless of pragmas")
    p.add_argument("--ir", action="store_true", help="also print the IR")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="simulate a Frog file on both cores")
    p.add_argument("file")
    p.add_argument("--regs", help="initial registers, e.g. r1=0x1000,r2=64")
    p.add_argument("--baseline-only", action="store_true")
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.set_defaults(func=cmd_run)

    def add_runner_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="simulate across N processes (default: all cores)")
        p.add_argument("--no-store", action="store_true",
                       help="do not read or write the persistent result store")
        p.add_argument("--store-dir", metavar="DIR",
                       help="result store location (default: .repro-results)")

    p = sub.add_parser(
        "lint",
        help="static loop-carried dependence diagnostics for Frog files",
    )
    p.add_argument("files", nargs="*",
                   help="Frog source files to analyse")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--entry", default="main",
                   help="entry function name (default: main)")
    p.add_argument("--granule", type=int, default=4, metavar="BYTES",
                   help="conflict-detector granule assumed by the "
                        "analysis (default: 4)")
    p.add_argument("--validate", action="store_true",
                   help="run the workload suites and compare static "
                        "verdicts against observed conflict squashes")
    p.add_argument("--suite",
                   help="with --validate: comma-separated suite names "
                        "(default: all)")
    add_runner_options(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("suite", help="run a SPEC stand-in or spec-file suite")
    p.add_argument("name", nargs="?",
                   help="built-in suite (spec2017, spec2006, longrun) or a "
                        "suite registered via --spec")
    p.add_argument("--spec", metavar="FILE",
                   help="register the suite defined in this spec file "
                        "(docs/workloads.md) before running")
    p.add_argument("--only", help="comma-separated benchmark names")
    p.add_argument("--sampled", action="store_true",
                   help="estimate phases with sampled simulation "
                        "(docs/sampling.md) instead of running them fully")
    add_runner_options(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "sample",
        help="sampled simulation of one workload (SimPoint-style)",
    )
    p.add_argument("workload", help="phase name, e.g. imagick_conv")
    p.add_argument("--interval-length", type=int, default=8000, metavar="N",
                   help="instructions per profiling interval (default 8000)")
    p.add_argument("--max-clusters", type=int, default=8, metavar="K",
                   help="maximum k-means clusters (default 8)")
    p.add_argument("--seed", type=int, default=42,
                   help="clustering seed (default 42)")
    p.add_argument("--verify", type=float, default=None, metavar="TOL",
                   help="also run the full detailed simulation and fail if "
                        "the relative CPI error exceeds TOL (e.g. 0.05)")
    add_runner_options(p)
    p.set_defaults(func=cmd_sample)

    p = sub.add_parser(
        "exp",
        help="declarative experiment registry (list, run, all)",
    )
    exp_sub = p.add_subparsers(dest="action", required=True)

    def add_exp_options(ep: argparse.ArgumentParser) -> None:
        ep.add_argument("--only", metavar="NAMES",
                        help="comma-separated benchmark names")
        ep.add_argument("--sampled", action="store_true",
                        help="estimate phases with sampled simulation")
        ep.add_argument("--json", action="store_true",
                        help="print the machine-readable payload instead "
                             "of rendered text")
        ep.add_argument("--out", metavar="DIR",
                        help="write per-experiment .txt/.json artifacts "
                             "plus manifest.json to DIR")
        add_runner_options(ep)

    ep = exp_sub.add_parser("list", help="list registered experiments")
    ep.add_argument("--json", action="store_true",
                    help="machine-readable listing")
    ep.set_defaults(func=cmd_exp)

    ep = exp_sub.add_parser("run", help="run selected experiments")
    ep.add_argument("names", nargs="+", metavar="NAME",
                    help="experiment names (see 'exp list')")
    add_exp_options(ep)
    ep.set_defaults(func=cmd_exp)

    ep = exp_sub.add_parser(
        "all", help="run every registered experiment in one invocation"
    )
    add_exp_options(ep)
    ep.set_defaults(func=cmd_exp)

    p = sub.add_parser(
        "experiment",
        help="regenerate a paper artefact (legacy alias for 'exp run')",
    )
    p.add_argument("id", help="an experiment name (see 'exp list'), or all")
    add_runner_options(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "workloads",
        help="list benchmarks and phases, or materialize a spec file",
    )
    p.add_argument("action", nargs="?", choices=["list", "gen"],
                   default="list",
                   help="'list' (default) or 'gen SPEC' to instantiate "
                        "workloads from a spec file (docs/workloads.md)")
    p.add_argument("spec", nargs="?", metavar="SPEC",
                   help="with gen: the spec .yaml file")
    p.add_argument("--out", metavar="DIR",
                   help="with gen: also write one .frog source per workload")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser(
        "fuzz",
        help="seed-pinned mutation fuzzing of generated Frog programs",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="session seed (default 0); the (seed, budget) pair "
                        "replays byte-identically")
    p.add_argument("--budget", type=int, default=50, metavar="N",
                   help="candidate programs to generate (default 50)")
    p.add_argument("--max-mutations", type=int, default=3, metavar="N",
                   help="mutations applied per candidate, 0..N (default 3)")
    p.add_argument("--corpus", metavar="DIR",
                   help="corpus directory (default tests/fuzz_corpus)")
    p.add_argument("--write", action="store_true",
                   help="write minimized survivors into the corpus")
    p.add_argument("--replay", action="store_true",
                   help="replay the corpus instead of fuzzing: every "
                        "entry's oracle must fire again on both engines")
    p.add_argument("--json", action="store_true",
                   help="machine-readable session report")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "trace",
        help="trace one run (or summarize an existing .jsonl timeline)",
    )
    p.add_argument("file",
                   help="Frog source file, or a .jsonl timeline to summarize")
    p.add_argument("--regs", help="initial registers, e.g. r1=0x1000,r2=64")
    p.add_argument("--baseline", action="store_true",
                   help="trace the baseline core instead of LoopFrog")
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--out", metavar="FILE",
                   help="write the JSON-lines timeline to FILE")
    p.add_argument("--metrics", action="store_true",
                   help="also print the metrics snapshot of the traced run")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("results", help="persistent result store maintenance")
    p.add_argument("action", choices=["stats", "gc"])
    p.add_argument("--store-dir", metavar="DIR",
                   help="result store location (default: .repro-results)")
    p.add_argument("--purge", action="store_true",
                   help="with gc: delete every record, not just stale ones")
    p.set_defaults(func=cmd_results)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "engine_mode", None):
        from .uarch.core import set_engine_mode

        set_engine_mode(args.engine_mode)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
