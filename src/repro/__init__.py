"""repro — a reproduction of *LoopFrog: In-Core Hint-Based Loop
Parallelization* (Erdős et al., MICRO 2025).

The package is organised as:

* :mod:`repro.isa` — the hint-extended ISA and assembler.
* :mod:`repro.lang` — the Frog mini-language frontend.
* :mod:`repro.compiler` — IR, loop analyses and the hint-insertion pass.
* :mod:`repro.uarch` — functional executor, baseline out-of-order core and
  the LoopFrog microarchitecture (threadlets, SSB, conflict detector,
  iteration packing).
* :mod:`repro.tls` — Multiscalar-like and STAMPede-like baselines (table 3).
* :mod:`repro.workloads` — SPEC-stand-in kernels and suites.
* :mod:`repro.analysis` — speedup math, gain categorisation, area model.
* :mod:`repro.experiments` — one module per paper figure/table.

Quickstart::

    from repro import compile_frog, LoopFrogCore, BaselineCore
    from repro.workloads import get_workload

    wl = get_workload("imagick_2017")
    base = BaselineCore().run(wl.program, wl.memory())
    frog = LoopFrogCore().run(wl.program, wl.memory())
    print(base.cycles / frog.cycles)
"""

from . import errors
from .isa import Instruction, Opcode, Program, assemble

__version__ = "1.0.0"

__all__ = [
    "errors",
    "Instruction",
    "Opcode",
    "Program",
    "assemble",
    "__version__",
]


def __getattr__(name):
    # Lazy re-exports keep `import repro` cheap while exposing the main API.
    if name in ("compile_frog", "CompileOptions"):
        from .compiler import compile_frog, CompileOptions

        return {"compile_frog": compile_frog, "CompileOptions": CompileOptions}[name]
    if name in ("BaselineCore", "LoopFrogCore", "CoreConfig", "LoopFrogConfig"):
        from .uarch import core as _core
        from .uarch import loopfrog_core as _lf
        from .uarch import config as _cfg

        table = {
            "BaselineCore": _core.BaselineCore,
            "LoopFrogCore": _lf.LoopFrogCore,
            "CoreConfig": _cfg.CoreConfig,
            "LoopFrogConfig": _cfg.LoopFrogConfig,
        }
        return table[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
