"""Table 3: LoopFrog vs classic TLS/SpMT schemes.

The paper compares against STAMPede (4 cores, private-cache TLS, 2005) and
Multiscalar (8 processing units, 1995), noting the numbers are not
like-for-like: every scheme runs on a wildly different baseline.  We run
our epoch-granularity models of both schemes on the same task traces the
LoopFrog binary produces, and report each scheme's speedup over *its own*
baseline, alongside the static rows (cores, area, task sizes,
deployment)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.report import format_table
from ..analysis.speedup import geometric_mean
from ..tls import (
    MultiscalarConfig,
    StampedeConfig,
    extract_tasks,
    simulate_multiscalar,
    simulate_stampede,
)
from ..uarch.config import MachineConfig
from ..workloads.suites import suite
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, configured_variant


@dataclass
class SchemeRow:
    scheme: str
    speedup: float
    cores: str
    area: str
    baseline: str
    task_sizes: str
    deployment: str


@dataclass
class Table3Result:
    rows: List[SchemeRow]
    mean_task_size: float

    def row(self, scheme_prefix: str) -> SchemeRow:
        for row in self.rows:
            if row.scheme.startswith(scheme_prefix):
                return row
        raise KeyError(scheme_prefix)

    def render(self) -> str:
        return format_table(
            ["Scheme", "Speedup", "Cores", "Area", "Baseline",
             "Task sizes", "Deployment"],
            [
                (r.scheme, f"{r.speedup:.2f}x", r.cores, r.area, r.baseline,
                 r.task_sizes, r.deployment)
                for r in self.rows
            ],
            title="Table 3: comparison with classic TLS/SpMT schemes "
                  "(speedups are over each scheme's own baseline)",
        )


def _derive(sweep: Sweep) -> Table3Result:
    # LoopFrog speedup from the cycle-level model.
    frog_speedup = exp_metrics.suite_geomean(sweep.runs())

    # The TLS schemes run on task traces, not the cycle model; they don't
    # go through the sweep's cell cache.
    only = sweep.only
    multiscalar_speedups = []
    stampede_speedups = []
    task_sizes = []
    for suite_name in sweep.spec.suites:
        for benchmark in suite(suite_name):
            if only is not None and benchmark.name not in only:
                continue
            for workload, _ in benchmark.phases:
                memory, regs = workload.fresh_input()
                trace = extract_tasks(workload.program, memory, regs)
                if trace.mean_parallel_task_size():
                    task_sizes.append(trace.mean_parallel_task_size())
                multiscalar_speedups.append(
                    simulate_multiscalar(trace).speedup
                )
                stampede_speedups.append(simulate_stampede(trace).speedup)

    ms_config = MultiscalarConfig()
    st_config = StampedeConfig()
    rows = [
        SchemeRow(
            scheme="LoopFrog",
            speedup=frog_speedup,
            cores="1 (4-way SMT)",
            area="~1.15x",
            baseline="8-issue OoO",
            task_sizes="~100-10,000 instructions",
            deployment="compiler, ISA hints",
        ),
        SchemeRow(
            scheme=st_config.name,
            speedup=geometric_mean(stampede_speedups),
            cores=str(st_config.num_cores),
            area=f"> {st_config.area_factor:.0f}x",
            baseline="4-issue simple OoO, 5 stages",
            task_sizes="~1,400 instructions",
            deployment="OS, compiler, ISA",
        ),
        SchemeRow(
            scheme=ms_config.name,
            speedup=geometric_mean(multiscalar_speedups),
            cores=f"{ms_config.num_units} (PUs)",
            area=f"~ {ms_config.area_factor:.0f}x",
            baseline="2-issue limited OoO (ROB=32)",
            task_sizes="10-50 instructions",
            deployment="specialist u-arch, compiler, ISA",
        ),
    ]
    mean_task = sum(task_sizes) / len(task_sizes) if task_sizes else 0.0
    return Table3Result(rows, mean_task)


def _json(result: Table3Result) -> Dict[str, Any]:
    return {
        "rows": [
            {
                "scheme": r.scheme,
                "speedup": r.speedup,
                "cores": r.cores,
                "area": r.area,
                "baseline": r.baseline,
                "task_sizes": r.task_sizes,
                "deployment": r.deployment,
            }
            for r in result.rows
        ],
        "mean_task_size": result.mean_task_size,
    }


SPEC = registry.register(ExperimentSpec(
    name="table3",
    title="Table 3: comparison with classic TLS/SpMT schemes",
    kind="table",
    suites=("spec2017",),
    derive=_derive,
    to_json=_json,
    description="LoopFrog vs STAMPede and Multiscalar epoch models on the "
                "same task traces, each over its own baseline.",
))


def run_table3(
    machine: Optional[MachineConfig] = None,
    suite_name: str = "spec2017",
    only: Optional[List[str]] = None,
) -> Table3Result:
    return registry.run_experiment(
        "table3",
        suites=(suite_name,),
        variants=(configured_variant(machine),),
        only=only,
    ).result
