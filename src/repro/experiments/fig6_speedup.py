"""Figure 6: whole-program speedups across SPEC CPU 2006 and 2017.

Paper headline: geometric means of 9.2% (2006) and 9.5% (2017); 34/47
benchmarks accelerated by >1%, including 13/20 in 2017; top gainers
imagick 87%, omnetpp 54%, nab 15%, gcc 12%, xalancbmk 11%."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.report import format_bars
from ..uarch.config import MachineConfig
from . import metrics as exp_metrics
from . import registry
from .runner import BenchmarkRun
from .spec import ExperimentSpec, Sweep, configured_variant, run_rows


@dataclass
class Fig6Result:
    runs_2006: List[BenchmarkRun]
    runs_2017: List[BenchmarkRun]

    @property
    def geomean_2006_percent(self) -> float:
        return exp_metrics.geomean_percent(self.runs_2006)

    @property
    def geomean_2017_percent(self) -> float:
        return exp_metrics.geomean_percent(self.runs_2017)

    def profitable(self, threshold_percent: float = 1.0) -> List[BenchmarkRun]:
        return exp_metrics.profitable(
            self.runs_2006 + self.runs_2017, threshold_percent
        )

    def speedup_of(self, name: str) -> float:
        return exp_metrics.speedup_of(self.runs_2006 + self.runs_2017, name)

    def render(self) -> str:
        parts = []
        for label, runs, geomean in (
            ("SPEC CPU 2017", self.runs_2017, self.geomean_2017_percent),
            ("SPEC CPU 2006", self.runs_2006, self.geomean_2006_percent),
        ):
            items = [
                (r.name, r.speedup_percent)
                for r in sorted(runs, key=lambda x: -x.speedup)
            ]
            parts.append(
                format_bars(
                    items,
                    title=f"Figure 6: whole-program speedup, {label} "
                          f"(geomean {geomean:+.1f}%)",
                )
            )
        total = len(self.runs_2006) + len(self.runs_2017)
        parts.append(
            f"accelerated >1%: {len(self.profitable())} of {total} benchmarks"
        )
        return "\n\n".join(parts)


def _derive(sweep: Sweep) -> Fig6Result:
    return Fig6Result(
        runs_2006=sweep.runs("spec2006"),
        runs_2017=sweep.runs("spec2017"),
    )


def _json(result: Fig6Result) -> Dict[str, Any]:
    return {
        "geomean_2006_percent": result.geomean_2006_percent,
        "geomean_2017_percent": result.geomean_2017_percent,
        "profitable": len(result.profitable()),
        "benchmarks": run_rows(result.runs_2006 + result.runs_2017),
    }


SPEC = registry.register(ExperimentSpec(
    name="fig6",
    title="Figure 6: whole-program speedups, SPEC CPU 2006 and 2017",
    kind="figure",
    suites=("spec2006", "spec2017"),
    derive=_derive,
    to_json=_json,
    description="The paper's headline result: per-benchmark and geomean "
                "speedup of LoopFrog over the hints-as-nops baseline.",
))


def run_fig6(
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
) -> Fig6Result:
    return registry.run_experiment(
        "fig6", variants=(configured_variant(machine, baseline),)
    ).result
