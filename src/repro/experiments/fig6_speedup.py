"""Figure 6: whole-program speedups across SPEC CPU 2006 and 2017.

Paper headline: geometric means of 9.2% (2006) and 9.5% (2017); 34/47
benchmarks accelerated by >1%, including 13/20 in 2017; top gainers
imagick 87%, omnetpp 54%, nab 15%, gcc 12%, xalancbmk 11%."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.report import format_bars
from ..uarch.config import MachineConfig
from .runner import BenchmarkRun, run_suite, suite_geomean


@dataclass
class Fig6Result:
    runs_2006: List[BenchmarkRun]
    runs_2017: List[BenchmarkRun]

    @property
    def geomean_2006_percent(self) -> float:
        return (suite_geomean(self.runs_2006) - 1.0) * 100.0

    @property
    def geomean_2017_percent(self) -> float:
        return (suite_geomean(self.runs_2017) - 1.0) * 100.0

    def profitable(self, threshold_percent: float = 1.0) -> List[BenchmarkRun]:
        return [
            r
            for r in self.runs_2006 + self.runs_2017
            if r.speedup_percent > threshold_percent
        ]

    def speedup_of(self, name: str) -> float:
        for run in self.runs_2006 + self.runs_2017:
            if run.name == name:
                return run.speedup_percent
        raise KeyError(name)

    def render(self) -> str:
        parts = []
        for label, runs, geomean in (
            ("SPEC CPU 2017", self.runs_2017, self.geomean_2017_percent),
            ("SPEC CPU 2006", self.runs_2006, self.geomean_2006_percent),
        ):
            items = [
                (r.name, r.speedup_percent)
                for r in sorted(runs, key=lambda x: -x.speedup)
            ]
            parts.append(
                format_bars(
                    items,
                    title=f"Figure 6: whole-program speedup, {label} "
                          f"(geomean {geomean:+.1f}%)",
                )
            )
        total = len(self.runs_2006) + len(self.runs_2017)
        parts.append(
            f"accelerated >1%: {len(self.profitable())} of {total} benchmarks"
        )
        return "\n\n".join(parts)


def run_fig6(
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
) -> Fig6Result:
    return Fig6Result(
        runs_2006=run_suite("spec2006", machine, baseline),
        runs_2017=run_suite("spec2017", machine, baseline),
    )
