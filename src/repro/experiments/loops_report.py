"""Section 6.3: per-loop (region) speedup distribution.

Paper: loop speedups range up to 2.9x, with 6 loops achieving over 2x and
44 loops speeding up by 20% or more; via Amdahl, a 43% geometric-mean
in-region speedup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.report import format_table
from ..analysis.speedup import geometric_mean
from ..uarch.config import MachineConfig
from .runner import run_suite


@dataclass
class LoopsReport:
    loop_speedups: Dict[str, float]  # "workload:region" -> speedup

    @property
    def count(self) -> int:
        return len(self.loop_speedups)

    @property
    def max_speedup(self) -> float:
        return max(self.loop_speedups.values(), default=1.0)

    def loops_over(self, threshold: float) -> int:
        return sum(1 for v in self.loop_speedups.values() if v >= threshold)

    @property
    def geomean(self) -> float:
        values = [v for v in self.loop_speedups.values() if v > 0]
        return geometric_mean(values) if values else 1.0

    def render(self) -> str:
        top = sorted(self.loop_speedups.items(), key=lambda kv: -kv[1])[:12]
        table = format_table(
            ["loop (workload:region)", "speedup"],
            [(name, f"{value:.2f}x") for name, value in top],
            title="Section 6.3: fastest parallel loops",
        )
        summary = (
            f"\n{self.count} parallel loops measured; max {self.max_speedup:.2f}x; "
            f"{self.loops_over(2.0)} loops over 2x; "
            f"{self.loops_over(1.2)} loops at +20% or more; "
            f"geomean in-region speedup {100 * (self.geomean - 1):+.0f}%"
        )
        return table + summary


def run_loops_report(
    machine: Optional[MachineConfig] = None,
    suite_names=("spec2017", "spec2006"),
) -> LoopsReport:
    speedups: Dict[str, float] = {}
    for name in suite_names:
        for run in run_suite(name, machine, dynamic_deselection=False):
            speedups.update(run.region_speedups())
    return LoopsReport(speedups)
