"""Section 6.3: per-loop (region) speedup distribution.

Paper: loop speedups range up to 2.9x, with 6 loops achieving over 2x and
44 loops speeding up by 20% or more; via Amdahl, a 43% geometric-mean
in-region speedup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..analysis.report import format_table
from ..analysis.speedup import geometric_mean
from ..uarch.config import MachineConfig
from . import registry
from .spec import ExperimentSpec, Sweep, configured_variant


@dataclass
class LoopsReport:
    loop_speedups: Dict[str, float]  # "workload:region" -> speedup

    @property
    def count(self) -> int:
        return len(self.loop_speedups)

    @property
    def max_speedup(self) -> float:
        return max(self.loop_speedups.values(), default=1.0)

    def loops_over(self, threshold: float) -> int:
        return sum(1 for v in self.loop_speedups.values() if v >= threshold)

    @property
    def geomean(self) -> float:
        values = [v for v in self.loop_speedups.values() if v > 0]
        return geometric_mean(values) if values else 1.0

    def render(self) -> str:
        top = sorted(self.loop_speedups.items(), key=lambda kv: -kv[1])[:12]
        table = format_table(
            ["loop (workload:region)", "speedup"],
            [(name, f"{value:.2f}x") for name, value in top],
            title="Section 6.3: fastest parallel loops",
        )
        summary = (
            f"\n{self.count} parallel loops measured; max {self.max_speedup:.2f}x; "
            f"{self.loops_over(2.0)} loops over 2x; "
            f"{self.loops_over(1.2)} loops at +20% or more; "
            f"geomean in-region speedup {100 * (self.geomean - 1):+.0f}%"
        )
        return table + summary


def _derive(sweep: Sweep) -> LoopsReport:
    speedups: Dict[str, float] = {}
    for run in sweep.runs():
        speedups.update(run.region_speedups())
    return LoopsReport(speedups)


def _json(result: LoopsReport) -> Dict[str, Any]:
    return {
        "loop_speedups": dict(sorted(result.loop_speedups.items())),
        "count": result.count,
        "max_speedup": result.max_speedup,
        "over_2x": result.loops_over(2.0),
        "over_20_percent": result.loops_over(1.2),
        "geomean": result.geomean,
    }


SPEC = registry.register(ExperimentSpec(
    name="loops",
    title="Section 6.3: per-loop speedup distribution",
    kind="report",
    suites=("spec2017", "spec2006"),
    # Deselection snaps unprofitable loops to baseline and would hide the
    # tail of the distribution.
    variants=(configured_variant(label="default",
                                 dynamic_deselection=False),),
    derive=_derive,
    to_json=_json,
    description="Region-level speedups across both suites: count, max, "
                "loops over 2x / +20%, geomean in-region speedup.",
))


def run_loops_report(
    machine: Optional[MachineConfig] = None,
    suite_names=("spec2017", "spec2006"),
) -> LoopsReport:
    return registry.run_experiment(
        "loops",
        suites=tuple(suite_names),
        variants=(configured_variant(machine, dynamic_deselection=False),),
    ).result
