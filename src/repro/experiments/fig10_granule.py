"""Figure 10: sensitivity to SSB/conflict-detector granule size.

Paper: 1-4 B granules are equivalent; 8 B only slows x264 (~5%); 16 B and
32 B introduce enough false sharing to drop the geomean to 6.5% and ~6%.
Sub-granule stores read-modify-write the whole granule, adding the false
read that causes those conflicts (section 4.1.1)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.report import format_series
from ..uarch.config import MachineConfig, default_machine
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, Variant

GRANULES = (1, 2, 4, 8, 16, 32)


@dataclass
class Fig10Result:
    points: List[Tuple[int, float]]               # (granule, geomean %)
    per_benchmark: Dict[int, Dict[str, float]]    # granule -> name -> %

    def speedup_at(self, granule: int) -> float:
        for g, v in self.points:
            if g == granule:
                return v
        raise KeyError(granule)

    def benchmark_at(self, granule: int, name: str) -> float:
        return self.per_benchmark[granule][name]

    def render(self) -> str:
        body = format_series(
            "granule", "geomean speedup %",
            [(f"{g} B", v) for g, v in self.points],
            title="Figure 10: sensitivity to conflict granule size "
                  "(SPEC 2017 stand-ins)",
        )
        if 4 in self.per_benchmark and 8 in self.per_benchmark:
            x264_4 = self.per_benchmark[4].get("x264")
            x264_8 = self.per_benchmark[8].get("x264")
            if x264_4 is not None and x264_8 is not None:
                body += (
                    f"\nx264 at 4 B: {x264_4:+.1f}%  at 8 B: {x264_8:+.1f}% "
                    "(the paper's one 8-B casualty)"
                )
        return body


def machine_with_granule(granule_bytes: int) -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog, granule_bytes=granule_bytes
    )
    return machine


def _variants(granules) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=f"granule-{granule}",
            machine=partial(machine_with_granule, granule),
            params={"granule": granule},
        )
        for granule in granules
    )


def _derive(sweep: Sweep) -> Fig10Result:
    points = []
    per_benchmark: Dict[int, Dict[str, float]] = {}
    for variant in sweep.spec.variants:
        granule = variant.params["granule"]
        runs = sweep.runs(variant=variant.label)
        points.append((granule, exp_metrics.geomean_percent(runs)))
        per_benchmark[granule] = {r.name: r.speedup_percent for r in runs}
    return Fig10Result(points, per_benchmark)


def _json(result: Fig10Result) -> Dict[str, Any]:
    return {
        "points": [
            {"granule_bytes": g, "geomean_percent": v}
            for g, v in result.points
        ],
        "per_benchmark": {
            str(g): dict(sorted(by_name.items()))
            for g, by_name in sorted(result.per_benchmark.items())
        },
    }


SPEC = registry.register(ExperimentSpec(
    name="fig10",
    title="Figure 10: sensitivity to conflict granule size",
    kind="figure",
    suites=("spec2017",),
    variants=_variants(GRANULES),
    derive=_derive,
    to_json=_json,
    description="Geomean speedup as the conflict-detection granule grows "
                "from 1 B to 32 B (false sharing from RMW granules).",
))


def run_fig10(
    granules=GRANULES,
    suite_name: str = "spec2017",
    only: Optional[List[str]] = None,
) -> Fig10Result:
    return registry.run_experiment(
        "fig10", suites=(suite_name,), variants=_variants(granules), only=only
    ).result
