"""Figure 1: IPC and commit utilisation vs front-end width.

The paper measures four commercial Intel microarchitectures of increasing
width and finds IPC rising roughly linearly while the fraction of commit
bandwidth actually used falls.  We reproduce the trend by sweeping the
baseline core's width over the SPEC 2017 stand-in suite (no speculation:
these are conventional cores)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.report import format_table
from ..analysis.speedup import geometric_mean
from ..uarch.config import scaled_core
from ..workloads.suites import suite
from .runner import run_workload

# Width stand-ins for the paper's four Intel generations.
WIDTHS = (4, 6, 8, 10)
WIDTH_NAMES = {4: "4-wide (SKL-like)", 6: "6-wide (ICL-like)",
               8: "8-wide (GLC-like)", 10: "10-wide (LNC-like)"}


@dataclass
class WidthPoint:
    width: int
    name: str
    geomean_ipc: float
    commit_utilization: float


@dataclass
class Fig1Result:
    points: List[WidthPoint]

    def render(self) -> str:
        return format_table(
            ["front-end width", "geomean IPC", "commit utilisation"],
            [
                (p.name, f"{p.geomean_ipc:.2f}", f"{p.commit_utilization:.1%}")
                for p in self.points
            ],
            title="Figure 1: IPC and commit utilisation vs width "
                  "(SPEC 2017 stand-ins, no speculation)",
        )

    @property
    def ipc_increases_with_width(self) -> bool:
        ipcs = [p.geomean_ipc for p in self.points]
        return all(b > a for a, b in zip(ipcs, ipcs[1:]))

    @property
    def utilization_decreases_with_width(self) -> bool:
        utils = [p.commit_utilization for p in self.points]
        return all(b < a for a, b in zip(utils, utils[1:]))


def run_fig1(suite_name: str = "spec2017",
             widths=WIDTHS, only: Optional[List[str]] = None) -> Fig1Result:
    points = []
    for width in widths:
        machine = scaled_core(width)
        ipcs = []
        utils = []
        for benchmark in suite(suite_name):
            if only is not None and benchmark.name not in only:
                continue
            per_phase = []
            util_phase = []
            for workload, weight in benchmark.phases:
                stats = run_workload(workload, machine)
                per_phase.append((stats.ipc, weight))
                util_phase.append(
                    (stats.commit_utilization(machine.core.commit_width), weight)
                )
            ipcs.append(sum(v * w for v, w in per_phase))
            utils.append(sum(v * w for v, w in util_phase))
        points.append(
            WidthPoint(
                width=width,
                name=WIDTH_NAMES.get(width, f"{width}-wide"),
                geomean_ipc=geometric_mean(ipcs),
                commit_utilization=sum(utils) / len(utils),
            )
        )
    return Fig1Result(points)
