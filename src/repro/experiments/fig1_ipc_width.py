"""Figure 1: IPC and commit utilisation vs front-end width.

The paper measures four commercial Intel microarchitectures of increasing
width and finds IPC rising roughly linearly while the fraction of commit
bandwidth actually used falls.  We reproduce the trend by sweeping the
baseline core's width over the SPEC 2017 stand-in suite (no speculation:
these are conventional cores)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..analysis.speedup import geometric_mean
from ..uarch.config import scaled_core
from . import registry
from .spec import ExperimentSpec, Sweep, Variant

# Width stand-ins for the paper's four Intel generations.
WIDTHS = (4, 6, 8, 10)
WIDTH_NAMES = {4: "4-wide (SKL-like)", 6: "6-wide (ICL-like)",
               8: "8-wide (GLC-like)", 10: "10-wide (LNC-like)"}


@dataclass
class WidthPoint:
    width: int
    name: str
    geomean_ipc: float
    commit_utilization: float


@dataclass
class Fig1Result:
    points: List[WidthPoint]

    def render(self) -> str:
        return format_table(
            ["front-end width", "geomean IPC", "commit utilisation"],
            [
                (p.name, f"{p.geomean_ipc:.2f}", f"{p.commit_utilization:.1%}")
                for p in self.points
            ],
            title="Figure 1: IPC and commit utilisation vs width "
                  "(SPEC 2017 stand-ins, no speculation)",
        )

    @property
    def ipc_increases_with_width(self) -> bool:
        ipcs = [p.geomean_ipc for p in self.points]
        return all(b > a for a, b in zip(ipcs, ipcs[1:]))

    @property
    def utilization_decreases_with_width(self) -> bool:
        utils = [p.commit_utilization for p in self.points]
        return all(b < a for a, b in zip(utils, utils[1:]))


def _variants(widths) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=WIDTH_NAMES.get(width, f"{width}-wide"),
            machine=partial(scaled_core, width),
            paired=False,
            params={"width": width},
        )
        for width in widths
    )


def _derive(sweep: Sweep) -> Fig1Result:
    points = []
    for variant in sweep.spec.variants:
        ipcs: List[float] = []
        utils: List[float] = []
        for suite_name in sweep.spec.suites:
            cell = sweep.cell(suite_name, variant.label)
            commit_width = cell.machine.core.commit_width
            for phases in cell.by_benchmark().values():
                ipcs.append(sum(p.stats.ipc * p.weight for p in phases))
                utils.append(sum(
                    p.stats.commit_utilization(commit_width) * p.weight
                    for p in phases
                ))
        points.append(
            WidthPoint(
                width=variant.params["width"],
                name=variant.label,
                geomean_ipc=geometric_mean(ipcs),
                commit_utilization=sum(utils) / len(utils),
            )
        )
    return Fig1Result(points)


def _json(result: Fig1Result) -> Dict[str, Any]:
    return {
        "points": [
            {
                "width": p.width,
                "name": p.name,
                "geomean_ipc": p.geomean_ipc,
                "commit_utilization": p.commit_utilization,
            }
            for p in result.points
        ]
    }


SPEC = registry.register(ExperimentSpec(
    name="fig1",
    title="Figure 1: IPC and commit utilisation vs front-end width",
    kind="figure",
    suites=("spec2017",),
    variants=_variants(WIDTHS),
    derive=_derive,
    to_json=_json,
    description="Width sweep of the conventional baseline core: IPC "
                "rises with width while commit utilisation falls.",
))


def run_fig1(suite_name: str = "spec2017",
             widths=WIDTHS, only: Optional[List[str]] = None) -> Fig1Result:
    return registry.run_experiment(
        "fig1", suites=(suite_name,), variants=_variants(widths), only=only
    ).result
