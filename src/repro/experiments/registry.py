"""Central experiment registry: every paper artefact behind one API.

Experiment modules register their :class:`~repro.experiments.spec.ExperimentSpec`
at import time; the CLI (``repro exp list|run|all``), the legacy
``repro experiment`` command, the benchmark harness and the tests all
resolve experiments here by name.  Running several experiments through
one :func:`run_all` invocation shares the runner's in-process cell cache
across them, so each distinct (workload, config) simulation happens at
most once — the per-run :class:`CellCounters` deltas prove it.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ReproError
from ..obs.tracing import span as _span
from .spec import (
    CellCounters,
    ExperimentSpec,
    Variant,
    execute_spec,
    global_counters,
)

_SPECS: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (module-import-time helper).

    Re-registering the identical spec object is a no-op (modules may be
    re-imported); registering a different spec under an existing name is
    an error — experiment names are a public CLI surface.
    """
    existing = _SPECS.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValueError(f"experiment {spec.name!r} already registered")
    _SPECS[spec.name] = spec
    return spec


def names() -> List[str]:
    """Registered experiment names, in registration (paper) order."""
    return list(_SPECS)


def specs() -> List[ExperimentSpec]:
    return list(_SPECS.values())


def get(name: str) -> ExperimentSpec:
    spec = _SPECS.get(name)
    if spec is None:
        raise ReproError(
            f"unknown experiment {name!r}; choose from: {', '.join(_SPECS)}"
        )
    return spec


@dataclass
class ExperimentRun:
    """One executed experiment: spec, derived result, cell accounting."""

    spec: ExperimentSpec
    result: Any
    counters: CellCounters
    sampled: bool = False

    @property
    def name(self) -> str:
        return self.spec.name

    def render(self) -> str:
        return self.result.render()

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment": self.spec.name,
            "title": self.spec.title,
            "kind": self.spec.kind,
            "sampled": self.sampled,
            "suites": list(self.spec.suites),
            "variants": [v.label for v in self.spec.variants],
            "cells": self.counters.to_dict(),
            "data": (
                self.spec.to_json(self.result)
                if self.spec.to_json is not None else {}
            ),
            "render": self.render(),
        }


def run_experiment(
    name: Union[str, ExperimentSpec],
    only: Optional[List[str]] = None,
    suites: Optional[Tuple[str, ...]] = None,
    variants: Optional[Tuple[Variant, ...]] = None,
    jobs: Optional[int] = None,
    sampling: Any = None,
) -> ExperimentRun:
    """Execute one registered experiment through the sweep engine.

    ``suites``/``variants`` override the spec's default axes (the legacy
    entry points use this to honour their historical parameters);
    ``only``/``jobs``/``sampling`` thread through to the runner.
    """
    spec = get(name) if isinstance(name, str) else name
    if suites is not None:
        spec = dataclasses.replace(spec, suites=tuple(suites))
    if variants is not None:
        spec = dataclasses.replace(spec, variants=tuple(variants))
    counters = CellCounters()
    with _span(
        "exp.run",
        experiment=spec.name,
        suites=",".join(spec.suites),
        variants=len(spec.variants),
        sampled=bool(sampling),
    ):
        sweep = execute_spec(
            spec, only=only, jobs=jobs, sampling=sampling,
            extra_counters=(counters,),
        )
        result = spec.derive(sweep)
    counters.experiments += 1
    global_counters().experiments += 1
    return ExperimentRun(
        spec=spec, result=result, counters=counters, sampled=bool(sampling)
    )


def run_all(
    names_to_run: Optional[Iterable[str]] = None,
    only: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    sampling: Any = None,
) -> List[ExperimentRun]:
    """Run several (default: all) experiments in one invocation, sharing
    the in-process cell cache across them."""
    return [
        run_experiment(name, only=only, jobs=jobs, sampling=sampling)
        for name in (list(names_to_run) if names_to_run is not None
                     else names())
    ]


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

def write_artifacts(runs: List[ExperimentRun], out_dir: str) -> str:
    """Write per-experiment ``.txt``/``.json`` artifacts plus a manifest.

    Artifacts are deterministic: JSON is key-sorted, benchmark listings
    are (suite, name)-ordered, and the manifest carries no timestamps —
    repeat invocations of the same experiments diff cleanly.  Returns
    the manifest path.
    """
    os.makedirs(out_dir, exist_ok=True)
    entries = []
    totals = CellCounters()
    for run in runs:
        text_name = f"{run.name}.txt"
        json_name = f"{run.name}.json"
        with open(os.path.join(out_dir, text_name), "w") as fh:
            fh.write(run.render() + "\n")
        with open(os.path.join(out_dir, json_name), "w") as fh:
            json.dump(run.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        totals.merge(run.counters)
        entries.append({
            "experiment": run.name,
            "title": run.spec.title,
            "kind": run.spec.kind,
            "sampled": run.sampled,
            "artifacts": {"text": text_name, "json": json_name},
            "cells": run.counters.to_dict(),
        })
    manifest = {
        "tool": "repro exp",
        "experiments": entries,
        "cells": totals.to_dict(),
    }
    path = os.path.join(out_dir, "manifest.json")
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
