"""Declarative experiment specs and the generic sweep engine.

Every paper figure/table is described by an :class:`ExperimentSpec`: a
grid of **axes** (workload suites x machine-config :class:`Variant`\\ s),
a ``derive`` function that turns the swept cells into the paper-specific
result object (which carries the render template), and an optional
``to_json`` projection for machine-readable artifacts.  The generic
engine (:func:`execute_spec`) walks the grid through the existing
``run_suite``/``run_workload``/``ResultStore``/sampling stack, so every
spec automatically composes with ``--jobs`` parallelism, ``--sampled``
estimation and the persistent result store.

**Cell accounting.**  A *cell* is one distinct (workload, machine-config)
simulation, identified by the same content digests the runner caches
under.  Before executing each spec the engine counts how many of its
cells are already in the in-process cache — populated by *earlier
experiments in the same invocation* — versus how many still need to
leave it (fresh simulation or a persistent-store load).  The counts feed
the ``exp.*`` metrics (docs/observability.md), which is how
``repro exp all`` proves it simulates each distinct cell at most once
across all fourteen experiments.

Specs are registered in :mod:`repro.experiments.registry`; adding a new
figure is ~30 lines (docs/experiments.md has a worked example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..obs import metrics as _metrics
from ..obs.tracing import span as _span
from ..uarch.config import MachineConfig, baseline_machine, default_machine
from ..uarch.statistics import SimStats
from ..workloads.base import Benchmark
from ..workloads.suites import suite
from . import runner as _runner
from .runner import BenchmarkRun, run_suite, run_workload

MachineFactory = Callable[[], MachineConfig]

#: Spec kinds, for ``repro exp list`` grouping and manifest metadata.
KINDS = ("figure", "table", "ablation", "report")


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Variant:
    """One machine-configuration point of a spec's sweep axis.

    ``machine``/``baseline`` are zero-argument factories (not config
    instances) so each execution gets a fresh config and import-time spec
    construction stays cheap; ``None`` means the stack defaults
    (:func:`default_machine` / :func:`baseline_machine`).

    ``paired=True`` (the norm) runs every workload under both the
    baseline and the variant machine via ``run_suite``, producing
    :class:`BenchmarkRun` pairs.  ``paired=False`` is the single-config
    sweep mode (figure 1): each workload runs once on the variant
    machine and the cell holds raw per-phase :class:`SimStats`.

    ``params`` carries the axis value (width, SSB bytes, granule, ...)
    so ``derive`` never has to parse it back out of the label.
    """

    label: str
    machine: Optional[MachineFactory] = None
    baseline: Optional[MachineFactory] = None
    paired: bool = True
    dynamic_deselection: bool = True
    params: Mapping[str, Any] = field(default_factory=dict)

    def build_machine(self) -> MachineConfig:
        return self.machine() if self.machine is not None else default_machine()

    def build_baseline(self) -> MachineConfig:
        return (
            self.baseline() if self.baseline is not None
            else baseline_machine()
        )


def configured_variant(
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
    label: str = "default",
    **kwargs: Any,
) -> Variant:
    """A :class:`Variant` pinning already-built configs (legacy entry
    points accept config *instances*; specs want factories)."""
    return Variant(
        label=label,
        machine=(lambda: machine) if machine is not None else None,
        baseline=(lambda: baseline) if baseline is not None else None,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one paper artefact.

    ``derive`` receives the executed :class:`Sweep` and returns the
    experiment's result object — any object with a ``render() -> str``
    method.  ``to_json`` projects that result into a JSON-safe dict for
    ``--json`` artifacts; multi-benchmark listings inside it must be
    deterministically ordered (use :func:`run_rows`).
    """

    name: str
    title: str
    kind: str
    derive: Callable[["Sweep"], Any] = field(compare=False)
    suites: Tuple[str, ...] = ("spec2017",)
    variants: Tuple[Variant, ...] = (Variant("default"),)
    to_json: Optional[Callable[[Any], Dict[str, Any]]] = field(
        default=None, compare=False
    )
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"bad experiment name {self.name!r}")
        if self.kind not in KINDS:
            raise ValueError(
                f"{self.name}: kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not self.suites:
            raise ValueError(f"{self.name}: at least one suite required")
        if not self.variants:
            raise ValueError(f"{self.name}: at least one variant required")
        labels = [v.label for v in self.variants]
        if len(set(labels)) != len(labels):
            raise ValueError(f"{self.name}: duplicate variant labels {labels}")


# ---------------------------------------------------------------------------
# Swept data
# ---------------------------------------------------------------------------

@dataclass
class PhaseStats:
    """One workload phase simulated in single-config (unpaired) mode."""

    benchmark: str
    workload: str
    weight: float
    stats: SimStats


@dataclass
class Cell:
    """The executed content of one (suite, variant) grid point."""

    suite: str
    variant: Variant
    machine: MachineConfig
    baseline: Optional[MachineConfig] = None
    runs: Optional[List[BenchmarkRun]] = None      # paired mode
    phases: Optional[List[PhaseStats]] = None      # single-config mode

    def by_benchmark(self) -> Dict[str, List[PhaseStats]]:
        """Single-config phases grouped per benchmark, in suite order."""
        grouped: Dict[str, List[PhaseStats]] = {}
        for phase in self.phases or []:
            grouped.setdefault(phase.benchmark, []).append(phase)
        return grouped


class Sweep:
    """All executed cells of one spec, addressable by (suite, variant)."""

    def __init__(self, spec: ExperimentSpec, only: Optional[List[str]] = None):
        self.spec = spec
        self.only = only
        self._cells: Dict[Tuple[str, str], Cell] = {}

    def add(self, cell: Cell) -> None:
        self._cells[(cell.suite, cell.variant.label)] = cell

    def cell(self, suite_name: str, variant_label: str) -> Cell:
        try:
            return self._cells[(suite_name, variant_label)]
        except KeyError:
            raise KeyError(
                f"{self.spec.name}: no cell ({suite_name!r}, "
                f"{variant_label!r}); have {sorted(self._cells)}"
            ) from None

    def runs(
        self,
        suite_name: Optional[str] = None,
        variant: Optional[str] = None,
    ) -> List[BenchmarkRun]:
        """Paired runs of the matching cells, concatenated in spec axis
        order (suites outer, variants inner) — the iteration order the
        hand-rolled modules used, so derived numbers are unchanged."""
        out: List[BenchmarkRun] = []
        for s in self.spec.suites:
            if suite_name is not None and s != suite_name:
                continue
            for v in self.spec.variants:
                if variant is not None and v.label != variant:
                    continue
                cell = self.cell(s, v.label)
                out.extend(cell.runs or [])
        return out


# ---------------------------------------------------------------------------
# Cell accounting (the exp.* metrics)
# ---------------------------------------------------------------------------

@dataclass
class CellCounters:
    """Sweep-engine accounting collected as the ``exp.*`` metrics."""

    experiments: int = 0
    cells_total: int = 0
    cells_cached: int = 0
    cells_simulated: int = 0

    def observe(self, cached: bool) -> None:
        self.cells_total += 1
        if cached:
            self.cells_cached += 1
        else:
            self.cells_simulated += 1

    def merge(self, other: "CellCounters") -> None:
        self.experiments += other.experiments
        self.cells_total += other.cells_total
        self.cells_cached += other.cells_cached
        self.cells_simulated += other.cells_simulated

    def to_dict(self) -> Dict[str, int]:
        return {
            "total": self.cells_total,
            "cached": self.cells_cached,
            "simulated": self.cells_simulated,
        }


# Process-wide counters: what `default_registry().collect(...)` snapshots.
_GLOBAL_COUNTERS = CellCounters()


def global_counters() -> CellCounters:
    return _GLOBAL_COUNTERS


def reset_counters() -> None:
    """Zero the process-wide counters (tests; the CLI zeroes per command)."""
    global _GLOBAL_COUNTERS
    _GLOBAL_COUNTERS = CellCounters()


# ---------------------------------------------------------------------------
# The sweep engine
# ---------------------------------------------------------------------------

def _cell_pairs(
    benchmarks: List[Benchmark],
    variant: Variant,
    machine: MachineConfig,
    baseline: Optional[MachineConfig],
) -> List[Tuple[Any, MachineConfig]]:
    pairs: List[Tuple[Any, MachineConfig]] = []
    for benchmark in benchmarks:
        for workload, _weight in benchmark.phases:
            if variant.paired and baseline is not None:
                pairs.append((workload, baseline))
            pairs.append((workload, machine))
    return pairs


def execute_spec(
    spec: ExperimentSpec,
    only: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    sampling: Any = None,
    extra_counters: Tuple[CellCounters, ...] = (),
) -> Sweep:
    """Run every (suite, variant) cell of ``spec`` and return the sweep.

    ``only`` restricts benchmarks by name; ``jobs``/``sampling`` thread
    straight through to the runner.  Cell accounting updates the global
    counters plus any ``extra_counters`` (the registry passes a per-run
    instance so each :class:`ExperimentRun` carries its own delta).
    """
    sweep = Sweep(spec, only)
    sampling_cfg = _runner.resolve_sampling(sampling)
    counters = (_GLOBAL_COUNTERS,) + tuple(extra_counters)
    for variant in spec.variants:
        machine = variant.build_machine()
        baseline = variant.build_baseline() if variant.paired else None
        for suite_name in spec.suites:
            benchmarks = [
                b for b in suite(suite_name)
                if only is None or b.name in only
            ]
            seen = set()
            for workload, m in _cell_pairs(
                benchmarks, variant, machine, baseline
            ):
                key = _runner.cell_key(workload, m, sampling_cfg)
                if key in seen:
                    continue
                seen.add(key)
                hit = _runner.cell_cached(workload, m, sampling_cfg)
                for counter in counters:
                    counter.observe(hit)
            with _span(
                "exp.cell",
                experiment=spec.name,
                suite=suite_name,
                variant=variant.label,
            ):
                if variant.paired:
                    runs = run_suite(
                        suite_name,
                        machine,
                        baseline,
                        dynamic_deselection=variant.dynamic_deselection,
                        only=only,
                        jobs=jobs,
                        sampling=sampling_cfg,
                    )
                    cell = Cell(
                        suite_name, variant, machine=machine,
                        baseline=baseline, runs=runs,
                    )
                else:
                    phases = [
                        PhaseStats(
                            benchmark.name, workload.name, weight,
                            run_workload(
                                workload, machine,
                                sampling=sampling_cfg, jobs=jobs,
                            ),
                        )
                        for benchmark in benchmarks
                        for workload, weight in benchmark.phases
                    ]
                    cell = Cell(
                        suite_name, variant, machine=machine, phases=phases
                    )
            sweep.add(cell)
    return sweep


# ---------------------------------------------------------------------------
# JSON projection helpers
# ---------------------------------------------------------------------------

def run_rows(runs: List[BenchmarkRun]) -> List[Dict[str, Any]]:
    """Per-benchmark rows for ``--json`` artifacts, sorted stably by
    (suite, name) so repeat invocations diff cleanly regardless of the
    sweep's execution order."""
    rows = [
        {
            "suite": run.benchmark.suite,
            "name": run.name,
            "baseline_cycles": run.baseline_cycles,
            "loopfrog_cycles": run.loopfrog_cycles,
            "speedup_percent": run.speedup_percent,
            "deselected": run.deselected,
        }
        for run in runs
    ]
    rows.sort(key=lambda r: (r["suite"], r["name"]))
    return rows


# ---------------------------------------------------------------------------
# Metrics catalog for the experiment sweep engine
# (collected off CellCounters; see docs/observability.md).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec(
        "exp.experiments", _metrics.COUNTER, "exp",
        "Experiments executed through the registry sweep engine",
        unit="experiments", source="experiments"),
    _metrics.MetricSpec(
        "exp.cells_total", _metrics.COUNTER, "exp",
        "Distinct (workload, config) cells the executed specs asked for",
        unit="cells", source="cells_total"),
    _metrics.MetricSpec(
        "exp.cells_cached", _metrics.COUNTER, "exp",
        "Cells already in the in-process cache when a spec needed them "
        "(cross-experiment sharing within one invocation)",
        unit="cells", source="cells_cached"),
    _metrics.MetricSpec(
        "exp.cells_simulated", _metrics.COUNTER, "exp",
        "Cells that had to leave the in-process cache (fresh simulation "
        "or a persistent-store load)",
        unit="cells", source="cells_simulated"),
)
