"""Benchmark runner: the evaluation methodology of paper section 6.1.

Every benchmark binary is simulated twice per phase — once on the baseline
(hints treated as nops) and once with LoopFrog speculation — and phase
cycle counts are combined with SimPoint-style weights.  Dynamic loop
deselection (section 5.1) is modelled by falling back to the baseline
cycle count when speculation lost time: real hardware would stop honouring
the hints of an unprofitable loop.

Results are cached at two levels, both keyed by content digests of the
(program, initial input, machine config) triple — see
:mod:`repro.results.digest`:

* an in-process dict, so configuration sweeps that revisit the same
  (workload, config) pair never resimulate within a run, and
* the persistent :class:`~repro.results.ResultStore`, so repeat
  invocations of the CLI skip simulation entirely.

``run_suite``/``run_benchmark`` accept a ``jobs`` parameter: with
``jobs > 1`` the distinct uncached simulations are collected, deduped and
fanned out across a :class:`~concurrent.futures.ProcessPoolExecutor`
before results are assembled.  ``jobs <= 1`` keeps the exact serial
in-process path.  Both paths produce bit-identical statistics: the worker
runs the same :class:`~repro.uarch.core.Engine` on the same inputs.

They also accept a ``sampling`` parameter selecting SimPoint-style
sampled simulation (docs/sampling.md): ``True`` for the default
:class:`~repro.sampling.runner.SamplingConfig`, or a config instance.
Sampled estimates live in a *separate* digest dimension — they are cached
and stored under :func:`~repro.results.digest.sampled_run_digest`, so
they can never be confused with (or shadow) exact results.  With
``jobs > 1`` the sampled path parallelises each run's detailed windows
instead of prefetching whole simulations.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.speedup import BenchmarkResult, weighted_time
from ..results.digest import machine_digest, run_digest, workload_digest
from ..results.store import get_default_store
from ..uarch.config import MachineConfig, baseline_machine, default_machine
from ..uarch.core import Engine
from ..uarch.statistics import SimStats
from ..workloads.base import Benchmark, Workload
from ..workloads.suites import suite
from .metrics import suite_geomean  # noqa: F401  (historical home; re-exported)

# In-process result cache.  Keyed by content digests — NOT by workload
# name — so two workloads that happen to share a name but differ in
# program or input can never collide, and editing a kernel's source
# invalidates its entry automatically.
_CacheKey = Tuple[str, str]
_CACHE: Dict[_CacheKey, SimStats] = {}

# Default parallelism for run_suite/run_benchmark when the caller passes
# ``jobs=None``.  Starts serial so library users (and the test suite) get
# the exact historical behaviour; the CLI raises it via ``configure``.
_default_jobs = 1


def configure(jobs: Optional[int] = None) -> None:
    """Set process-wide runner defaults (used by the CLI entry point)."""
    global _default_jobs
    if jobs is not None:
        _default_jobs = max(1, jobs)


def default_jobs() -> int:
    return _default_jobs


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None:
        return _default_jobs
    if jobs <= 0:  # 0 / negative mean "all cores", mirroring make -j
        return os.cpu_count() or 1
    return jobs


def _machine_key(machine: MachineConfig) -> str:
    """Stable identity of a machine config (memoized content digest)."""
    return machine_digest(machine)


def _cache_key(workload: Workload, machine: MachineConfig) -> _CacheKey:
    return (workload_digest(workload), _machine_key(machine))


def _simulate(workload: Workload, machine: MachineConfig) -> SimStats:
    memory, regs = workload.fresh_input()
    engine = Engine(machine, workload.program, memory, regs)
    return engine.run(max_cycles=workload.max_cycles)


def _sampling_config(sampling):
    """Normalise the ``sampling`` parameter: None/False -> exact mode,
    True -> default config, config instance -> itself."""
    if sampling is None or sampling is False:
        return None
    if sampling is True:
        from ..sampling.runner import SamplingConfig

        return SamplingConfig()
    return sampling


def run_workload(
    workload: Workload,
    machine: MachineConfig,
    use_cache: bool = True,
    sampling=None,
    jobs: Optional[int] = None,
) -> SimStats:
    """Simulate one workload on one machine configuration (cached).

    With ``use_cache=True`` the in-process cache is consulted first, then
    the persistent result store; a fresh simulation populates both.
    ``use_cache=False`` bypasses both layers entirely.  ``sampling``
    selects the sampled estimator instead of an exact run (its cache and
    store entries use the disjoint sampled digest); ``jobs`` only
    applies there, fanning the detailed windows out across processes.
    """
    config = _sampling_config(sampling)
    if config is not None:
        from ..sampling.runner import run_workload_sampled

        return run_workload_sampled(
            workload, machine, config, use_cache=use_cache, jobs=jobs
        ).stats
    if not use_cache:
        return _simulate(workload, machine)
    key = _cache_key(workload, machine)
    stats = _CACHE.get(key)
    if stats is not None:
        return stats
    store = get_default_store()
    if store is not None:
        digest = run_digest(workload, machine)
        stats = store.load(digest)
        if stats is not None:
            _CACHE[key] = stats
            return stats
    stats = _simulate(workload, machine)
    _CACHE[key] = stats
    if store is not None:
        store.save(digest, stats, workload=workload.name, machine=key[1][:12])
    return stats


# -- parallel scheduler -------------------------------------------------------

def _run_job(payload) -> SimStats:
    """Worker-side entry point: one simulation from a picklable payload.

    The payload deliberately excludes the :class:`Workload` object —
    its ``setup`` member is usually a closure, which does not pickle.
    The parent materializes ``fresh_input()`` and ships plain state.
    """
    program, memory, regs, machine, max_cycles = payload
    engine = Engine(machine, program, memory, regs)
    return engine.run(max_cycles=max_cycles)


def _prefetch(
    pairs: Iterable[Tuple[Workload, MachineConfig]], jobs: int
) -> None:
    """Ensure every (workload, config) pair is cached, simulating misses
    in parallel.

    Pairs are deduped by content digest, then filtered against the
    in-process cache and the persistent store; only true misses are
    dispatched to worker processes.  Results land in both cache layers,
    so the subsequent serial assembly pass is all hits.
    """
    store = get_default_store()
    pending: Dict[_CacheKey, Tuple[Workload, MachineConfig]] = {}
    for workload, machine in pairs:
        key = _cache_key(workload, machine)
        if key in _CACHE or key in pending:
            continue
        if store is not None:
            stats = store.load(run_digest(workload, machine))
            if stats is not None:
                _CACHE[key] = stats
                continue
        pending[key] = (workload, machine)
    if not pending:
        return
    if jobs <= 1 or len(pending) == 1:
        for key, (workload, machine) in pending.items():
            run_workload(workload, machine)
        return
    payloads = {}
    for key, (workload, machine) in pending.items():
        memory, regs = workload.fresh_input()
        payloads[key] = (
            workload.program, memory, regs, machine, workload.max_cycles
        )
    workers = min(jobs, len(pending))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_job, payload): key
            for key, payload in payloads.items()
        }
        for future in as_completed(futures):
            key = futures[future]
            stats = future.result()
            _CACHE[key] = stats
            if store is not None:
                workload, machine = pending[key]
                store.save(
                    run_digest(workload, machine),
                    stats,
                    workload=workload.name,
                    machine=key[1][:12],
                )


def _benchmark_pairs(
    benchmarks: Iterable[Benchmark],
    machine: MachineConfig,
    baseline: MachineConfig,
) -> List[Tuple[Workload, MachineConfig]]:
    pairs = []
    for benchmark in benchmarks:
        for workload, _weight in benchmark.phases:
            pairs.append((workload, baseline))
            pairs.append((workload, machine))
    return pairs


@dataclass
class PhaseRun:
    workload: str
    weight: float
    baseline: SimStats
    loopfrog: SimStats


@dataclass
class BenchmarkRun:
    """Everything the figure experiments need about one benchmark."""

    benchmark: Benchmark
    phases: List[PhaseRun]
    deselected: bool = False  # dynamic deselection kicked in

    @property
    def name(self) -> str:
        return self.benchmark.name

    @property
    def baseline_cycles(self) -> float:
        return weighted_time([(p.baseline.cycles, p.weight) for p in self.phases])

    @property
    def raw_loopfrog_cycles(self) -> float:
        return weighted_time([(p.loopfrog.cycles, p.weight) for p in self.phases])

    @property
    def loopfrog_cycles(self) -> float:
        if self.deselected:
            return self.baseline_cycles
        return self.raw_loopfrog_cycles

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.loopfrog_cycles

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0

    def region_speedups(self) -> Dict[str, float]:
        """Per-annotated-loop speedup (baseline vs LoopFrog region cycles)."""
        result: Dict[str, float] = {}
        for phase in self.phases:
            for label, base_region in phase.baseline.regions.items():
                if label == "<none>":
                    continue
                frog_region = phase.loopfrog.regions.get(label)
                if (
                    frog_region is None
                    or base_region.arch_cycles == 0
                    or frog_region.arch_cycles == 0
                ):
                    continue
                result[f"{phase.workload}:{label}"] = (
                    base_region.arch_cycles / frog_region.arch_cycles
                )
        return result

    def parallel_fraction(self) -> float:
        """Fraction of baseline time inside annotated loops."""
        total = 0.0
        in_region = 0.0
        for phase in self.phases:
            total += phase.weight * phase.baseline.cycles
            in_region += phase.weight * sum(
                r.arch_cycles
                for label, r in phase.baseline.regions.items()
                if label != "<none>"
            )
        return in_region / total if total else 0.0

    def to_result(self) -> BenchmarkResult:
        return BenchmarkResult(
            name=self.benchmark.name,
            suite=self.benchmark.suite,
            baseline_cycles=self.baseline_cycles,
            loopfrog_cycles=self.loopfrog_cycles,
            profitable_expected=self.benchmark.profitable,
            category=self.benchmark.category,
            region_speedups=self.region_speedups(),
            parallel_fraction=self.parallel_fraction(),
        )


def run_benchmark(
    benchmark: Benchmark,
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
    dynamic_deselection: bool = True,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    sampling=None,
) -> BenchmarkRun:
    """Run one benchmark under both configurations."""
    machine = machine or default_machine()
    baseline = baseline or baseline_machine()
    jobs = _resolve_jobs(jobs)
    sampling = _sampling_config(sampling)
    if sampling is None and use_cache and jobs > 1:
        _prefetch(_benchmark_pairs([benchmark], machine, baseline), jobs)
    phases = []
    for workload, weight in benchmark.phases:
        base_stats = run_workload(
            workload, baseline, use_cache, sampling=sampling, jobs=jobs
        )
        frog_stats = run_workload(
            workload, machine, use_cache, sampling=sampling, jobs=jobs
        )
        phases.append(PhaseRun(workload.name, weight, base_stats, frog_stats))
    run = BenchmarkRun(benchmark, phases)
    if dynamic_deselection and run.raw_loopfrog_cycles > run.baseline_cycles:
        run.deselected = True
    return run


def run_suite(
    suite_name: str,
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
    dynamic_deselection: bool = True,
    use_cache: bool = True,
    only: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    sampling=None,
) -> List[BenchmarkRun]:
    """Run a whole suite; ``only`` restricts to the named benchmarks."""
    machine = machine or default_machine()
    baseline = baseline or baseline_machine()
    jobs = _resolve_jobs(jobs)
    sampling = _sampling_config(sampling)
    benchmarks = [
        b for b in suite(suite_name) if only is None or b.name in only
    ]
    if sampling is None and use_cache and jobs > 1:
        _prefetch(_benchmark_pairs(benchmarks, machine, baseline), jobs)
    return [
        run_benchmark(
            benchmark, machine, baseline, dynamic_deselection, use_cache,
            # Exact mode: everything uncached was just prefetched, keep
            # assembly serial.  Sampled mode: parallelism lives inside
            # each run's window fan-out instead.
            jobs=1 if sampling is None else jobs,
            sampling=sampling,
        )
        for benchmark in benchmarks
    ]


def clear_cache() -> None:
    _CACHE.clear()


# -- cell identity (the experiment sweep engine's accounting) -----------------

#: Public alias: normalise a ``sampling`` parameter exactly like the run
#: functions do (None/False -> exact, True -> default config, config -> it).
resolve_sampling = _sampling_config


def cell_key(workload: Workload, machine: MachineConfig, sampling=None):
    """Hashable identity of one simulation cell.

    Exact and sampled runs live in disjoint key spaces, mirroring their
    disjoint cache/store digests — a sampled estimate never counts as a
    hit for an exact cell or vice versa.
    """
    config = _sampling_config(sampling)
    if config is None:
        return ("exact",) + _cache_key(workload, machine)
    from ..results.digest import sampled_run_digest

    return ("sampled", sampled_run_digest(workload, machine, config))


def cell_cached(workload: Workload, machine: MachineConfig, sampling=None) -> bool:
    """Whether the cell is already in the in-process cache (it would not
    simulate *or* touch the persistent store if requested now)."""
    config = _sampling_config(sampling)
    if config is None:
        return _cache_key(workload, machine) in _CACHE
    from ..results.digest import sampled_run_digest
    from ..sampling.runner import _CACHE as sampled_cache

    return sampled_run_digest(workload, machine, config) in sampled_cache
