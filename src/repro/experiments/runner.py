"""Benchmark runner: the evaluation methodology of paper section 6.1.

Every benchmark binary is simulated twice per phase — once on the baseline
(hints treated as nops) and once with LoopFrog speculation — and phase
cycle counts are combined with SimPoint-style weights.  Dynamic loop
deselection (section 5.1) is modelled by falling back to the baseline
cycle count when speculation lost time: real hardware would stop honouring
the hints of an unprofitable loop.

Results are cached in-process keyed by (workload, machine config), since
the figure experiments sweep configurations over the same suites.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.speedup import BenchmarkResult, geometric_mean, weighted_time
from ..uarch.config import MachineConfig, baseline_machine, default_machine
from ..uarch.core import Engine
from ..uarch.statistics import SimStats
from ..workloads.base import Benchmark, Workload
from ..workloads.suites import suite

_CACHE: Dict[Tuple[str, str], SimStats] = {}


def _machine_key(machine: MachineConfig) -> str:
    return repr(dataclasses.asdict(machine))


def run_workload(
    workload: Workload, machine: MachineConfig, use_cache: bool = True
) -> SimStats:
    """Simulate one workload on one machine configuration (cached)."""
    key = (workload.name, _machine_key(machine))
    if use_cache and key in _CACHE:
        return _CACHE[key]
    memory, regs = workload.fresh_input()
    engine = Engine(machine, workload.program, memory, regs)
    stats = engine.run(max_cycles=workload.max_cycles)
    if use_cache:
        _CACHE[key] = stats
    return stats


@dataclass
class PhaseRun:
    workload: str
    weight: float
    baseline: SimStats
    loopfrog: SimStats


@dataclass
class BenchmarkRun:
    """Everything the figure experiments need about one benchmark."""

    benchmark: Benchmark
    phases: List[PhaseRun]
    deselected: bool = False  # dynamic deselection kicked in

    @property
    def name(self) -> str:
        return self.benchmark.name

    @property
    def baseline_cycles(self) -> float:
        return weighted_time([(p.baseline.cycles, p.weight) for p in self.phases])

    @property
    def raw_loopfrog_cycles(self) -> float:
        return weighted_time([(p.loopfrog.cycles, p.weight) for p in self.phases])

    @property
    def loopfrog_cycles(self) -> float:
        if self.deselected:
            return self.baseline_cycles
        return self.raw_loopfrog_cycles

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.loopfrog_cycles

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0

    def region_speedups(self) -> Dict[str, float]:
        """Per-annotated-loop speedup (baseline vs LoopFrog region cycles)."""
        result: Dict[str, float] = {}
        for phase in self.phases:
            for label, base_region in phase.baseline.regions.items():
                if label == "<none>":
                    continue
                frog_region = phase.loopfrog.regions.get(label)
                if (
                    frog_region is None
                    or base_region.arch_cycles == 0
                    or frog_region.arch_cycles == 0
                ):
                    continue
                result[f"{phase.workload}:{label}"] = (
                    base_region.arch_cycles / frog_region.arch_cycles
                )
        return result

    def parallel_fraction(self) -> float:
        """Fraction of baseline time inside annotated loops."""
        total = 0.0
        in_region = 0.0
        for phase in self.phases:
            total += phase.weight * phase.baseline.cycles
            in_region += phase.weight * sum(
                r.arch_cycles
                for label, r in phase.baseline.regions.items()
                if label != "<none>"
            )
        return in_region / total if total else 0.0

    def to_result(self) -> BenchmarkResult:
        return BenchmarkResult(
            name=self.benchmark.name,
            suite=self.benchmark.suite,
            baseline_cycles=self.baseline_cycles,
            loopfrog_cycles=self.loopfrog_cycles,
            profitable_expected=self.benchmark.profitable,
            category=self.benchmark.category,
            region_speedups=self.region_speedups(),
            parallel_fraction=self.parallel_fraction(),
        )


def run_benchmark(
    benchmark: Benchmark,
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
    dynamic_deselection: bool = True,
    use_cache: bool = True,
) -> BenchmarkRun:
    """Run one benchmark under both configurations."""
    machine = machine or default_machine()
    baseline = baseline or baseline_machine()
    phases = []
    for workload, weight in benchmark.phases:
        base_stats = run_workload(workload, baseline, use_cache)
        frog_stats = run_workload(workload, machine, use_cache)
        phases.append(PhaseRun(workload.name, weight, base_stats, frog_stats))
    run = BenchmarkRun(benchmark, phases)
    if dynamic_deselection and run.raw_loopfrog_cycles > run.baseline_cycles:
        run.deselected = True
    return run


def run_suite(
    suite_name: str,
    machine: Optional[MachineConfig] = None,
    baseline: Optional[MachineConfig] = None,
    dynamic_deselection: bool = True,
    use_cache: bool = True,
    only: Optional[List[str]] = None,
) -> List[BenchmarkRun]:
    """Run a whole suite; ``only`` restricts to the named benchmarks."""
    runs = []
    for benchmark in suite(suite_name):
        if only is not None and benchmark.name not in only:
            continue
        runs.append(
            run_benchmark(
                benchmark, machine, baseline, dynamic_deselection, use_cache
            )
        )
    return runs


def suite_geomean(runs: List[BenchmarkRun]) -> float:
    """Geometric-mean speedup across benchmark runs."""
    return geometric_mean([r.speedup for r in runs])


def clear_cache() -> None:
    _CACHE.clear()
