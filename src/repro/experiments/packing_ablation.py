"""Section 6.5: iteration packing ablation.

Paper: packing affects 5 of the 13 profitable 2017 benchmarks and adds
0.9 pp of geomean speedup (9.5% with vs 8.6% without); the mean packing
factor is ~2.1x with a maximum of 25x."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.report import format_table
from ..uarch.config import MachineConfig, default_machine
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, Variant


@dataclass
class PackingResult:
    geomean_with_percent: float
    geomean_without_percent: float
    affected: List[str]                 # benchmarks whose speedup changed
    mean_packing_factor: float
    max_packing_factor: int
    per_benchmark: Dict[str, Dict[str, float]]

    @property
    def delta_pp(self) -> float:
        return self.geomean_with_percent - self.geomean_without_percent

    def render(self) -> str:
        rows = [
            (name, f"{v['with']:+.1f}%", f"{v['without']:+.1f}%")
            for name, v in self.per_benchmark.items()
        ]
        table = format_table(
            ["benchmark", "with packing", "without packing"],
            rows,
            title="Section 6.5: iteration-packing ablation (SPEC 2017)",
        )
        summary = (
            f"geomean with packing {self.geomean_with_percent:+.1f}% vs "
            f"without {self.geomean_without_percent:+.1f}% "
            f"(delta {self.delta_pp:+.1f} pp); "
            f"mean factor {self.mean_packing_factor:.1f}x, "
            f"max {self.max_packing_factor}x; "
            f"affected: {', '.join(self.affected) or 'none'}"
        )
        return table + "\n" + summary


def machine_without_packing() -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog, packing_enabled=False
    )
    return machine


def _derive(sweep: Sweep) -> PackingResult:
    runs_with = sweep.runs(variant="with packing")
    runs_without = sweep.runs(variant="without packing")

    per_benchmark: Dict[str, Dict[str, float]] = {}
    affected = []
    factors = []
    max_factor = 1
    for with_run, without_run in zip(runs_with, runs_without):
        per_benchmark[with_run.name] = {
            "with": with_run.speedup_percent,
            "without": without_run.speedup_percent,
        }
        if abs(with_run.speedup_percent - without_run.speedup_percent) > 0.5:
            affected.append(with_run.name)
        for phase in with_run.phases:
            stats = phase.loopfrog
            if stats.packing_events:
                factors.append(stats.mean_packing_factor)
                max_factor = max(max_factor, stats.max_packing_factor)

    mean_factor = sum(factors) / len(factors) if factors else 1.0
    return PackingResult(
        geomean_with_percent=exp_metrics.geomean_percent(runs_with),
        geomean_without_percent=exp_metrics.geomean_percent(runs_without),
        affected=affected,
        mean_packing_factor=mean_factor,
        max_packing_factor=max_factor,
        per_benchmark=per_benchmark,
    )


def _json(result: PackingResult) -> Dict[str, Any]:
    return {
        "geomean_with_percent": result.geomean_with_percent,
        "geomean_without_percent": result.geomean_without_percent,
        "delta_pp": result.delta_pp,
        "affected": sorted(result.affected),
        "mean_packing_factor": result.mean_packing_factor,
        "max_packing_factor": result.max_packing_factor,
        "per_benchmark": dict(sorted(result.per_benchmark.items())),
    }


SPEC = registry.register(ExperimentSpec(
    name="packing",
    title="Section 6.5: iteration-packing ablation",
    kind="ablation",
    suites=("spec2017",),
    variants=(
        Variant(label="with packing"),
        Variant(label="without packing", machine=machine_without_packing),
    ),
    derive=_derive,
    to_json=_json,
    description="Speedup with and without packing short iterations into "
                "one threadlet activation.",
))


def run_packing_ablation(suite_name: str = "spec2017",
                         only: Optional[List[str]] = None) -> PackingResult:
    return registry.run_experiment(
        "packing", suites=(suite_name,), only=only
    ).result
