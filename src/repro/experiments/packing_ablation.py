"""Section 6.5: iteration packing ablation.

Paper: packing affects 5 of the 13 profitable 2017 benchmarks and adds
0.9 pp of geomean speedup (9.5% with vs 8.6% without); the mean packing
factor is ~2.1x with a maximum of 25x."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.report import format_table
from ..uarch.config import MachineConfig, default_machine
from .runner import run_suite, suite_geomean


@dataclass
class PackingResult:
    geomean_with_percent: float
    geomean_without_percent: float
    affected: List[str]                 # benchmarks whose speedup changed
    mean_packing_factor: float
    max_packing_factor: int
    per_benchmark: Dict[str, Dict[str, float]]

    @property
    def delta_pp(self) -> float:
        return self.geomean_with_percent - self.geomean_without_percent

    def render(self) -> str:
        rows = [
            (name, f"{v['with']:+.1f}%", f"{v['without']:+.1f}%")
            for name, v in self.per_benchmark.items()
        ]
        table = format_table(
            ["benchmark", "with packing", "without packing"],
            rows,
            title="Section 6.5: iteration-packing ablation (SPEC 2017)",
        )
        summary = (
            f"geomean with packing {self.geomean_with_percent:+.1f}% vs "
            f"without {self.geomean_without_percent:+.1f}% "
            f"(delta {self.delta_pp:+.1f} pp); "
            f"mean factor {self.mean_packing_factor:.1f}x, "
            f"max {self.max_packing_factor}x; "
            f"affected: {', '.join(self.affected) or 'none'}"
        )
        return table + "\n" + summary


def machine_without_packing() -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog, packing_enabled=False
    )
    return machine


def run_packing_ablation(suite_name: str = "spec2017",
                         only: Optional[List[str]] = None) -> PackingResult:
    runs_with = run_suite(suite_name, default_machine(), only=only)
    runs_without = run_suite(suite_name, machine_without_packing(), only=only)

    per_benchmark: Dict[str, Dict[str, float]] = {}
    affected = []
    factors = []
    max_factor = 1
    for with_run, without_run in zip(runs_with, runs_without):
        per_benchmark[with_run.name] = {
            "with": with_run.speedup_percent,
            "without": without_run.speedup_percent,
        }
        if abs(with_run.speedup_percent - without_run.speedup_percent) > 0.5:
            affected.append(with_run.name)
        for phase in with_run.phases:
            stats = phase.loopfrog
            if stats.packing_events:
                factors.append(stats.mean_packing_factor)
                max_factor = max(max_factor, stats.max_packing_factor)

    mean_factor = sum(factors) / len(factors) if factors else 1.0
    return PackingResult(
        geomean_with_percent=(suite_geomean(runs_with) - 1.0) * 100.0,
        geomean_without_percent=(suite_geomean(runs_without) - 1.0) * 100.0,
        affected=affected,
        mean_packing_factor=mean_factor,
        max_packing_factor=max_factor,
        per_benchmark=per_benchmark,
    )
