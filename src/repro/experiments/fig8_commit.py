"""Figure 8: instructions committed per cycle by the architectural and
speculative threadlets (plus failed speculation), normalised to the
baseline IPC.

Paper: the architectural threadlet loses ~6% on average to resource
sharing; successful speculation recoups that and adds the 9.5% speedup;
an additional ~31% of committed-then-squashed instructions ride along,
two thirds of it from five benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.report import format_table
from ..uarch.config import MachineConfig
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, configured_variant


@dataclass
class CommitRow:
    name: str
    arch_ratio: float    # arch commit IPC / baseline IPC
    spec_ratio: float    # successful speculative commits / baseline IPC
    failed_ratio: float  # failed speculative commits / baseline IPC

    @property
    def useful_ratio(self) -> float:
        return self.arch_ratio + self.spec_ratio


@dataclass
class Fig8Result:
    rows: List[CommitRow]

    @property
    def mean_arch_ratio(self) -> float:
        return exp_metrics.mean(r.arch_ratio for r in self.rows)

    @property
    def mean_failed_ratio(self) -> float:
        return exp_metrics.mean(r.failed_ratio for r in self.rows)

    @property
    def mean_useful_ratio(self) -> float:
        return exp_metrics.mean(r.useful_ratio for r in self.rows)

    def render(self) -> str:
        table = format_table(
            ["benchmark", "architectural", "+speculative", "+failed"],
            [
                (r.name, f"{r.arch_ratio:.2f}",
                 f"{r.useful_ratio:.2f}",
                 f"{r.useful_ratio + r.failed_ratio:.2f}")
                for r in self.rows
            ],
            title="Figure 8: committed IPC relative to baseline "
                  "(cumulative: arch, +spec, +failed)",
        )
        summary = (
            f"mean architectural ratio {self.mean_arch_ratio:.2f} "
            f"(paper: ~0.94), mean useful {self.mean_useful_ratio:.2f}, "
            f"mean failed overhead {self.mean_failed_ratio:.2f} (paper: ~0.31)"
        )
        return table + "\n" + summary


def _derive(sweep: Sweep) -> Fig8Result:
    rows = []
    for run in sweep.runs():
        base = run.phases[0].baseline
        frog = run.phases[0].loopfrog
        base_ipc = base.arch_instructions / base.cycles
        rows.append(
            CommitRow(
                name=run.name,
                arch_ratio=(frog.arch_instructions / frog.cycles) / base_ipc,
                spec_ratio=(frog.spec_committed_instructions / frog.cycles)
                / base_ipc,
                failed_ratio=(frog.failed_spec_instructions / frog.cycles)
                / base_ipc,
            )
        )
    return Fig8Result(rows)


def _json(result: Fig8Result) -> Dict[str, Any]:
    return {
        "rows": sorted(
            (
                {
                    "name": r.name,
                    "arch_ratio": r.arch_ratio,
                    "spec_ratio": r.spec_ratio,
                    "failed_ratio": r.failed_ratio,
                }
                for r in result.rows
            ),
            key=lambda r: r["name"],
        ),
        "mean_arch_ratio": result.mean_arch_ratio,
        "mean_useful_ratio": result.mean_useful_ratio,
        "mean_failed_ratio": result.mean_failed_ratio,
    }


SPEC = registry.register(ExperimentSpec(
    name="fig8",
    title="Figure 8: committed IPC relative to baseline",
    kind="figure",
    suites=("spec2017",),
    # Deselection would snap unprofitable benchmarks back to their
    # baseline cycle counts and hide the failed-speculation overhead this
    # figure exists to show.
    variants=(configured_variant(label="default",
                                 dynamic_deselection=False),),
    derive=_derive,
    to_json=_json,
    description="Commit-bandwidth decomposition: architectural vs "
                "successful-speculative vs squashed instructions.",
))


def run_fig8(
    machine: Optional[MachineConfig] = None, suite_name: str = "spec2017"
) -> Fig8Result:
    return registry.run_experiment(
        "fig8",
        suites=(suite_name,),
        variants=(configured_variant(machine, dynamic_deselection=False),),
    ).result
