"""Experiment harnesses: one module per paper figure/table.

Every module declares an :class:`~repro.experiments.spec.ExperimentSpec`
and registers it in :mod:`repro.experiments.registry`; the historical
``run_*`` entry points remain as thin wrappers over
:func:`~repro.experiments.registry.run_experiment`.  See
docs/experiments.md for the spec/registry architecture.

================  ==========================================
paper artefact    module (registry name)
================  ==========================================
figure 1          :mod:`repro.experiments.fig1_ipc_width` (fig1)
figure 6          :mod:`repro.experiments.fig6_speedup` (fig6)
figure 7          :mod:`repro.experiments.fig7_utilization` (fig7)
figure 8          :mod:`repro.experiments.fig8_commit` (fig8)
figure 9          :mod:`repro.experiments.fig9_ssb_size` (fig9)
figure 10         :mod:`repro.experiments.fig10_granule` (fig10)
table 2           :mod:`repro.experiments.table2_sources` (table2)
table 3           :mod:`repro.experiments.table3_comparison` (table3)
section 6.5       :mod:`repro.experiments.packing_ablation` (packing)
section 6.6       :mod:`repro.experiments.assoc_sensitivity` (assoc)
section 6.8       :mod:`repro.experiments.area_overheads` (area)
section 6.3       :mod:`repro.experiments.loops_report` (loops)
ablations         :mod:`repro.experiments.ablations` (threadlets, bloom)
================  ==========================================
"""

from .runner import (
    BenchmarkRun,
    PhaseRun,
    clear_cache,
    configure,
    default_jobs,
    run_benchmark,
    run_suite,
    run_workload,
    suite_geomean,
)
from . import metrics  # noqa: F401
from .spec import (
    CellCounters,
    ExperimentSpec,
    Sweep,
    Variant,
    configured_variant,
    global_counters,
    reset_counters,
    run_rows,
)
from . import registry
from .registry import (
    ExperimentRun,
    run_all,
    run_experiment,
    write_artifacts,
)
from .fig1_ipc_width import Fig1Result, run_fig1
from .fig6_speedup import Fig6Result, run_fig6
from .fig7_utilization import Fig7Result, in_region_geomean_speedup, run_fig7
from .fig8_commit import Fig8Result, run_fig8
from .fig9_ssb_size import Fig9Result, machine_with_ssb_size, run_fig9
from .fig10_granule import Fig10Result, machine_with_granule, run_fig10
from .table2_sources import Table2Result, run_table2
from .table3_comparison import Table3Result, run_table3
from .packing_ablation import PackingResult, run_packing_ablation
from .assoc_sensitivity import AssocResult, run_assoc_sensitivity
from .area_overheads import OverheadResult, run_area_overheads
from .loops_report import LoopsReport, run_loops_report
from .ablations import (
    BloomAblationResult,
    ThreadletSweepResult,
    machine_with_threadlets,
    run_bloom_ablation,
    run_threadlet_sweep,
)

__all__ = [
    "BenchmarkRun",
    "PhaseRun",
    "clear_cache",
    "configure",
    "default_jobs",
    "run_benchmark",
    "run_suite",
    "run_workload",
    "suite_geomean",
    "CellCounters", "ExperimentSpec", "Sweep", "Variant",
    "configured_variant", "global_counters", "reset_counters", "run_rows",
    "registry", "ExperimentRun", "run_all", "run_experiment",
    "write_artifacts",
    "Fig1Result", "run_fig1",
    "Fig6Result", "run_fig6",
    "Fig7Result", "in_region_geomean_speedup", "run_fig7",
    "Fig8Result", "run_fig8",
    "Fig9Result", "machine_with_ssb_size", "run_fig9",
    "Fig10Result", "machine_with_granule", "run_fig10",
    "Table2Result", "run_table2",
    "Table3Result", "run_table3",
    "PackingResult", "run_packing_ablation",
    "AssocResult", "run_assoc_sensitivity",
    "OverheadResult", "run_area_overheads",
    "LoopsReport", "run_loops_report",
    "BloomAblationResult", "ThreadletSweepResult",
    "machine_with_threadlets", "run_bloom_ablation", "run_threadlet_sweep",
]
