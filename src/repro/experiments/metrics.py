"""Shared derived-metric helpers for the experiment layer.

Every figure/table used to reimplement the same three computations —
suite geometric means, per-benchmark speedup lookup, and "profitable"
filtering — inside its own result dataclass.  They live here once, with
direct unit tests (``tests/test_experiment_metrics.py``), and the result
dataclasses call in.

All helpers duck-type against :class:`~repro.experiments.runner.BenchmarkRun`
(anything with ``.name``, ``.speedup`` and ``.speedup_percent`` works), so
they serve both live runs and deserialized results.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..analysis.speedup import geometric_mean

#: The paper's "accelerated" threshold (section 6.2): a benchmark counts
#: as profitable when its whole-program speedup exceeds 1%.
PROFITABLE_THRESHOLD_PERCENT = 1.0


def suite_geomean(runs: Sequence) -> float:
    """Geometric-mean speedup across benchmark runs (paper's headline)."""
    return geometric_mean([r.speedup for r in runs])


def geomean_percent(runs: Sequence) -> float:
    """Geometric-mean speedup expressed the paper's way: (gm - 1) * 100."""
    return (suite_geomean(runs) - 1.0) * 100.0


def speedup_of(runs: Iterable, name: str) -> float:
    """Percent speedup of the named benchmark; ``KeyError`` if absent."""
    for run in runs:
        if run.name == name:
            return run.speedup_percent
    raise KeyError(name)


def profitable(
    runs: Iterable, threshold_percent: float = PROFITABLE_THRESHOLD_PERCENT
) -> List:
    """Runs accelerated by more than ``threshold_percent``."""
    return [r for r in runs if r.speedup_percent > threshold_percent]


def profitable_names(
    runs: Iterable, threshold_percent: float = PROFITABLE_THRESHOLD_PERCENT
) -> List[str]:
    """Names of the profitable runs, in run order."""
    return [r.name for r in profitable(runs, threshold_percent)]


def mean(values: Iterable[float], default: float = 0.0) -> float:
    """Arithmetic mean; ``default`` on empty input (no ZeroDivisionError)."""
    values = list(values)
    if not values:
        return default
    return sum(values) / len(values)
