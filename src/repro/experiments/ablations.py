"""Design-choice ablations beyond the paper's own sweeps.

Two knobs DESIGN.md calls out:

* **Threadlet count** — the paper evaluates 4 contexts; sweeping 1/2/4/8
  shows where the returns diminish (the SSB is resized proportionally so
  each slice keeps the table-1 2-KiB capacity).
* **Conflict-set implementation** — the paper idealises Bloom filters
  (no false positives modelled, section 6.1) and argues false aliasing is
  a second-order effect; comparing exact sets against real Bloom filters
  checks that claim in-model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.report import format_series, format_table
from ..uarch.config import MachineConfig, default_machine
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, Variant

CONTEXTS = (2, 4, 8)


@dataclass
class ThreadletSweepResult:
    points: List[Tuple[int, float]]  # (contexts, geomean speedup %)

    def speedup_at(self, contexts: int) -> float:
        for n, v in self.points:
            if n == contexts:
                return v
        raise KeyError(contexts)

    def render(self) -> str:
        return format_series(
            "threadlet contexts", "geomean speedup %",
            [(str(n), v) for n, v in self.points],
            title="Ablation: threadlet count (SSB scaled to 2 KiB/slice)",
        )


def machine_with_threadlets(contexts: int) -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog,
        num_threadlets=contexts,
        ssb_total_bytes=2048 * contexts,
    )
    return machine


def _threadlet_variants(contexts) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=f"{n}-contexts",
            machine=partial(machine_with_threadlets, n),
            params={"contexts": n},
        )
        for n in contexts
    )


def _derive_threadlets(sweep: Sweep) -> ThreadletSweepResult:
    points = []
    for variant in sweep.spec.variants:
        runs = sweep.runs(variant=variant.label)
        points.append(
            (variant.params["contexts"], exp_metrics.geomean_percent(runs))
        )
    return ThreadletSweepResult(points)


def _json_threadlets(result: ThreadletSweepResult) -> Dict[str, Any]:
    return {
        "points": [
            {"contexts": n, "geomean_percent": v} for n, v in result.points
        ]
    }


THREADLET_SPEC = registry.register(ExperimentSpec(
    name="threadlets",
    title="Ablation: threadlet count",
    kind="ablation",
    suites=("spec2017",),
    variants=_threadlet_variants(CONTEXTS),
    derive=_derive_threadlets,
    to_json=_json_threadlets,
    description="Geomean speedup at 2/4/8 threadlet contexts with the SSB "
                "scaled to keep 2 KiB per slice.",
))


def run_threadlet_sweep(
    contexts=CONTEXTS,
    suite_name: str = "spec2017",
    only: Optional[List[str]] = None,
) -> ThreadletSweepResult:
    return registry.run_experiment(
        "threadlets",
        suites=(suite_name,),
        variants=_threadlet_variants(contexts),
        only=only,
    ).result


@dataclass
class BloomAblationResult:
    exact_percent: float
    bloom_percent: float

    @property
    def delta_pp(self) -> float:
        return self.exact_percent - self.bloom_percent

    def render(self) -> str:
        return format_table(
            ["conflict sets", "geomean speedup %"],
            [("exact (idealised, as in the paper)", f"{self.exact_percent:+.1f}"),
             ("4096-bit Bloom filters", f"{self.bloom_percent:+.1f}")],
            title="Ablation: conflict-detector set implementation",
        )


def machine_with_bloom() -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog, use_bloom_filters=True
    )
    return machine


def _derive_bloom(sweep: Sweep) -> BloomAblationResult:
    return BloomAblationResult(
        exact_percent=exp_metrics.geomean_percent(sweep.runs(variant="exact")),
        bloom_percent=exp_metrics.geomean_percent(sweep.runs(variant="bloom")),
    )


def _json_bloom(result: BloomAblationResult) -> Dict[str, Any]:
    return {
        "exact_percent": result.exact_percent,
        "bloom_percent": result.bloom_percent,
        "delta_pp": result.delta_pp,
    }


BLOOM_SPEC = registry.register(ExperimentSpec(
    name="bloom",
    title="Ablation: conflict-detector set implementation",
    kind="ablation",
    suites=("spec2017",),
    variants=(
        Variant(label="exact"),
        Variant(label="bloom", machine=machine_with_bloom),
    ),
    derive=_derive_bloom,
    to_json=_json_bloom,
    description="Idealised exact conflict sets vs 4096-bit Bloom filters "
                "with real false positives.",
))


def run_bloom_ablation(
    suite_name: str = "spec2017", only: Optional[List[str]] = None
) -> BloomAblationResult:
    return registry.run_experiment(
        "bloom", suites=(suite_name,), only=only
    ).result
