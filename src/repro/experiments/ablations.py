"""Design-choice ablations beyond the paper's own sweeps.

Two knobs DESIGN.md calls out:

* **Threadlet count** — the paper evaluates 4 contexts; sweeping 1/2/4/8
  shows where the returns diminish (the SSB is resized proportionally so
  each slice keeps the table-1 2-KiB capacity).
* **Conflict-set implementation** — the paper idealises Bloom filters
  (no false positives modelled, section 6.1) and argues false aliasing is
  a second-order effect; comparing exact sets against real Bloom filters
  checks that claim in-model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.report import format_series, format_table
from ..uarch.config import MachineConfig, default_machine
from .runner import run_suite, suite_geomean


@dataclass
class ThreadletSweepResult:
    points: List[Tuple[int, float]]  # (contexts, geomean speedup %)

    def speedup_at(self, contexts: int) -> float:
        for n, v in self.points:
            if n == contexts:
                return v
        raise KeyError(contexts)

    def render(self) -> str:
        return format_series(
            "threadlet contexts", "geomean speedup %",
            [(str(n), v) for n, v in self.points],
            title="Ablation: threadlet count (SSB scaled to 2 KiB/slice)",
        )


def machine_with_threadlets(contexts: int) -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog,
        num_threadlets=contexts,
        ssb_total_bytes=2048 * contexts,
    )
    return machine


def run_threadlet_sweep(
    contexts=(2, 4, 8),
    suite_name: str = "spec2017",
    only: Optional[List[str]] = None,
) -> ThreadletSweepResult:
    points = []
    for n in contexts:
        runs = run_suite(suite_name, machine_with_threadlets(n), only=only)
        points.append((n, (suite_geomean(runs) - 1.0) * 100.0))
    return ThreadletSweepResult(points)


@dataclass
class BloomAblationResult:
    exact_percent: float
    bloom_percent: float

    @property
    def delta_pp(self) -> float:
        return self.exact_percent - self.bloom_percent

    def render(self) -> str:
        return format_table(
            ["conflict sets", "geomean speedup %"],
            [("exact (idealised, as in the paper)", f"{self.exact_percent:+.1f}"),
             ("4096-bit Bloom filters", f"{self.bloom_percent:+.1f}")],
            title="Ablation: conflict-detector set implementation",
        )


def machine_with_bloom() -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog, use_bloom_filters=True
    )
    return machine


def run_bloom_ablation(
    suite_name: str = "spec2017", only: Optional[List[str]] = None
) -> BloomAblationResult:
    exact = run_suite(suite_name, only=only)
    bloom = run_suite(suite_name, machine_with_bloom(), only=only)
    return BloomAblationResult(
        exact_percent=(suite_geomean(exact) - 1.0) * 100.0,
        bloom_percent=(suite_geomean(bloom) - 1.0) * 100.0,
    )
