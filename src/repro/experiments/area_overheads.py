"""Section 6.8: area and power overheads.

Combines the analytic area model (SSB + conflict detector + SMT support)
with dynamic overhead statistics measured on the suite: issued-instruction
increase (paper: +14%), L2 access increase (+1.7%) and L2 miss change
(-2.3%)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..analysis.area import (
    AreaReport,
    area_report,
    pollack_expected_speedup_percent,
)
from ..analysis.report import format_table
from ..uarch.config import MachineConfig
from . import registry
from .spec import ExperimentSpec, Sweep, configured_variant


@dataclass
class OverheadResult:
    area: AreaReport
    issued_increase_percent: float
    l2_access_increase_percent: float
    l2_miss_change_percent: float
    pollack_low: float
    pollack_high: float

    def render(self) -> str:
        rows = [
            ("SSB granule cache", f"{self.area.ssb_mm2:.3f} mm^2"),
            ("conflict detector", f"{self.area.conflict_mm2:.3f} mm^2"),
            ("new structures vs N1 core",
             f"{self.area.new_structures_percent:.1f}%"),
            ("total overhead (with SMT support)",
             f"{self.area.total_overhead_percent_low:.0f}-"
             f"{self.area.total_overhead_percent_high:.0f}%"),
            ("overhead if SMT already exists",
             f"~{self.area.overhead_if_smt_exists_percent:.0f}%"),
            ("issued instructions", f"{self.issued_increase_percent:+.1f}%"),
            ("L2 accesses", f"{self.l2_access_increase_percent:+.1f}%"),
            ("L2 misses", f"{self.l2_miss_change_percent:+.1f}%"),
            ("Pollack-rule expectation for that area",
             f"{self.pollack_low:.1f}-{self.pollack_high:.1f}%"),
        ]
        return format_table(
            ["quantity", "value"], rows,
            title="Section 6.8: area and power overheads",
        )


def _derive(sweep: Sweep) -> OverheadResult:
    (suite_name,) = sweep.spec.suites
    (variant,) = sweep.spec.variants
    cell = sweep.cell(suite_name, variant.label)

    base_issued = frog_issued = 0
    base_l2 = frog_l2 = 0
    base_l2m = frog_l2m = 0
    for run in cell.runs:
        for phase in run.phases:
            base_issued += phase.baseline.issued_instructions
            frog_issued += phase.loopfrog.issued_instructions
            base_l2 += phase.baseline.l2_accesses
            frog_l2 += phase.loopfrog.l2_accesses
            base_l2m += phase.baseline.l2_misses
            frog_l2m += phase.loopfrog.l2_misses

    report = area_report(cell.machine.loopfrog)
    return OverheadResult(
        area=report,
        issued_increase_percent=100.0 * (frog_issued / base_issued - 1.0),
        l2_access_increase_percent=100.0 * (frog_l2 / base_l2 - 1.0),
        l2_miss_change_percent=100.0 * (frog_l2m / max(1, base_l2m) - 1.0),
        pollack_low=pollack_expected_speedup_percent(
            report.total_overhead_percent_low
        ),
        pollack_high=pollack_expected_speedup_percent(
            report.total_overhead_percent_high
        ),
    )


def _json(result: OverheadResult) -> Dict[str, Any]:
    return {
        "ssb_mm2": result.area.ssb_mm2,
        "conflict_mm2": result.area.conflict_mm2,
        "new_structures_percent": result.area.new_structures_percent,
        "total_overhead_percent_low": result.area.total_overhead_percent_low,
        "total_overhead_percent_high":
            result.area.total_overhead_percent_high,
        "overhead_if_smt_exists_percent":
            result.area.overhead_if_smt_exists_percent,
        "issued_increase_percent": result.issued_increase_percent,
        "l2_access_increase_percent": result.l2_access_increase_percent,
        "l2_miss_change_percent": result.l2_miss_change_percent,
        "pollack_low": result.pollack_low,
        "pollack_high": result.pollack_high,
    }


SPEC = registry.register(ExperimentSpec(
    name="area",
    title="Section 6.8: area and power overheads",
    kind="report",
    suites=("spec2017",),
    # Deselection would mask the issue/L2 overheads on unprofitable
    # benchmarks, which are exactly what this section measures.
    variants=(configured_variant(label="default",
                                 dynamic_deselection=False),),
    derive=_derive,
    to_json=_json,
    description="Analytic area model plus measured issued-instruction and "
                "L2 traffic overheads.",
))


def run_area_overheads(
    machine: Optional[MachineConfig] = None, suite_name: str = "spec2017"
) -> OverheadResult:
    return registry.run_experiment(
        "area",
        suites=(suite_name,),
        variants=(configured_variant(machine, dynamic_deselection=False),),
    ).result
