"""Figure 7: threadlet utilisation over the benchmarks' lifetimes.

Paper: >= 2 threadlets active 42% of the time on the 13 profitable 2017
benchmarks (29% over all), all four active 23% (16% overall); via
Amdahl's law, a 43% geometric-mean in-region speedup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.report import format_table
from ..analysis.speedup import geometric_mean
from ..uarch.config import MachineConfig
from . import metrics as exp_metrics
from . import registry
from .runner import BenchmarkRun
from .spec import ExperimentSpec, Sweep, configured_variant


@dataclass
class UtilizationRow:
    name: str
    at_least_2: float  # fraction of cycles
    at_least_3: float
    all_4: float


@dataclass
class Fig7Result:
    rows: List[UtilizationRow]
    profitable_names: List[str]

    def _mean(self, names, attr) -> float:
        return exp_metrics.mean(
            getattr(r, attr) for r in self.rows if r.name in names
        )

    @property
    def profitable_at_least_2(self) -> float:
        return self._mean(self.profitable_names, "at_least_2")

    @property
    def overall_at_least_2(self) -> float:
        return self._mean([r.name for r in self.rows], "at_least_2")

    @property
    def profitable_all_4(self) -> float:
        return self._mean(self.profitable_names, "all_4")

    @property
    def overall_all_4(self) -> float:
        return self._mean([r.name for r in self.rows], "all_4")

    def render(self) -> str:
        table = format_table(
            ["benchmark", ">=2 active", ">=3 active", "4 active"],
            [
                (r.name, f"{r.at_least_2:.0%}", f"{r.at_least_3:.0%}",
                 f"{r.all_4:.0%}")
                for r in self.rows
            ],
            title="Figure 7: speculative threadlet utilisation over time",
        )
        summary = (
            f"profitable benchmarks: >=2 active {self.profitable_at_least_2:.0%} "
            f"of cycles, all 4 active {self.profitable_all_4:.0%}\n"
            f"all benchmarks:        >=2 active {self.overall_at_least_2:.0%} "
            f"of cycles, all 4 active {self.overall_all_4:.0%}"
        )
        return table + "\n" + summary


def _derive(sweep: Sweep) -> Fig7Result:
    runs = sweep.runs()
    rows = []
    for run in runs:
        stats = run.phases[0].loopfrog
        rows.append(
            UtilizationRow(
                name=run.name,
                at_least_2=stats.threadlet_utilization(2),
                at_least_3=stats.threadlet_utilization(3),
                all_4=stats.threadlet_utilization(4),
            )
        )
    return Fig7Result(rows, exp_metrics.profitable_names(runs))


def _json(result: Fig7Result) -> Dict[str, Any]:
    return {
        "rows": sorted(
            (
                {
                    "name": r.name,
                    "at_least_2": r.at_least_2,
                    "at_least_3": r.at_least_3,
                    "all_4": r.all_4,
                }
                for r in result.rows
            ),
            key=lambda r: r["name"],
        ),
        "profitable": sorted(result.profitable_names),
        "profitable_at_least_2": result.profitable_at_least_2,
        "overall_at_least_2": result.overall_at_least_2,
        "profitable_all_4": result.profitable_all_4,
        "overall_all_4": result.overall_all_4,
    }


SPEC = registry.register(ExperimentSpec(
    name="fig7",
    title="Figure 7: speculative threadlet utilisation over time",
    kind="figure",
    suites=("spec2017",),
    derive=_derive,
    to_json=_json,
    description="How often >=2/>=3/4 threadlet contexts are active, on "
                "profitable benchmarks vs overall.",
))


def run_fig7(
    machine: Optional[MachineConfig] = None, suite_name: str = "spec2017"
) -> Fig7Result:
    return registry.run_experiment(
        "fig7", suites=(suite_name,), variants=(configured_variant(machine),)
    ).result


def in_region_geomean_speedup(runs: List[BenchmarkRun]) -> float:
    """The paper's section-6.3 in-region speedup via per-loop cycles."""
    values = []
    for run in runs:
        for label, value in run.region_speedups().items():
            if value > 0:
                values.append(value)
    return geometric_mean(values) if values else 1.0
