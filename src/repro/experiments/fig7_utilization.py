"""Figure 7: threadlet utilisation over the benchmarks' lifetimes.

Paper: >= 2 threadlets active 42% of the time on the 13 profitable 2017
benchmarks (29% over all), all four active 23% (16% overall); via
Amdahl's law, a 43% geometric-mean in-region speedup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.report import format_table
from ..analysis.speedup import geometric_mean
from ..uarch.config import MachineConfig
from .runner import BenchmarkRun, run_suite


@dataclass
class UtilizationRow:
    name: str
    at_least_2: float  # fraction of cycles
    at_least_3: float
    all_4: float


@dataclass
class Fig7Result:
    rows: List[UtilizationRow]
    profitable_names: List[str]

    def _mean(self, names, attr) -> float:
        rows = [r for r in self.rows if r.name in names]
        if not rows:
            return 0.0
        return sum(getattr(r, attr) for r in rows) / len(rows)

    @property
    def profitable_at_least_2(self) -> float:
        return self._mean(self.profitable_names, "at_least_2")

    @property
    def overall_at_least_2(self) -> float:
        return self._mean([r.name for r in self.rows], "at_least_2")

    @property
    def profitable_all_4(self) -> float:
        return self._mean(self.profitable_names, "all_4")

    @property
    def overall_all_4(self) -> float:
        return self._mean([r.name for r in self.rows], "all_4")

    def render(self) -> str:
        table = format_table(
            ["benchmark", ">=2 active", ">=3 active", "4 active"],
            [
                (r.name, f"{r.at_least_2:.0%}", f"{r.at_least_3:.0%}",
                 f"{r.all_4:.0%}")
                for r in self.rows
            ],
            title="Figure 7: speculative threadlet utilisation over time",
        )
        summary = (
            f"profitable benchmarks: >=2 active {self.profitable_at_least_2:.0%} "
            f"of cycles, all 4 active {self.profitable_all_4:.0%}\n"
            f"all benchmarks:        >=2 active {self.overall_at_least_2:.0%} "
            f"of cycles, all 4 active {self.overall_all_4:.0%}"
        )
        return table + "\n" + summary


def run_fig7(
    machine: Optional[MachineConfig] = None, suite_name: str = "spec2017"
) -> Fig7Result:
    runs = run_suite(suite_name, machine)
    rows = []
    for run in runs:
        stats = run.phases[0].loopfrog
        rows.append(
            UtilizationRow(
                name=run.name,
                at_least_2=stats.threadlet_utilization(2),
                at_least_3=stats.threadlet_utilization(3),
                all_4=stats.threadlet_utilization(4),
            )
        )
    profitable = [r.name for r in runs if r.speedup_percent > 1.0]
    return Fig7Result(rows, profitable)


def in_region_geomean_speedup(runs: List[BenchmarkRun]) -> float:
    """The paper's section-6.3 in-region speedup via per-loop cycles."""
    values = []
    for run in runs:
        for label, value in run.region_speedups().items():
            if value > 0:
                values.append(value)
    return geometric_mean(values) if values else 1.0
