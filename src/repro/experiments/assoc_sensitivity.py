"""Section 6.6 (second half): SSB associativity and the victim buffer.

Paper: limiting slice associativity to 4/8 ways costs 2.0%/1.4% vs the
headline; adding a small shared victim buffer (8 entries) reduces both to
1.2%, with omnetpp and imagick the main victims."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..uarch.config import MachineConfig, default_machine
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, Variant

# (label, associativity, victim entries); 0 ways = fully associative.
CONFIGURATIONS: List[Tuple[str, int, int]] = [
    ("full (headline)", 0, 0),
    ("4-way", 4, 0),
    ("8-way", 8, 0),
    ("4-way + 8-entry victim", 4, 8),
    ("8-way + 8-entry victim", 8, 8),
]


@dataclass
class AssocPoint:
    label: str
    associativity: int       # 0 = fully associative (not modelled)
    victim_entries: int
    geomean_percent: float
    per_benchmark: Dict[str, float]


@dataclass
class AssocResult:
    points: List[AssocPoint]

    def geomean(self, label: str) -> float:
        for p in self.points:
            if p.label == label:
                return p.geomean_percent
        raise KeyError(label)

    def benchmark(self, label: str, name: str) -> float:
        for p in self.points:
            if p.label == label:
                return p.per_benchmark[name]
        raise KeyError(label)

    def worst_hit(self, label: str) -> str:
        """The benchmark losing the most speedup vs the headline config."""
        base = next(p for p in self.points if p.associativity == 0)
        point = next(p for p in self.points if p.label == label)
        return max(
            base.per_benchmark,
            key=lambda n: base.per_benchmark[n] - point.per_benchmark[n],
        )

    def render(self) -> str:
        body = format_table(
            ["configuration", "geomean speedup %"],
            [(p.label, f"{p.geomean_percent:+.1f}") for p in self.points],
            title="Section 6.6: SSB associativity sensitivity (SPEC 2017)",
        )
        victim = self.worst_hit("4-way")
        full = self.benchmark("full (headline)", victim)
        limited = self.benchmark("4-way", victim)
        recovered = self.benchmark("4-way + 8-entry victim", victim)
        body += (
            f"\nworst hit at 4-way: {victim} ({full:+.1f}% -> {limited:+.1f}%,"
            f" victim buffer recovers to {recovered:+.1f}%)"
        )
        return body


def machine_with_assoc(assoc: int, victim: int = 0) -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog,
        ssb_associativity=assoc,
        ssb_victim_entries=victim,
    )
    return machine


def _variants(configurations) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=label,
            machine=partial(machine_with_assoc, assoc, victim),
            params={"assoc": assoc, "victim": victim},
        )
        for label, assoc, victim in configurations
    )


def _derive(sweep: Sweep) -> AssocResult:
    points = []
    for variant in sweep.spec.variants:
        runs = sweep.runs(variant=variant.label)
        points.append(
            AssocPoint(
                variant.label,
                variant.params["assoc"],
                variant.params["victim"],
                exp_metrics.geomean_percent(runs),
                {r.name: r.speedup_percent for r in runs},
            )
        )
    return AssocResult(points)


def _json(result: AssocResult) -> Dict[str, Any]:
    return {
        "points": [
            {
                "label": p.label,
                "associativity": p.associativity,
                "victim_entries": p.victim_entries,
                "geomean_percent": p.geomean_percent,
                "per_benchmark": dict(sorted(p.per_benchmark.items())),
            }
            for p in result.points
        ]
    }


SPEC = registry.register(ExperimentSpec(
    name="assoc",
    title="Section 6.6: SSB associativity sensitivity",
    kind="ablation",
    suites=("spec2017",),
    variants=_variants(CONFIGURATIONS),
    derive=_derive,
    to_json=_json,
    description="Limited SSB associativity (4/8 ways) with and without a "
                "small shared victim buffer vs the fully associative "
                "headline.",
))


def run_assoc_sensitivity(
    suite_name: str = "spec2017", only: Optional[List[str]] = None
) -> AssocResult:
    return registry.run_experiment(
        "assoc", suites=(suite_name,), only=only
    ).result
