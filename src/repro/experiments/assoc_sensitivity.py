"""Section 6.6 (second half): SSB associativity and the victim buffer.

Paper: limiting slice associativity to 4/8 ways costs 2.0%/1.4% vs the
headline; adding a small shared victim buffer (8 entries) reduces both to
1.2%, with omnetpp and imagick the main victims."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_table
from ..uarch.config import MachineConfig, default_machine
from .runner import run_suite, suite_geomean


@dataclass
class AssocPoint:
    label: str
    associativity: int       # 0 = fully associative (not modelled)
    victim_entries: int
    geomean_percent: float
    per_benchmark: Dict[str, float]


@dataclass
class AssocResult:
    points: List[AssocPoint]

    def geomean(self, label: str) -> float:
        for p in self.points:
            if p.label == label:
                return p.geomean_percent
        raise KeyError(label)

    def benchmark(self, label: str, name: str) -> float:
        for p in self.points:
            if p.label == label:
                return p.per_benchmark[name]
        raise KeyError(label)

    def worst_hit(self, label: str) -> str:
        """The benchmark losing the most speedup vs the headline config."""
        base = next(p for p in self.points if p.associativity == 0)
        point = next(p for p in self.points if p.label == label)
        return max(
            base.per_benchmark,
            key=lambda n: base.per_benchmark[n] - point.per_benchmark[n],
        )

    def render(self) -> str:
        body = format_table(
            ["configuration", "geomean speedup %"],
            [(p.label, f"{p.geomean_percent:+.1f}") for p in self.points],
            title="Section 6.6: SSB associativity sensitivity (SPEC 2017)",
        )
        victim = self.worst_hit("4-way")
        full = self.benchmark("full (headline)", victim)
        limited = self.benchmark("4-way", victim)
        recovered = self.benchmark("4-way + 8-entry victim", victim)
        body += (
            f"\nworst hit at 4-way: {victim} ({full:+.1f}% -> {limited:+.1f}%,"
            f" victim buffer recovers to {recovered:+.1f}%)"
        )
        return body


def machine_with_assoc(assoc: int, victim: int = 0) -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog,
        ssb_associativity=assoc,
        ssb_victim_entries=victim,
    )
    return machine


def run_assoc_sensitivity(
    suite_name: str = "spec2017", only: Optional[List[str]] = None
) -> AssocResult:
    configurations: List[Tuple[str, int, int]] = [
        ("full (headline)", 0, 0),
        ("4-way", 4, 0),
        ("8-way", 8, 0),
        ("4-way + 8-entry victim", 4, 8),
        ("8-way + 8-entry victim", 8, 8),
    ]
    points = []
    for label, assoc, victim in configurations:
        runs = run_suite(
            suite_name, machine_with_assoc(assoc, victim), only=only
        )
        points.append(
            AssocPoint(
                label, assoc, victim, (suite_geomean(runs) - 1) * 100,
                {r.name: r.speedup_percent for r in runs},
            )
        )
    return AssocResult(points)
