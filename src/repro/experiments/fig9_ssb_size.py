"""Figure 9: sensitivity of speedups to SSB size (default 8 KiB total).

Paper: 32 KiB gains <0.1 pp over 8 KiB, 2 KiB loses only 0.4 pp, and even
512 B still gains 6.2% — size acts almost binarily per loop (fits or
doesn't)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.report import format_series
from ..uarch.config import MachineConfig, default_machine
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, Variant

SIZES = (512, 2048, 8192, 32768)


@dataclass
class Fig9Result:
    points: List[Tuple[int, float]]  # (ssb bytes, geomean speedup %)

    def speedup_at(self, size: int) -> float:
        for s, v in self.points:
            if s == size:
                return v
        raise KeyError(size)

    def render(self) -> str:
        return format_series(
            "SSB size", "geomean speedup %",
            [(f"{s // 1024} KiB" if s >= 1024 else f"{s} B", v)
             for s, v in self.points],
            title="Figure 9: sensitivity to SSB size (SPEC 2017 stand-ins)",
        )


def machine_with_ssb_size(size_bytes: int) -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog, ssb_total_bytes=size_bytes
    )
    return machine


def _variants(sizes) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=f"ssb-{size}",
            machine=partial(machine_with_ssb_size, size),
            params={"size": size},
        )
        for size in sizes
    )


def _derive(sweep: Sweep) -> Fig9Result:
    points = []
    for variant in sweep.spec.variants:
        runs = sweep.runs(variant=variant.label)
        points.append(
            (variant.params["size"], exp_metrics.geomean_percent(runs))
        )
    return Fig9Result(points)


def _json(result: Fig9Result) -> Dict[str, Any]:
    return {
        "points": [
            {"ssb_bytes": s, "geomean_percent": v} for s, v in result.points
        ]
    }


SPEC = registry.register(ExperimentSpec(
    name="fig9",
    title="Figure 9: sensitivity to SSB size",
    kind="figure",
    suites=("spec2017",),
    variants=_variants(SIZES),
    derive=_derive,
    to_json=_json,
    description="Geomean speedup as the store speculation buffer shrinks "
                "from 32 KiB to 512 B.",
))


def run_fig9(
    sizes=SIZES, suite_name: str = "spec2017", only: Optional[List[str]] = None
) -> Fig9Result:
    return registry.run_experiment(
        "fig9", suites=(suite_name,), variants=_variants(sizes), only=only
    ).result
