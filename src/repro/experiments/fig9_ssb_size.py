"""Figure 9: sensitivity of speedups to SSB size (default 8 KiB total).

Paper: 32 KiB gains <0.1 pp over 8 KiB, 2 KiB loses only 0.4 pp, and even
512 B still gains 6.2% — size acts almost binarily per loop (fits or
doesn't)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.report import format_series
from ..uarch.config import MachineConfig, default_machine
from .runner import run_suite, suite_geomean

SIZES = (512, 2048, 8192, 32768)


@dataclass
class Fig9Result:
    points: List[Tuple[int, float]]  # (ssb bytes, geomean speedup %)

    def speedup_at(self, size: int) -> float:
        for s, v in self.points:
            if s == size:
                return v
        raise KeyError(size)

    def render(self) -> str:
        return format_series(
            "SSB size", "geomean speedup %",
            [(f"{s // 1024} KiB" if s >= 1024 else f"{s} B", v)
             for s, v in self.points],
            title="Figure 9: sensitivity to SSB size (SPEC 2017 stand-ins)",
        )


def machine_with_ssb_size(size_bytes: int) -> MachineConfig:
    machine = default_machine()
    machine.loopfrog = dataclasses.replace(
        machine.loopfrog, ssb_total_bytes=size_bytes
    )
    return machine


def run_fig9(
    sizes=SIZES, suite_name: str = "spec2017", only: Optional[List[str]] = None
) -> Fig9Result:
    points = []
    for size in sizes:
        runs = run_suite(suite_name, machine_with_ssb_size(size), only=only)
        points.append((size, (suite_geomean(runs) - 1.0) * 100.0))
    return Fig9Result(points)
