"""Table 2: sources of performance gains.

The paper attributes each profitable loop's whole gain to a dominant
category: memory parallelism (17 loops / 29%), control dependencies
(9 / 23%), dependency chains (2 / 12%), branch-condition prefetching
(6 / 32%) and data-value prefetching (4 / 3%)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..analysis.categorize import (
    CategoryShare,
    categorize_runs,
    phase_classifications,
)
from ..analysis.report import format_table
from ..uarch.config import MachineConfig
from ..workloads.base import ALL_CATEGORIES
from . import metrics as exp_metrics
from . import registry
from .spec import ExperimentSpec, Sweep, configured_variant

_CATEGORY_TITLES = {
    "memory_parallelism": ("True parallelism", "Memory parallelism"),
    "control_dependencies": ("True parallelism", "Control dependencies"),
    "dependency_chains": ("True parallelism", "Dependency chains"),
    "branch_condition_prefetch": ("Prefetching", "Branch conditions"),
    "data_value_prefetch": ("Prefetching", "Data values"),
}


@dataclass
class Table2Result:
    shares: List[CategoryShare]
    classified: Dict[str, str]  # benchmark -> category
    expected: Dict[str, str]    # benchmark -> suite-declared category

    def loops_in(self, category: str) -> int:
        for share in self.shares:
            if share.category == category:
                return share.loops
        raise KeyError(category)

    def fraction_of(self, category: str) -> float:
        for share in self.shares:
            if share.category == category:
                return share.speedup_fraction
        raise KeyError(category)

    @property
    def classification_agreement(self) -> float:
        """Fraction of profitable benchmarks whose heuristic classification
        matches the behaviour the kernel was engineered to show."""
        keys = [k for k in self.classified if k in self.expected]
        if not keys:
            return 0.0
        hits = sum(1 for k in keys if self.classified[k] == self.expected[k])
        return hits / len(keys)

    def render(self) -> str:
        rows = []
        for share in self.shares:
            group, sub = _CATEGORY_TITLES[share.category]
            rows.append(
                (group, sub, share.loops, f"{share.speedup_fraction:.0%}")
            )
        return format_table(
            ["Category", "Sub-category", "Loops", "Fraction of speedup"],
            rows,
            title="Table 2: sources of performance gains",
        )


def _derive(sweep: Sweep) -> Table2Result:
    runs = sweep.runs()
    profitable = exp_metrics.profitable(runs)
    shares = categorize_runs(profitable)
    classified = phase_classifications(profitable)
    expected: Dict[str, str] = {}
    for run in profitable:
        for workload, _ in run.benchmark.phases:
            if workload.category in ALL_CATEGORIES:
                expected[workload.name] = workload.category
    return Table2Result(shares, classified, expected)


def _json(result: Table2Result) -> Dict[str, Any]:
    return {
        "shares": [
            {
                "category": s.category,
                "loops": s.loops,
                "speedup_fraction": s.speedup_fraction,
            }
            for s in result.shares
        ],
        "classified": dict(sorted(result.classified.items())),
        "classification_agreement": result.classification_agreement,
    }


SPEC = registry.register(ExperimentSpec(
    name="table2",
    title="Table 2: sources of performance gains",
    kind="table",
    suites=("spec2017", "spec2006"),
    derive=_derive,
    to_json=_json,
    description="Attributes each profitable benchmark's gain to a dominant "
                "mechanism (parallelism vs prefetching sub-categories).",
))


def run_table2(
    machine: Optional[MachineConfig] = None,
    suite_names=("spec2017", "spec2006"),
) -> Table2Result:
    return registry.run_experiment(
        "table2",
        suites=tuple(suite_names),
        variants=(configured_variant(machine),),
    ).result
