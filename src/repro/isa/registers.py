"""Register-file conventions for the reproduction ISA.

The machine has 32 integer registers (``r0``..``r31``), 16 floating-point
registers (``f0``..``f15``), a link register ``ra`` and a stack pointer
``sp``.  The Frog compiler's calling convention (see
:mod:`repro.compiler.regalloc`) reserves a handful of these.
"""

from __future__ import annotations

from typing import Dict, List

NUM_INT_REGS = 32
NUM_FP_REGS = 16

INT_REGS: List[str] = [f"r{i}" for i in range(NUM_INT_REGS)]
FP_REGS: List[str] = [f"f{i}" for i in range(NUM_FP_REGS)]
SPECIAL_REGS: List[str] = ["ra", "sp"]
ALL_REGS: List[str] = INT_REGS + FP_REGS + SPECIAL_REGS

# Calling convention used by the Frog compiler: first arguments in r1..r4 /
# f1..f4, return value in r1 / f1, r20..r31 + f10..f15 are callee-saved
# (our non-recursive compiled functions simply avoid them).
ARG_REGS: List[str] = ["r1", "r2", "r3", "r4"]
FP_ARG_REGS: List[str] = ["f1", "f2", "f3", "f4"]
RETURN_REG = "r1"
FP_RETURN_REG = "f1"

# Registers the register allocator may hand out freely.
ALLOCATABLE_INT: List[str] = [f"r{i}" for i in range(5, NUM_INT_REGS)]
ALLOCATABLE_FP: List[str] = [f"f{i}" for i in range(5, NUM_FP_REGS)]


def is_int_reg(name: str) -> bool:
    """True for integer-valued registers (including ``ra`` and ``sp``)."""
    return name.startswith("r") or name in ("ra", "sp")


def is_fp_reg(name: str) -> bool:
    """True for floating-point registers."""
    return name.startswith("f") and name != "fp"


def is_register(name: str) -> bool:
    return name in _REG_SET


_REG_SET = frozenset(ALL_REGS)


def initial_register_file() -> Dict[str, float]:
    """A fresh register file: integer registers 0, FP registers 0.0."""
    regs: Dict[str, float] = {}
    for r in INT_REGS + SPECIAL_REGS:
        regs[r] = 0
    for f in FP_REGS:
        regs[f] = 0.0
    return regs
