"""Program container: a resolved sequence of instructions plus labels.

A :class:`Program` is the unit everything downstream consumes — the
functional executor, the timing models, and the TLS baseline models.  It is
immutable after construction: labels, branch targets and hint regions are
resolved to instruction indices exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import AssemblerError
from .instructions import Instruction, Opcode


class Program:
    """An assembled program.

    Args:
        instructions: the instruction sequence, in layout order.
        labels: mapping from label name to instruction index.  Labels that
            appear on instructions (``instr.label``) are merged in.
        name: human-readable program name (used in reports).
    """

    def __init__(
        self,
        instructions: Iterable[Instruction],
        labels: Optional[Dict[str, int]] = None,
        name: str = "<program>",
    ):
        self.name = name
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        for i, instr in enumerate(self.instructions):
            instr.index = i
            if instr.label is not None:
                existing = self.labels.get(instr.label)
                if existing is not None and existing != i:
                    raise AssemblerError(f"duplicate label {instr.label!r}")
                self.labels[instr.label] = i
        self._resolve()

    def _resolve(self) -> None:
        """Resolve branch targets and hint regions to instruction indices."""
        for instr in self.instructions:
            if instr.target is not None:
                if instr.target not in self.labels:
                    raise AssemblerError(
                        f"undefined branch target {instr.target!r} in {self.name}"
                    )
                instr.target_index = self.labels[instr.target]
            if instr.region is not None:
                if instr.region not in self.labels:
                    raise AssemblerError(
                        f"undefined hint region {instr.region!r} in {self.name}"
                    )
                instr.region_index = self.labels[instr.region]

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    @property
    def has_hints(self) -> bool:
        """True if the program contains any LoopFrog hint instructions."""
        return any(i.is_hint for i in self.instructions)

    def hint_regions(self) -> Dict[str, int]:
        """Map of region label -> continuation index for all hints present."""
        regions: Dict[str, int] = {}
        for instr in self.instructions:
            if instr.is_hint and instr.region is not None:
                regions[instr.region] = instr.region_index  # type: ignore[assignment]
        return regions

    def label_at(self, index: int) -> Optional[str]:
        """The label attached to instruction ``index``, if any."""
        instr = self.instructions[index]
        if instr.label:
            return instr.label
        for name, target in self.labels.items():
            if target == index:
                return name
        return None

    def without_hints(self) -> "Program":
        """A copy of this program with hints replaced by ``nop``.

        Used to build the strict no-hint baseline binary; the normal
        baseline run instead treats hints as nops in the pipeline, matching
        the paper's "hints are architecturally backwards compatible" claim.
        """
        new_instrs = []
        for instr in self.instructions:
            if instr.is_hint:
                new_instrs.append(
                    Instruction(Opcode.NOP, label=instr.label, comment=str(instr))
                )
            else:
                new_instrs.append(_copy_instruction(instr))
        return Program(new_instrs, dict(self.labels), name=self.name + ":nohints")

    def to_asm(self) -> str:
        """Re-emittable assembly text: ``assemble(prog.to_asm())`` yields a
        structurally identical program (see the round-trip tests)."""
        index_to_labels: Dict[int, list] = {}
        for name, target in self.labels.items():
            index_to_labels.setdefault(target, []).append(name)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in sorted(index_to_labels.get(i, [])):
                lines.append(f"{label}:")
            lines.append("    " + _asm_text(instr))
        # Labels pointing one past the end (trailing labels).
        for label in sorted(index_to_labels.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"

    def disassemble(self) -> str:
        """Human-readable listing with indices and labels."""
        lines = []
        index_to_label = {v: k for k, v in self.labels.items()}
        for i, instr in enumerate(self.instructions):
            label = index_to_label.get(i)
            prefix = f"{label}:" if label else ""
            lines.append(f"{i:5d}  {prefix:>16s}  {_render(instr)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.instructions)} instructions)"


def _render(instr: Instruction) -> str:
    text = str(instr)
    if instr.label:
        # Label is rendered separately by disassemble().
        text = text.split(": ", 1)[-1]
    return text


def _asm_text(instr: Instruction) -> str:
    """Assembler-compatible text for one instruction (no label)."""
    mnemonic = instr.opcode.value
    if instr.is_memory and instr.size != 8:
        mnemonic = f"{mnemonic}{instr.size}"
    operands = []
    if instr.dest is not None:
        operands.append(instr.dest)
    operands.extend(instr.srcs)
    if instr.imm is not None:
        imm = instr.imm
        operands.append(repr(imm) if isinstance(imm, float) else str(imm))
    if instr.target is not None:
        operands.append(instr.target)
    if instr.region is not None:
        operands.append(instr.region)
    if operands:
        return f"{mnemonic} {', '.join(operands)}"
    return mnemonic


def _copy_instruction(instr: Instruction) -> Instruction:
    return Instruction(
        opcode=instr.opcode,
        dest=instr.dest,
        srcs=instr.srcs,
        imm=instr.imm,
        size=instr.size,
        target=instr.target,
        region=instr.region,
        label=instr.label,
        comment=instr.comment,
    )
