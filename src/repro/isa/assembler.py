"""Two-pass assembler for the reproduction ISA.

Accepts a small, readable text format::

    # comment
        li   r1, 100          ; immediates may be decimal, hex or float
    loop:
        load r2, r1, 0        ; dest, base, offset (8-byte access)
        load4 r2, r1, 0       ; 4-byte access (suffix 1/2/4/8)
        add  r3, r3, r2
        add  r1, r1, 8        ; reg-immediate form of ALU ops
        sub  r4, r4, 1
        bnez r4, loop
        detach cont           ; LoopFrog hints carry a region label
        halt

Labels end with ``:`` and may share a line with an instruction.  Both ``#``
and ``;`` start comments.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import AssemblerError
from .instructions import Instruction, Opcode
from .program import Program
from .registers import is_register

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")

# Opcodes whose ALU-style operands are ``dest, src0[, src1|imm]``.
_ALU3 = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE, Opcode.MIN, Opcode.MAX,
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FMIN, Opcode.FMAX, Opcode.FSLT, Opcode.FSLE, Opcode.FSEQ,
}
_ALU2 = {Opcode.MOV, Opcode.FMOV, Opcode.FSQRT, Opcode.FABS, Opcode.FCVT, Opcode.ICVT}
_MEM_SUFFIX = {"": 8, "1": 1, "2": 2, "4": 4, "8": 8}


def assemble(text: str, name: str = "<asm>") -> Program:
    """Assemble ``text`` into a resolved :class:`Program`.

    Raises:
        AssemblerError: on any syntax error, unknown opcode or register, or
            unresolved label.
    """
    instructions: List[Instruction] = []
    labels = {}
    pending_labels: List[str] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        # Peel off any leading "label:" prefixes.
        while ":" in line:
            head, _, rest = line.partition(":")
            head = head.strip()
            if not _LABEL_RE.match(head):
                break
            if head in labels:
                raise AssemblerError(f"duplicate label {head!r}", line_no, raw)
            labels[head] = len(instructions)
            pending_labels.append(head)
            line = rest.strip()
        if not line:
            continue
        instr = _parse_instruction(line, line_no, raw)
        if pending_labels:
            instr.label = pending_labels[0]
            pending_labels = []
        instructions.append(instr)

    if pending_labels:
        # Trailing label: attach to an implicit halt so jumps to it resolve.
        instr = Instruction(Opcode.HALT, label=pending_labels[0])
        instructions.append(instr)

    return Program(instructions, labels, name=name)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_instruction(line: str, line_no: int, raw: str) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = [o.strip() for o in operand_text.split(",")] if operand_text else []

    opcode, size = _lookup_opcode(mnemonic, line_no, raw)

    try:
        return _build(opcode, size, operands, line_no, raw)
    except AssemblerError:
        raise
    except (ValueError, IndexError) as exc:
        raise AssemblerError(f"bad operands ({exc})", line_no, raw)


def _lookup_opcode(mnemonic: str, line_no: int, raw: str) -> Tuple[Opcode, int]:
    # Memory mnemonics may carry a size suffix: load4, store2, fload8 ...
    for base in ("fload", "fstore", "load", "store"):
        if mnemonic.startswith(base):
            suffix = mnemonic[len(base):]
            if suffix in _MEM_SUFFIX:
                return Opcode(base), _MEM_SUFFIX[suffix]
    try:
        return Opcode(mnemonic), 8
    except ValueError:
        raise AssemblerError(f"unknown opcode {mnemonic!r}", line_no, raw)


def _build(
    opcode: Opcode, size: int, ops: List[str], line_no: int, raw: str
) -> Instruction:
    def reg(text: str) -> str:
        if not is_register(text):
            raise AssemblerError(f"not a register: {text!r}", line_no, raw)
        return text

    def reg_or_imm(text: str) -> Tuple[Optional[str], Optional[float]]:
        if is_register(text):
            return text, None
        return None, _parse_number(text, line_no, raw)

    def expect(n: int) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"{opcode.value} expects {n} operands, got {len(ops)}", line_no, raw
            )

    if opcode in _ALU3:
        expect(3)
        src1, imm = reg_or_imm(ops[2])
        srcs = (reg(ops[1]),) if src1 is None else (reg(ops[1]), src1)
        return Instruction(opcode, dest=reg(ops[0]), srcs=srcs, imm=imm)

    if opcode in _ALU2:
        expect(2)
        return Instruction(opcode, dest=reg(ops[0]), srcs=(reg(ops[1]),))

    if opcode in (Opcode.LI, Opcode.FLI):
        expect(2)
        return Instruction(opcode, dest=reg(ops[0]), imm=_parse_number(ops[1], line_no, raw))

    if opcode in (Opcode.LOAD, Opcode.FLOAD):
        expect(3)
        return Instruction(
            opcode,
            dest=reg(ops[0]),
            srcs=(reg(ops[1]),),
            imm=_parse_number(ops[2], line_no, raw),
            size=size,
        )

    if opcode in (Opcode.STORE, Opcode.FSTORE):
        expect(3)
        return Instruction(
            opcode,
            srcs=(reg(ops[0]), reg(ops[1])),
            imm=_parse_number(ops[2], line_no, raw),
            size=size,
        )

    if opcode in (Opcode.JMP, Opcode.CALL):
        expect(1)
        return Instruction(opcode, target=ops[0])

    if opcode in (Opcode.BEQZ, Opcode.BNEZ):
        expect(2)
        return Instruction(opcode, srcs=(reg(ops[0]),), target=ops[1])

    if opcode is Opcode.RET:
        expect(0)
        return Instruction(opcode)

    if opcode in (Opcode.DETACH, Opcode.REATTACH, Opcode.SYNC):
        expect(1)
        return Instruction(opcode, region=ops[0])

    if opcode in (Opcode.NOP, Opcode.HALT):
        expect(0)
        return Instruction(opcode)

    raise AssemblerError(f"unhandled opcode {opcode!r}", line_no, raw)


def _parse_number(text: str, line_no: int, raw: str) -> float:
    text = text.strip()
    try:
        if text.lower().startswith("0x") or text.lower().startswith("-0x"):
            return int(text, 16)
        if any(c in text for c in ".eE") and not text.lower().startswith("0x"):
            return float(text)
        return int(text)
    except ValueError:
        raise AssemblerError(f"bad number {text!r}", line_no, raw)
