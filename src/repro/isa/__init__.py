"""Reproduction ISA: a RISC-like register machine plus LoopFrog hints.

Public surface:

* :class:`~repro.isa.instructions.Instruction`, :class:`~repro.isa.instructions.Opcode`,
  :class:`~repro.isa.instructions.OpClass` — instruction definitions.
* :class:`~repro.isa.program.Program` — a resolved instruction sequence.
* :func:`~repro.isa.assembler.assemble` — text assembler.
* register-file conventions in :mod:`repro.isa.registers`.
"""

from .assembler import assemble
from .instructions import (
    BRANCH_OPCODES,
    CONDITIONAL_BRANCHES,
    DEFAULT_LATENCY,
    HINT_OPCODES,
    Instruction,
    LOAD_OPCODES,
    MEMORY_OPCODES,
    OpClass,
    Opcode,
    STORE_OPCODES,
)
from .program import Program
from . import registers

__all__ = [
    "Instruction",
    "Opcode",
    "OpClass",
    "Program",
    "assemble",
    "registers",
    "HINT_OPCODES",
    "BRANCH_OPCODES",
    "CONDITIONAL_BRANCHES",
    "MEMORY_OPCODES",
    "LOAD_OPCODES",
    "STORE_OPCODES",
    "DEFAULT_LATENCY",
]
