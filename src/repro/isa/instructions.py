"""Instruction definitions for the reproduction ISA.

The ISA is a small, RISC-like register machine extended with the three
LoopFrog hint instructions (``detach``, ``reattach``, ``sync``) described in
section 3.1 of the paper.  It is deliberately simple: enough to express the
loop kernels the evaluation needs, while keeping the functional executor and
the timing model tractable.

Register namespaces
    ``r0``..``r31``   64-bit integer registers (``r0`` is *not* hardwired;
                      the compiler treats it as a normal register).
    ``f0``..``f15``   IEEE-754 double registers.
    ``ra``            link register written by ``call`` and read by ``ret``.
    ``sp``            stack pointer, used by the Frog calling convention.

Memory is byte addressed; loads and stores carry an access ``size`` of 1, 2,
4 or 8 bytes.  This matters for the SSB, whose conflict granularity (paper
section 4.1.1) is measured in bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class OpClass(enum.Enum):
    """Functional-unit class of an instruction (used by the timing model)."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FP_SQRT = "fp_sqrt"
    MEM_READ = "mem_read"
    MEM_WRITE = "mem_write"
    BRANCH = "branch"
    HINT = "hint"
    SYSTEM = "system"


class Opcode(enum.Enum):
    """All opcodes understood by the assembler and executor."""

    # Integer ALU (register-register or register-immediate via ``imm``).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"  # set-less-than (signed): dest = src0 < src1
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    MIN = "min"
    MAX = "max"
    MOV = "mov"  # register copy
    LI = "li"  # load immediate

    # Floating point (double precision).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FMIN = "fmin"
    FMAX = "fmax"
    FABS = "fabs"
    FMOV = "fmov"
    FLI = "fli"  # load float immediate
    FCVT = "fcvt"  # int reg -> float reg
    ICVT = "icvt"  # float reg -> int reg (truncating)
    FSLT = "fslt"  # float compare, integer dest
    FSLE = "fsle"
    FSEQ = "fseq"

    # Memory.  ``load dest, base, offset`` / ``store src, base, offset``.
    LOAD = "load"
    STORE = "store"
    FLOAD = "fload"
    FSTORE = "fstore"

    # Control flow.
    JMP = "jmp"
    BEQZ = "beqz"
    BNEZ = "bnez"
    CALL = "call"
    RET = "ret"

    # LoopFrog hints (section 3.1).
    DETACH = "detach"
    REATTACH = "reattach"
    SYNC = "sync"

    # System.
    NOP = "nop"
    HALT = "halt"


_OP_CLASS = {
    Opcode.ADD: OpClass.INT_ALU,
    Opcode.SUB: OpClass.INT_ALU,
    Opcode.MUL: OpClass.INT_MUL,
    Opcode.DIV: OpClass.INT_DIV,
    Opcode.REM: OpClass.INT_DIV,
    Opcode.AND: OpClass.INT_ALU,
    Opcode.OR: OpClass.INT_ALU,
    Opcode.XOR: OpClass.INT_ALU,
    Opcode.SHL: OpClass.INT_ALU,
    Opcode.SHR: OpClass.INT_ALU,
    Opcode.SLT: OpClass.INT_ALU,
    Opcode.SLE: OpClass.INT_ALU,
    Opcode.SEQ: OpClass.INT_ALU,
    Opcode.SNE: OpClass.INT_ALU,
    Opcode.MIN: OpClass.INT_ALU,
    Opcode.MAX: OpClass.INT_ALU,
    Opcode.MOV: OpClass.INT_ALU,
    Opcode.LI: OpClass.INT_ALU,
    Opcode.FADD: OpClass.FP_ADD,
    Opcode.FSUB: OpClass.FP_ADD,
    Opcode.FMUL: OpClass.FP_MUL,
    Opcode.FDIV: OpClass.FP_DIV,
    Opcode.FSQRT: OpClass.FP_SQRT,
    Opcode.FMIN: OpClass.FP_ADD,
    Opcode.FMAX: OpClass.FP_ADD,
    Opcode.FABS: OpClass.FP_ADD,
    Opcode.FMOV: OpClass.FP_ADD,
    Opcode.FLI: OpClass.FP_ADD,
    Opcode.FCVT: OpClass.FP_ADD,
    Opcode.ICVT: OpClass.FP_ADD,
    Opcode.FSLT: OpClass.FP_ADD,
    Opcode.FSLE: OpClass.FP_ADD,
    Opcode.FSEQ: OpClass.FP_ADD,
    Opcode.LOAD: OpClass.MEM_READ,
    Opcode.FLOAD: OpClass.MEM_READ,
    Opcode.STORE: OpClass.MEM_WRITE,
    Opcode.FSTORE: OpClass.MEM_WRITE,
    Opcode.JMP: OpClass.BRANCH,
    Opcode.BEQZ: OpClass.BRANCH,
    Opcode.BNEZ: OpClass.BRANCH,
    Opcode.CALL: OpClass.BRANCH,
    Opcode.RET: OpClass.BRANCH,
    Opcode.DETACH: OpClass.HINT,
    Opcode.REATTACH: OpClass.HINT,
    Opcode.SYNC: OpClass.HINT,
    Opcode.NOP: OpClass.SYSTEM,
    Opcode.HALT: OpClass.SYSTEM,
}

HINT_OPCODES = frozenset({Opcode.DETACH, Opcode.REATTACH, Opcode.SYNC})
BRANCH_OPCODES = frozenset(
    {Opcode.JMP, Opcode.BEQZ, Opcode.BNEZ, Opcode.CALL, Opcode.RET}
)
CONDITIONAL_BRANCHES = frozenset({Opcode.BEQZ, Opcode.BNEZ})
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.FLOAD, Opcode.FSTORE})
LOAD_OPCODES = frozenset({Opcode.LOAD, Opcode.FLOAD})
STORE_OPCODES = frozenset({Opcode.STORE, Opcode.FSTORE})

# Stable integer indices: the timing model and the functional executor use
# these to replace enum-keyed dict lookups on hot paths with list indexing.
OPCLASS_ORDER: Tuple[OpClass, ...] = tuple(OpClass)
OPCLASS_INDEX = {cls: i for i, cls in enumerate(OPCLASS_ORDER)}
OPCODE_ORDER: Tuple[Opcode, ...] = tuple(Opcode)
OPCODE_INDEX = {op: i for i, op in enumerate(OPCODE_ORDER)}


@dataclass
class Instruction:
    """A single machine instruction.

    Operand conventions:

    * ALU ops: ``dest``, ``srcs[0]`` and either ``srcs[1]`` or ``imm``.
    * ``load``/``fload``: ``dest``, ``srcs[0]`` = base register,
      ``imm`` = byte offset, ``size`` = access size in bytes.
    * ``store``/``fstore``: ``srcs[0]`` = value register, ``srcs[1]`` = base
      register, ``imm`` = byte offset.
    * branches: ``target`` holds the label, resolved by the assembler into
      :attr:`target_index`.
    * hints: ``region`` holds the continuation label (the paper's region ID),
      resolved into :attr:`region_index`.
    """

    opcode: Opcode
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    imm: Optional[float] = None
    size: int = 8
    target: Optional[str] = None
    target_index: Optional[int] = None
    region: Optional[str] = None
    region_index: Optional[int] = None
    label: Optional[str] = None  # label attached to this instruction, if any
    index: int = -1  # position in the program; set by Program
    comment: str = ""

    # Derived classification attributes.  These were formerly computed per
    # access via properties, which dominated the timing model's profile
    # (enum hashing in frozenset/dict lookups on every dynamic instruction).
    # They are precomputed once here; ``opcode``/``dest``/``srcs`` are never
    # mutated after construction (only ``index``/``target_index``/
    # ``region_index`` are patched in, by Program resolution).

    def __post_init__(self) -> None:
        op = self.opcode
        self.op_class = _OP_CLASS[op]
        self.op_index = OPCLASS_INDEX[self.op_class]
        self.opcode_index = OPCODE_INDEX[op]
        self.is_branch = op in BRANCH_OPCODES
        self.is_conditional_branch = op in CONDITIONAL_BRANCHES
        self.is_memory = op in MEMORY_OPCODES
        self.is_load = op in LOAD_OPCODES
        self.is_store = op in STORE_OPCODES
        self.is_hint = op in HINT_OPCODES
        self.dest_is_fp = bool(self.dest and self.dest.startswith("f"))
        self._reads = ("ra",) if op is Opcode.RET else self.srcs
        if op is Opcode.CALL:
            self._writes: Tuple[str, ...] = ("ra",)
        elif self.dest is not None:
            self._writes = (self.dest,)
        else:
            self._writes = ()
        # Static per-instruction fields the timing model copies into every
        # dynamic PipelineInstr; one tuple unpack there instead of six
        # attribute chases on the fetch hot path.
        self._pi_static = (
            self.op_index, self.dest_is_fp, self.is_load, self.is_store,
            op is Opcode.HALT, self.dest is not None,
        )

    def reads(self) -> Tuple[str, ...]:
        """Register names this instruction reads."""
        return self._reads

    def writes(self) -> Tuple[str, ...]:
        """Register names this instruction writes."""
        return self._writes

    def __str__(self) -> str:
        parts = [self.opcode.value]
        operands = []
        if self.dest is not None:
            operands.append(self.dest)
        operands.extend(self.srcs)
        if self.imm is not None:
            operands.append(str(self.imm))
        if self.target is not None:
            operands.append(self.target)
        if self.region is not None:
            operands.append(self.region)
        if operands:
            parts.append(", ".join(operands))
        text = " ".join(parts)
        if self.label:
            text = f"{self.label}: {text}"
        return text


# Default execution latencies (cycles) per op class, loosely following the
# paper's aggressive 8-wide core (table 1).  Memory latencies are determined
# by the cache hierarchy, so MEM_READ here is only the pipe latency.
DEFAULT_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 12,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.FP_SQRT: 16,
    OpClass.MEM_READ: 1,
    OpClass.MEM_WRITE: 1,
    OpClass.BRANCH: 1,
    OpClass.HINT: 1,
    OpClass.SYSTEM: 1,
}
