"""Content digests that key the persistent result store.

A simulation result is fully determined by four inputs:

1. the program (the exact instruction sequence, post-compilation),
2. the initial machine state the workload's setup produced (memory + regs),
3. the machine configuration (every field of :class:`MachineConfig`), and
4. the engine's timing-semantics version (``ENGINE_SCHEMA_VERSION``).

Digesting all four makes the store content-addressed: renaming a workload
does not invalidate its results, while any change to its source, input
generator, seed, or the simulated machine produces a different key.

Digests are memoized on the workload/config objects themselves (the hot
sweeps rerun the same objects hundreds of times).  The contract is the one
the rest of the codebase already follows: configs and workloads are frozen
once the first simulation uses them.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from ..uarch.config import MachineConfig
from ..uarch.core import ENGINE_SCHEMA_VERSION


def _canonical(obj: Any) -> Any:
    """Recursively convert to JSON-encodable data with deterministic order."""
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in obj.items()]
        items.sort(key=lambda kv: str(kv[0]))
        return {str(k): v for k, v in items}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    return obj


def _sha256(payload: Any) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def machine_digest(machine: MachineConfig) -> str:
    """Digest of every configuration field (memoized on the object)."""
    cached = getattr(machine, "_repro_digest", None)
    if cached is not None:
        return cached
    digest = _sha256(_canonical(machine))
    machine._repro_digest = digest
    return digest


def program_digest(program) -> str:
    """Digest of the exact instruction sequence of a compiled program."""
    encoded = [
        (
            instr.opcode.value,
            instr.dest,
            list(instr.srcs),
            instr.imm,
            instr.size,
            instr.target_index,
            instr.region_index,
        )
        for instr in program.instructions
    ]
    return _sha256(encoded)


def workload_digest(workload) -> str:
    """Digest of a workload's program bytes + initial input (memoized).

    Runs the workload's deterministic setup once to capture the initial
    memory image and register file — the same pair every simulation of this
    workload starts from.
    """
    cached = getattr(workload, "_repro_digest", None)
    if cached is not None:
        return cached
    memory, regs = workload.fresh_input()
    payload = [
        program_digest(workload.program),
        sorted((addr, memory.load_byte(addr)) for addr in memory.written_addresses()),
        sorted((name, value) for name, value in regs.items()),
    ]
    digest = _sha256(payload)
    workload._repro_digest = digest
    return digest


def run_digest(workload, machine: MachineConfig) -> str:
    """The store key for one (workload, machine config) simulation."""
    return _sha256(
        [
            ENGINE_SCHEMA_VERSION,
            workload_digest(workload),
            machine_digest(machine),
        ]
    )


def sampled_run_digest(workload, machine: MachineConfig, config) -> str:
    """The store key for one *sampled* simulation estimate.

    Sampled results are approximations and must never collide with exact
    detailed results: the key carries an explicit ``"sampled"`` marker,
    the sampling methodology version, and every
    :class:`~repro.sampling.runner.SamplingConfig` field (interval
    length, cluster budget, seed, warmup policy all change the estimate).
    """
    from ..sampling.runner import SAMPLING_SCHEMA_VERSION

    return _sha256(
        [
            ENGINE_SCHEMA_VERSION,
            "sampled",
            SAMPLING_SCHEMA_VERSION,
            workload_digest(workload),
            machine_digest(machine),
            _canonical(config),
        ]
    )
