"""SimStats <-> plain-dict round-trip serialization.

The persistent result store keeps one JSON record per simulation; this
module owns the (de)serialization so the store never needs to know the
statistics schema.  Round-tripping must be *exact*: the acceptance bar for
cached results is bit-identical equality with a fresh run, so every field —
including the int-keyed ``active_threadlet_cycles`` histogram, which JSON
forces to string keys — is restored to its original type.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from ..uarch.statistics import RegionStats, SimStats

_REGION_FIELDS = {f.name for f in dataclasses.fields(RegionStats)}
_STATS_FIELDS = {f.name for f in dataclasses.fields(SimStats)}


def stats_to_dict(stats: SimStats) -> Dict[str, Any]:
    """Serialize ``stats`` into a JSON-compatible dict."""
    return dataclasses.asdict(stats)


def stats_from_dict(data: Dict[str, Any]) -> SimStats:
    """Rebuild a :class:`SimStats` from :func:`stats_to_dict` output.

    Tolerates JSON's string keys in the threadlet histogram and ignores
    unknown fields (a newer writer adding a counter does not brick older
    readers — the schema version, not this function, decides validity).
    """
    fields = {k: v for k, v in data.items() if k in _STATS_FIELDS}
    fields["active_threadlet_cycles"] = {
        int(k): v for k, v in (data.get("active_threadlet_cycles") or {}).items()
    }
    fields["regions"] = {
        label: RegionStats(**{k: v for k, v in rd.items() if k in _REGION_FIELDS})
        for label, rd in (data.get("regions") or {}).items()
    }
    return SimStats(**fields)
