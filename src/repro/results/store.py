"""On-disk content-addressed result store.

Layout (under the store root, default ``.repro-results/``)::

    .repro-results/
        ab/
            ab3f...e2.json     # one record per (workload, config, schema)
        cd/
            cd01...9a.json

Records are sharded by the first two hex digits of their digest to keep
directories small.  Each record is self-describing::

    {
      "digest":  "<sha256 run digest>",
      "schema":  1,                      # ENGINE_SCHEMA_VERSION at save time
      "workload": "x264_sad",            # informational only
      "machine":  "8wide",               # informational only
      "created": 1754500000.0,
      "stats":   { ... SimStats fields ... }
    }

Guarantees:

* **Atomic writes** — records are written to a temp file in the shard
  directory and ``os.replace``d into place, so readers never observe a
  half-written record (concurrent writers of the same digest both write
  the same bytes, so last-writer-wins is harmless).
* **Corruption tolerance** — any unreadable, unparsable, or mismatched
  record is treated as a cache miss, never an error.
* **Schema invalidation** — a record saved by an engine with a different
  ``ENGINE_SCHEMA_VERSION`` is a miss; :meth:`ResultStore.gc` deletes such
  stale records.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

from ..uarch.core import ENGINE_SCHEMA_VERSION
from ..uarch.statistics import SimStats
from .serialize import stats_from_dict, stats_to_dict

DEFAULT_STORE_DIR = ".repro-results"
# Environment overrides, honoured by the default store only.
STORE_DIR_ENV = "REPRO_STORE_DIR"
NO_STORE_ENV = "REPRO_NO_STORE"


@dataclass
class StoreStats:
    """Summary returned by :meth:`ResultStore.stats`."""

    records: int = 0
    total_bytes: int = 0
    corrupt: int = 0
    by_schema: Dict[int, int] = field(default_factory=dict)


class ResultStore:
    """Persistent cache of simulation results keyed by content digest."""

    def __init__(self, root=DEFAULT_STORE_DIR, schema: int = ENGINE_SCHEMA_VERSION):
        self.root = Path(root)
        self.schema = schema

    # -- paths ---------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _records(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path

    # -- read/write ----------------------------------------------------------

    def load(self, digest: str) -> Optional[SimStats]:
        """The stored stats for ``digest``, or ``None`` on any kind of miss."""
        record = self._read_record(self._path(digest))
        if record is None:
            return None
        if record.get("digest") != digest or record.get("schema") != self.schema:
            return None
        try:
            return stats_from_dict(record["stats"])
        except (KeyError, TypeError, ValueError):
            return None

    def load_extra(self, digest: str) -> Optional[dict]:
        """The record's ``extra`` payload (``{}`` when absent), or ``None``
        on any kind of miss.  Used by the sampled runner to round-trip
        estimate provenance (error bound, cluster counts) alongside the
        stats."""
        record = self._read_record(self._path(digest))
        if record is None:
            return None
        if record.get("digest") != digest or record.get("schema") != self.schema:
            return None
        extra = record.get("extra", {})
        return extra if isinstance(extra, dict) else {}

    def save(self, digest: str, stats: SimStats,
             workload: str = "", machine: str = "",
             extra: Optional[dict] = None) -> Path:
        """Atomically persist ``stats`` under ``digest``; returns the path."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "digest": digest,
            "schema": self.schema,
            "workload": workload,
            "machine": machine,
            "created": time.time(),
            "stats": stats_to_dict(stats),
        }
        if extra:
            record["extra"] = extra
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, digest: str) -> bool:
        return self.load(digest) is not None

    @staticmethod
    def _read_record(path: Path) -> Optional[dict]:
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> StoreStats:
        """Record count, footprint, and per-schema breakdown."""
        summary = StoreStats()
        for path in self._records():
            try:
                summary.total_bytes += path.stat().st_size
            except OSError:
                continue
            record = self._read_record(path)
            if record is None or "schema" not in record:
                summary.corrupt += 1
                continue
            summary.records += 1
            schema = record["schema"]
            summary.by_schema[schema] = summary.by_schema.get(schema, 0) + 1
        return summary

    def gc(self, purge: bool = False) -> int:
        """Delete stale records; returns the number removed.

        By default removes records from other engine schema versions and
        corrupt records.  ``purge=True`` empties the store entirely.
        """
        removed = 0
        for path in list(self._records()):
            if not purge:
                record = self._read_record(path)
                if record is not None and record.get("schema") == self.schema:
                    continue
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        # Drop emptied shard directories to keep the tree tidy.
        if self.root.is_dir():
            for shard in self.root.iterdir():
                if shard.is_dir():
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
        return removed


# ---------------------------------------------------------------------------
# Default store: shared by the experiment runner and the CLI.
# ---------------------------------------------------------------------------

_default_store: Optional[ResultStore] = None
_default_resolved = False


def get_default_store() -> Optional[ResultStore]:
    """The process-wide store, or ``None`` when persistence is disabled.

    Resolution order: an explicit :func:`set_default_store` wins; otherwise
    the ``REPRO_NO_STORE``/``REPRO_STORE_DIR`` environment variables decide.
    """
    global _default_store, _default_resolved
    if not _default_resolved:
        if os.environ.get(NO_STORE_ENV):
            _default_store = None
        else:
            _default_store = ResultStore(
                os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR)
            )
        _default_resolved = True
    return _default_store


def set_default_store(store: Optional[ResultStore]) -> None:
    """Override the process-wide store (``None`` disables persistence)."""
    global _default_store, _default_resolved
    _default_store = store
    _default_resolved = True
