"""Persistent, content-addressed simulation results.

See :mod:`repro.results.store` for the on-disk format and
:mod:`repro.results.digest` for how store keys are derived.
"""

from ..uarch.core import ENGINE_SCHEMA_VERSION
from .digest import machine_digest, program_digest, run_digest, workload_digest
from .serialize import stats_from_dict, stats_to_dict
from .store import (
    DEFAULT_STORE_DIR,
    NO_STORE_ENV,
    STORE_DIR_ENV,
    ResultStore,
    StoreStats,
    get_default_store,
    set_default_store,
)

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "DEFAULT_STORE_DIR",
    "NO_STORE_ENV",
    "STORE_DIR_ENV",
    "ResultStore",
    "StoreStats",
    "get_default_store",
    "set_default_store",
    "machine_digest",
    "program_digest",
    "run_digest",
    "workload_digest",
    "stats_from_dict",
    "stats_to_dict",
]
