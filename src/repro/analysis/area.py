"""Area and power model for LoopFrog's additions (paper section 6.8).

The paper uses CACTI at 22 nm for the SSB granule cache, a published
Bloom-filter implementation for the conflict detector, SMT-overhead
literature for threadlet support, and the Arm Neoverse N1 as the reference
core.  We reproduce the arithmetic with an analytic SRAM model calibrated
to the paper's quoted points:

* four 2-KiB SSB slices ≈ 0.025 mm² at 22 nm → 0.02 mm²ish at 7 nm
  (conservative scaling factor 5 between those nodes, after CACTI overhead);
* conflict detector (dual-ported 8-entry, 4096-bit filters) ≈ 0.005 mm²;
* SMT support: 10–15% core area; reference core 1.4 mm² (N1 at 7 nm).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uarch.config import LoopFrogConfig

# Calibration constants.
_N1_CORE_MM2 = 1.4                     # Arm Neoverse N1 at 7 nm (paper cites)
_SRAM_MM2_PER_KIB_22NM = 0.025 / 8.0   # from the paper's CACTI point (8 KiB)
_NODE_SCALE_22_TO_7 = 5.0              # the paper's conservative factor
_BLOOM_MM2_7NM = 0.005                 # Swarm-style filters (paper quote)
_SMT_AREA_FRACTION = (0.10, 0.15)      # published SMT overhead range
_SSB_NJ_PER_ACCESS_22NM = 0.03


@dataclass
class AreaReport:
    """Area accounting for one LoopFrog configuration (mm², 7 nm)."""

    ssb_mm2: float
    conflict_mm2: float
    smt_mm2_low: float
    smt_mm2_high: float
    core_mm2: float

    @property
    def new_structures_mm2(self) -> float:
        return self.ssb_mm2 + self.conflict_mm2

    @property
    def new_structures_percent(self) -> float:
        """The paper's 'around 2%' for SSB + conflict detection."""
        return 100.0 * self.new_structures_mm2 / self.core_mm2

    @property
    def total_overhead_percent_low(self) -> float:
        """Total increase vs a sequential core (paper: 12-17%)."""
        return 100.0 * (self.new_structures_mm2 + self.smt_mm2_low) / self.core_mm2

    @property
    def total_overhead_percent_high(self) -> float:
        return 100.0 * (self.new_structures_mm2 + self.smt_mm2_high) / self.core_mm2

    @property
    def overhead_if_smt_exists_percent(self) -> float:
        """Extra area when the core already has SMT (paper: ~2%)."""
        return self.new_structures_percent


def ssb_area_mm2(config: LoopFrogConfig, node_nm: int = 7) -> float:
    """Analytic SRAM area for the SSB granule cache at ``node_nm``."""
    kib = config.ssb_total_bytes / 1024.0
    area_22 = kib * _SRAM_MM2_PER_KIB_22NM
    if node_nm == 22:
        return area_22
    if node_nm == 7:
        return area_22 / _NODE_SCALE_22_TO_7 * 4.0  # paper: 0.025 -> 0.02
    raise ValueError(f"unsupported node {node_nm} nm")


def ssb_energy_nj_per_access(config: LoopFrogConfig) -> float:
    """Per-access energy scaled linearly with slice capacity."""
    return _SSB_NJ_PER_ACCESS_22NM * (config.slice_bytes / 2048.0)


def area_report(config: LoopFrogConfig) -> AreaReport:
    """Full section-6.8 accounting for ``config`` at 7 nm."""
    smt_low = _N1_CORE_MM2 * _SMT_AREA_FRACTION[0]
    smt_high = _N1_CORE_MM2 * _SMT_AREA_FRACTION[1]
    return AreaReport(
        ssb_mm2=ssb_area_mm2(config),
        conflict_mm2=_BLOOM_MM2_7NM,
        smt_mm2_low=smt_low,
        smt_mm2_high=smt_high,
        core_mm2=_N1_CORE_MM2,
    )


def pollack_expected_speedup_percent(area_increase_percent: float) -> float:
    """Pollack's rule: performance scales with sqrt(area).

    The paper uses this to argue that a 12-17% area increase would
    traditionally buy only 6-8% performance, which LoopFrog's 9.5% beats.
    """
    return ((1.0 + area_increase_percent / 100.0) ** 0.5 - 1.0) * 100.0
