"""Attribution of speedups to gain categories (paper table 2).

The paper sorts profitable *loops* into five subcategories by inspecting
detailed simulator statistics (section 6.4) and attributes each loop's
whole speedup to its best-matching category.  Our unit of attribution is
the workload phase (one annotated loop each); the heuristics mirror the
paper's reasoning:

* a large share of committed-then-squashed speculative work, yet a speedup
  anyway → a *prefetching* gain (side effects of failed speculation,
  section 6.4.2); split into branch-condition vs data-value prefetch by
  the baseline's mispredict density;
* otherwise *true parallelism*: miss-bound baselines gain from memory-level
  parallelism, mispredict-bound ones from independent fetch streams
  (cutting control dependencies), the rest from splitting long dependency
  chains across subwindows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from ..uarch.statistics import SimStats
from ..workloads.base import (
    ALL_CATEGORIES,
    CATEGORY_BRANCH_PREFETCH,
    CATEGORY_CONTROL,
    CATEGORY_DATA_PREFETCH,
    CATEGORY_DEPCHAIN,
    CATEGORY_MEMORY,
)

if TYPE_CHECKING:  # avoid a circular import; runs are duck-typed
    from ..experiments.runner import BenchmarkRun


@dataclass
class CategoryShare:
    """One row of table 2."""

    category: str
    loops: int
    speedup_fraction: float  # share of total log-speedup


def classify_phase(base: SimStats, frog: SimStats) -> str:
    """Dominant gain category for one annotated loop (workload phase)."""
    spec = frog.spec_committed_instructions
    failed = frog.failed_spec_instructions
    failed_ratio = failed / (spec + failed) if (spec + failed) else 0.0

    mpki = base.branch_mpki
    miss_rate = base.l1d_miss_rate
    l2_mpki = 1000.0 * base.l2_misses / max(1, base.arch_instructions)

    if failed_ratio > 0.40:
        # Most speculative work dies, yet the loop speeds up: prefetch
        # side effects dominate (section 6.4.2).
        if mpki > 5.0:
            return CATEGORY_BRANCH_PREFETCH
        return CATEGORY_DATA_PREFETCH

    # Heavily mispredict-bound loops gain from independent fetch streams
    # even when they also miss the cache (paper footnote 2: attribute to
    # the dominant cause).
    if mpki > 15.0:
        return CATEGORY_CONTROL
    if miss_rate > 0.15 or l2_mpki > 2.0:
        return CATEGORY_MEMORY
    if mpki > 5.0:
        return CATEGORY_CONTROL
    return CATEGORY_DEPCHAIN


def classify_run(run: "BenchmarkRun") -> str:
    """Dominant category for a whole benchmark: its biggest-gain phase."""
    best: Tuple[float, str] = (0.0, CATEGORY_DEPCHAIN)
    for phase in run.phases:
        gain = phase.baseline.cycles / phase.loopfrog.cycles
        if gain > best[0]:
            best = (gain, classify_phase(phase.baseline, phase.loopfrog))
    return best[1]


def categorize_runs(
    runs: Iterable["BenchmarkRun"], min_speedup_percent: float = 1.0
) -> List[CategoryShare]:
    """Build table 2 from profitable runs, one attribution per phase whose
    loop sped up by more than ``min_speedup_percent``."""
    per_category: Dict[str, List[float]] = {c: [] for c in ALL_CATEGORIES}
    for run in runs:
        if run.speedup_percent <= min_speedup_percent:
            continue
        for phase in run.phases:
            gain = phase.baseline.cycles / phase.loopfrog.cycles
            if (gain - 1.0) * 100.0 <= min_speedup_percent:
                continue
            category = classify_phase(phase.baseline, phase.loopfrog)
            # Weight the phase's contribution by its share of the
            # benchmark's time, so table fractions add up sensibly.
            per_category[category].append(phase.weight * math.log(gain))

    total = sum(sum(v) for v in per_category.values())
    rows = []
    for category in ALL_CATEGORIES:
        gains = per_category[category]
        fraction = (sum(gains) / total) if total > 0 else 0.0
        rows.append(CategoryShare(category, len(gains), fraction))
    return rows


def phase_classifications(runs: Iterable["BenchmarkRun"]) -> Dict[str, str]:
    """Map of workload-phase name -> classified category (diagnostics)."""
    result = {}
    for run in runs:
        for phase in run.phases:
            result[phase.workload] = classify_phase(
                phase.baseline, phase.loopfrog
            )
    return result
