"""Speedup arithmetic: geometric means, SimPoint-style weighting, Amdahl.

These helpers mirror the paper's methodology (section 6.1): run each
binary twice (hints-as-nops baseline vs. LoopFrog), weight phases, divide
total run times, and aggregate with geometric means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises ValueError on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_time(cycles_and_weights: Sequence[Tuple[float, float]]) -> float:
    """SimPoint-style estimate: Σ weight_i × cycles_i (section 6.1)."""
    total_weight = sum(w for _, w in cycles_and_weights)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(c * w for c, w in cycles_and_weights) / total_weight


def speedup(baseline_cycles: float, new_cycles: float) -> float:
    if new_cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / new_cycles


def speedup_percent(baseline_cycles: float, new_cycles: float) -> float:
    """Speedup expressed the paper's way: (base/new - 1) * 100."""
    return (speedup(baseline_cycles, new_cycles) - 1.0) * 100.0


def amdahl_region_speedup(
    whole_program_speedup: float, parallel_fraction: float
) -> float:
    """Invert Amdahl's law: the in-region speedup needed to produce the
    observed whole-program speedup given the fraction of time spent in
    parallel regions (used for the paper's 43% in-region figure, 6.3)."""
    if not 0 < parallel_fraction <= 1:
        raise ValueError("parallel fraction must be in (0, 1]")
    if whole_program_speedup <= 0:
        raise ValueError("speedup must be positive")
    # 1/S = (1 - f) + f / s  =>  s = f / (1/S - (1 - f))
    inv = 1.0 / whole_program_speedup
    denom = inv - (1.0 - parallel_fraction)
    if denom <= 0:
        return float("inf")
    return parallel_fraction / denom


def amdahl_whole_program(region_speedup: float, parallel_fraction: float) -> float:
    """Forward Amdahl: whole-program speedup from in-region speedup."""
    if not 0 <= parallel_fraction <= 1:
        raise ValueError("parallel fraction must be in [0, 1]")
    if region_speedup <= 0:
        raise ValueError("region speedup must be positive")
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / region_speedup)


@dataclass
class BenchmarkResult:
    """Baseline-vs-LoopFrog outcome for one benchmark."""

    name: str
    suite: str
    baseline_cycles: float
    loopfrog_cycles: float
    profitable_expected: bool = True
    category: str = ""
    region_speedups: Dict[str, float] = None  # per-loop (region label)
    parallel_fraction: float = 0.0            # of baseline time

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.loopfrog_cycles

    @property
    def speedup_percent(self) -> float:
        return (self.speedup - 1.0) * 100.0


def suite_geomean_speedup(results: Iterable[BenchmarkResult]) -> float:
    """Geometric-mean speedup across a suite (paper's headline metric)."""
    return geometric_mean([r.speedup for r in results])


def count_profitable(results: Iterable[BenchmarkResult],
                     threshold_percent: float = 1.0) -> List[BenchmarkResult]:
    """Benchmarks accelerated by more than ``threshold_percent``."""
    return [r for r in results if r.speedup_percent > threshold_percent]
