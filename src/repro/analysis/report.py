"""Plain-text table and bar-chart rendering for experiment outputs.

Every experiment module renders its result through these helpers so the
benchmark harness prints the same rows/series the paper's figures and
tables report.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_bars(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    unit: str = "%",
    width: int = 46,
    baseline: float = 0.0,
) -> str:
    """Render a horizontal ASCII bar chart (one bar per benchmark),
    matching the look of the paper's per-benchmark figures."""
    if not items:
        return title
    max_value = max(abs(v - baseline) for _, v in items) or 1.0
    label_width = max(len(name) for name, _ in items)
    lines = [title] if title else []
    for name, value in items:
        magnitude = abs(value - baseline) / max_value
        bar = "#" * max(0, int(round(magnitude * width)))
        sign = "-" if value < baseline else ""
        lines.append(
            f"{name.ljust(label_width)} | {sign}{bar} {value:+.1f}{unit}"
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[Tuple[object, float]],
    title: str = "",
) -> str:
    """Render an x/y sweep (sensitivity figures) as a small table."""
    return format_table(
        [x_label, y_label],
        [(x, f"{y:.2f}") for x, y in points],
        title=title,
    )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
