"""``repro lint``: static dependence diagnostics and squash validation.

Two layers on top of :mod:`repro.compiler.depanal`:

* :func:`lint_source` / rendering — compile one Frog file with the static
  analysis enabled and format per-loop verdicts (human-readable or JSON)
  for the CLI and ``tools/froglint.py``.
* :func:`validate_suites` — the static/dynamic comparison harness.  Every
  workload of the requested suites is compiled with verdicts attached,
  simulated on the LoopFrog machine (through the ordinary cached
  ``run_workload`` path), and each annotated loop's verdict is checked
  against the conflict detector's observed squashes for that region.
  The resulting :class:`ValidationReport` carries per-verdict-class
  precision/recall and is the collection target for the ``lint.*``
  metrics below.

Soundness contract: a loop classified ``independent`` must never squash
on a memory conflict.  ``ValidationReport.soundness_violations`` counts
the loops breaking that contract; tests assert it is zero across every
suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..compiler import CompileOptions, CompileResult, compile_frog
from ..compiler.depanal import (
    VERDICT_INDEPENDENT,
    VERDICT_MAY_CONFLICT,
    VERDICT_MUST_CONFLICT,
    LoopDependence,
)
from ..obs import metrics as _metrics


# ---------------------------------------------------------------------------
# Per-file lint
# ---------------------------------------------------------------------------


@dataclass
class FileLint:
    """Lint outcome for one Frog source file."""

    path: str
    result: CompileResult

    @property
    def loops(self) -> List[LoopDependence]:
        order = {
            report.header: i for i, report in enumerate(self.result.hint_reports)
        }
        return sorted(
            self.result.dependence.values(),
            key=lambda dep: order.get(dep.header, len(order)),
        )

    def to_dict(self) -> dict:
        by_header = {r.header: r for r in self.result.hint_reports}
        loops = []
        for dep in self.loops:
            entry = dep.to_dict()
            report = by_header.get(dep.header)
            if report is not None:
                entry["annotated"] = report.annotated
                entry["reason"] = report.reason
            loops.append(entry)
        return {"file": self.path, "loops": loops}


def lint_source(
    source: str,
    path: str = "<string>",
    entry: str = "main",
    granule_bytes: int = 4,
) -> FileLint:
    """Compile ``source`` with static analysis and return its diagnostics."""
    from ..compiler import HintOptions

    options = CompileOptions(
        entry=entry,
        static_analysis=True,
        hint_options=HintOptions(granule_bytes=granule_bytes),
    )
    return FileLint(path=path, result=compile_frog(source, options))


def render_lint(lint: FileLint) -> str:
    """Human-readable per-loop diagnostics for one linted file."""
    lines = [f"{lint.path}:"]
    if not lint.loops:
        lines.append("  no #pragma loopfrog loops")
        return "\n".join(lines)
    for dep in lint.loops:
        where = f"line {dep.line}" if dep.line else "line ?"
        lines.append(f"  loop at {where} ({dep.header}): {dep.describe()}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Squash validation
# ---------------------------------------------------------------------------


@dataclass
class ValidationRow:
    """One annotated loop of one workload, static verdict vs. run time."""

    workload: str
    header: str
    line: int
    verdict: str
    observed: bool       # the region spawned at least one epoch
    squashes: int        # conflict-detector squashes attributed to it

    @property
    def squashed(self) -> bool:
        return self.squashes > 0

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "header": self.header,
            "line": self.line,
            "verdict": self.verdict,
            "observed": self.observed,
            "squashes": self.squashes,
        }


def _ratio(num: int, den: int) -> float:
    """Precision/recall with the empty-denominator convention of 1.0
    (no predictions of a class cannot be wrong; no positives cannot be
    missed)."""
    return num / den if den else 1.0


@dataclass
class ValidationReport:
    """Static verdicts vs. observed conflict squashes over the suites."""

    suites: List[str]
    rows: List[ValidationRow] = field(default_factory=list)

    # -- totals -------------------------------------------------------------

    @property
    def loops_total(self) -> int:
        return len(self.rows)

    @property
    def loops_observed(self) -> int:
        return sum(1 for r in self.rows if r.observed)

    @property
    def loops_squashing(self) -> int:
        return sum(1 for r in self.rows if r.observed and r.squashed)

    def _count(self, verdict: str) -> int:
        return sum(1 for r in self.rows if r.verdict == verdict)

    @property
    def independent_loops(self) -> int:
        return self._count(VERDICT_INDEPENDENT)

    @property
    def may_conflict_loops(self) -> int:
        return self._count(VERDICT_MAY_CONFLICT)

    @property
    def must_conflict_loops(self) -> int:
        return self._count(VERDICT_MUST_CONFLICT)

    # -- precision / recall -------------------------------------------------

    def _observed(self) -> List[ValidationRow]:
        return [r for r in self.rows if r.observed]

    def precision(self, verdict: str) -> float:
        """Of the observed loops predicted ``verdict``, the fraction whose
        run-time behaviour matches (clean for independent, squashing for
        the conflict classes)."""
        predicted = [r for r in self._observed() if r.verdict == verdict]
        if verdict == VERDICT_INDEPENDENT:
            hits = sum(1 for r in predicted if not r.squashed)
        else:
            hits = sum(1 for r in predicted if r.squashed)
        return _ratio(hits, len(predicted))

    def recall(self, verdict: str) -> float:
        """Of the observed loops whose run-time behaviour matches
        ``verdict`` (clean vs. squashing), the fraction predicted so."""
        if verdict == VERDICT_INDEPENDENT:
            actual = [r for r in self._observed() if not r.squashed]
        else:
            actual = [r for r in self._observed() if r.squashed]
        hits = sum(1 for r in actual if r.verdict == verdict)
        return _ratio(hits, len(actual))

    @property
    def soundness_violations(self) -> int:
        """Loops classified independent that squashed on a conflict."""
        return sum(
            1 for r in self.rows
            if r.verdict == VERDICT_INDEPENDENT and r.observed and r.squashed
        )

    def violations(self) -> List[ValidationRow]:
        return [
            r for r in self.rows
            if r.verdict == VERDICT_INDEPENDENT and r.observed and r.squashed
        ]

    def to_dict(self) -> dict:
        return {
            "suites": self.suites,
            "loops_total": self.loops_total,
            "loops_observed": self.loops_observed,
            "loops_squashing": self.loops_squashing,
            "soundness_violations": self.soundness_violations,
            "classes": {
                verdict: {
                    "loops": self._count(verdict),
                    "precision": self.precision(verdict),
                    "recall": self.recall(verdict),
                }
                for verdict in (
                    VERDICT_INDEPENDENT,
                    VERDICT_MAY_CONFLICT,
                    VERDICT_MUST_CONFLICT,
                )
            },
            "rows": [r.to_dict() for r in self.rows],
        }


def validate_suites(
    suites: Optional[Sequence[str]] = None,
    machine=None,
) -> ValidationReport:
    """Run the workload suites and compare static verdicts with observed
    conflict squashes (cached simulations via ``run_workload``)."""
    from ..experiments.runner import run_workload
    from ..uarch.config import default_machine
    from ..workloads import SUITE_NAMES, suite

    if machine is None:
        machine = default_machine()
    suite_names = list(suites) if suites else list(SUITE_NAMES)
    granule = machine.loopfrog.granule_bytes

    report = ValidationReport(suites=suite_names)
    seen: set = set()
    for suite_name in suite_names:
        for benchmark in suite(suite_name):
            for workload, _weight in benchmark.phases:
                if workload.name in seen:
                    continue
                seen.add(workload.name)
                # Side-compile with verdicts attached; lowering is
                # deterministic, so headers and region labels line up
                # with the workload's cached compile.
                side = compile_frog(
                    workload.source,
                    CompileOptions(
                        name=workload.name, static_analysis=True,
                        hint_options=_granule_options(granule),
                    ),
                )
                annotated = [r for r in side.hint_reports if r.annotated]
                if not annotated:
                    continue
                stats = run_workload(workload, machine)
                for hint in annotated:
                    dep = side.dependence.get(hint.header)
                    if dep is None:
                        continue
                    region = stats.regions.get(hint.region)
                    observed = (
                        region is not None and region.epochs_spawned > 0
                    )
                    report.rows.append(ValidationRow(
                        workload=workload.name,
                        header=hint.header,
                        line=dep.line,
                        verdict=dep.verdict,
                        observed=observed,
                        squashes=region.squash_conflicts if region else 0,
                    ))
    return report


def _granule_options(granule_bytes: int):
    from ..compiler import HintOptions

    return HintOptions(granule_bytes=granule_bytes)


def render_validation(report: ValidationReport) -> str:
    """Human-readable validation summary: class table + per-loop rows."""
    lines = [
        f"suites: {', '.join(report.suites)}",
        f"loops: {report.loops_total} total, {report.loops_observed} "
        f"observed, {report.loops_squashing} squashing",
        "",
        f"{'verdict':<14} {'loops':>5} {'precision':>9} {'recall':>7}",
    ]
    for verdict in (
        VERDICT_INDEPENDENT, VERDICT_MAY_CONFLICT, VERDICT_MUST_CONFLICT
    ):
        lines.append(
            f"{verdict:<14} {report._count(verdict):>5} "
            f"{report.precision(verdict):>9.2f} "
            f"{report.recall(verdict):>7.2f}"
        )
    lines.append("")
    for row in report.rows:
        mark = "squash" if row.squashed else (
            "clean" if row.observed else "unobserved"
        )
        lines.append(
            f"  {row.workload:<18} {row.header:<12} "
            f"{row.verdict:<14} {mark:>10} ({row.squashes} squashes)"
        )
    lines.append("")
    if report.soundness_violations:
        lines.append(
            f"UNSOUND: {report.soundness_violations} independent-classified "
            "loop(s) squashed"
        )
    else:
        lines.append("soundness: ok (no independent-classified loop squashed)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Metrics catalog for the validation harness (collected from
# ValidationReport — `default_registry().collect(report, "lint")`).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("lint.validate.loops_total", _metrics.COUNTER,
                        "lint",
                        "Annotated pragma loops checked by lint --validate",
                        unit="loops",
                        derive=lambda r: r.loops_total),
    _metrics.MetricSpec("lint.validate.loops_observed", _metrics.COUNTER,
                        "lint",
                        "Checked loops whose region spawned at least one epoch",
                        unit="loops",
                        derive=lambda r: r.loops_observed),
    _metrics.MetricSpec("lint.validate.loops_squashing", _metrics.COUNTER,
                        "lint",
                        "Checked loops with at least one conflict squash",
                        unit="loops",
                        derive=lambda r: r.loops_squashing),
    _metrics.MetricSpec("lint.validate.independent_loops", _metrics.COUNTER,
                        "lint",
                        "Loops the static analysis classified independent",
                        unit="loops",
                        derive=lambda r: r.independent_loops),
    _metrics.MetricSpec("lint.validate.may_conflict_loops", _metrics.COUNTER,
                        "lint",
                        "Loops the static analysis classified may-conflict",
                        unit="loops",
                        derive=lambda r: r.may_conflict_loops),
    _metrics.MetricSpec("lint.validate.must_conflict_loops", _metrics.COUNTER,
                        "lint",
                        "Loops the static analysis classified must-conflict",
                        unit="loops",
                        derive=lambda r: r.must_conflict_loops),
    _metrics.MetricSpec("lint.validate.independent_precision", _metrics.GAUGE,
                        "lint",
                        "Observed independent-classified loops that never "
                        "squashed (1.0 when none predicted)",
                        unit="ratio",
                        derive=lambda r: r.precision(VERDICT_INDEPENDENT)),
    _metrics.MetricSpec("lint.validate.independent_recall", _metrics.GAUGE,
                        "lint",
                        "Observed squash-free loops classified independent "
                        "(1.0 when none observed)",
                        unit="ratio",
                        derive=lambda r: r.recall(VERDICT_INDEPENDENT)),
    _metrics.MetricSpec("lint.validate.may_conflict_precision", _metrics.GAUGE,
                        "lint",
                        "Observed may-conflict-classified loops that squashed",
                        unit="ratio",
                        derive=lambda r: r.precision(VERDICT_MAY_CONFLICT)),
    _metrics.MetricSpec("lint.validate.may_conflict_recall", _metrics.GAUGE,
                        "lint",
                        "Observed squashing loops classified may-conflict",
                        unit="ratio",
                        derive=lambda r: r.recall(VERDICT_MAY_CONFLICT)),
    _metrics.MetricSpec("lint.validate.must_conflict_precision", _metrics.GAUGE,
                        "lint",
                        "Observed must-conflict-classified loops that squashed",
                        unit="ratio",
                        derive=lambda r: r.precision(VERDICT_MUST_CONFLICT)),
    _metrics.MetricSpec("lint.validate.must_conflict_recall", _metrics.GAUGE,
                        "lint",
                        "Observed squashing loops classified must-conflict",
                        unit="ratio",
                        derive=lambda r: r.recall(VERDICT_MUST_CONFLICT)),
    _metrics.MetricSpec("lint.validate.soundness_violations", _metrics.COUNTER,
                        "lint",
                        "Independent-classified loops that squashed on a "
                        "memory conflict (must be zero)",
                        unit="loops",
                        derive=lambda r: r.soundness_violations),
)
