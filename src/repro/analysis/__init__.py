"""Analysis utilities: speedup math, gain categorisation (table 2),
area/power modelling (section 6.8), and report formatting."""

from .area import (
    AreaReport,
    area_report,
    pollack_expected_speedup_percent,
    ssb_area_mm2,
    ssb_energy_nj_per_access,
)
from .categorize import CategoryShare, categorize_runs, classify_run
from .lint import (
    FileLint,
    ValidationReport,
    ValidationRow,
    lint_source,
    render_lint,
    render_validation,
    validate_suites,
)
from .report import format_bars, format_series, format_table
from .speedup import (
    BenchmarkResult,
    amdahl_region_speedup,
    amdahl_whole_program,
    count_profitable,
    geometric_mean,
    speedup,
    speedup_percent,
    suite_geomean_speedup,
    weighted_time,
)

__all__ = [
    "AreaReport",
    "area_report",
    "pollack_expected_speedup_percent",
    "ssb_area_mm2",
    "ssb_energy_nj_per_access",
    "CategoryShare",
    "categorize_runs",
    "classify_run",
    "FileLint",
    "ValidationReport",
    "ValidationRow",
    "lint_source",
    "render_lint",
    "render_validation",
    "validate_suites",
    "format_bars",
    "format_series",
    "format_table",
    "BenchmarkResult",
    "amdahl_region_speedup",
    "amdahl_whole_program",
    "count_profitable",
    "geometric_mean",
    "speedup",
    "speedup_percent",
    "suite_geomean_speedup",
    "weighted_time",
]
