"""Structured span-based tracing with a JSON-lines timeline exporter.

A :class:`Tracer` records two record types:

* **spans** — wall-clock intervals with a name, parent and attributes
  (``compile``, ``compile.lower``, ``simulate`` …), and
* **events** — instantaneous marks attached to the enclosing span; the
  engine emits one per threadlet epoch transition (``epoch.spawn``,
  ``epoch.commit``, ``epoch.squash``) carrying the *simulated* cycle in
  its attributes, so a timeline interleaves wall time and machine time.

Tracing is disabled by default and purely observational: instrumented code
asks :func:`current_tracer` once (engines cache the answer at
construction) and skips all recording when it is ``None``, so simulated
cycle counts are bit-identical with tracing on, off, or absent.

Export format (one JSON object per line)::

    {"type":"span","id":1,"parent":null,"name":"simulate",
     "start":0.0012,"end":0.0470,"attrs":{"program":"kernel", ...}}
    {"type":"event","parent":1,"name":"epoch.spawn",
     "t":0.0013,"attrs":{"cycle":41,"slot":1,"epoch":1,"region":"L0"}}

``start``/``end``/``t`` are seconds relative to the tracer's creation.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class SpanRecord:
    """One wall-clock interval in the timeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "end": round(self.end, 6) if self.end is not None else None,
            "attrs": self.attrs,
        }


@dataclass
class EventRecord:
    """An instantaneous mark attached to the enclosing span."""

    parent_id: Optional[int]
    name: str
    t: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "event",
            "parent": self.parent_id,
            "name": self.name,
            "t": round(self.t, 6),
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans and events for one traced activity."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self._next_id = 1
        self._stack: List[SpanRecord] = []
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []

    def _now(self) -> float:
        return self._clock() - self._t0

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Open a child span of the innermost active span."""
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=self._now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)  # appended at open: stable start order
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self._now()

    def event(self, name: str, **attrs: Any) -> None:
        self.events.append(EventRecord(
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            t=self._now(),
            attrs=dict(attrs),
        ))

    # -- export --------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All spans and events as plain dicts, in timeline order."""
        merged = [(s.start, 0, s.to_record()) for s in self.spans]
        merged += [(e.t, 1, e.to_record()) for e in self.events]
        merged.sort(key=lambda item: (item[0], item[1]))
        return [record for _, _, record in merged]

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.records()
        ) + "\n"

    def write_jsonl(self, path) -> int:
        """Write the timeline to ``path``; returns the record count."""
        records = self.records()
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def summary(self) -> str:
        return summarize_records(self.records())


# ---------------------------------------------------------------------------
# Timeline summarization (shared by Tracer.summary and `repro trace FILE.jsonl`)
# ---------------------------------------------------------------------------

def read_jsonl(path) -> List[Dict[str, Any]]:
    """Parse a timeline file, skipping malformed lines."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("type") in (
                "span", "event"
            ):
                records.append(record)
    return records


def summarize_records(records: Iterable[Dict[str, Any]]) -> str:
    """Render a span tree with durations plus per-name event counts."""
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    if not spans and not events:
        return "(empty timeline)"

    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)

    lines: List[str] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for span in sorted(children.get(parent, []),
                           key=lambda s: s.get("start") or 0.0):
            start = span.get("start") or 0.0
            end = span.get("end")
            dur_ms = ((end - start) * 1000.0) if end is not None else 0.0
            attrs = span.get("attrs") or {}
            noted = " ".join(
                f"{k}={attrs[k]}" for k in sorted(attrs)
            )
            pad = "  " * depth
            lines.append(
                f"{pad}{span['name']:<{max(1, 28 - 2 * depth)}s} "
                f"{dur_ms:9.3f} ms" + (f"  {noted}" if noted else "")
            )
            walk(span.get("id"), depth + 1)

    walk(None, 0)

    if events:
        counts: Dict[str, int] = {}
        reasons: Dict[str, int] = {}
        for event in events:
            name = event.get("name", "?")
            counts[name] = counts.get(name, 0) + 1
            reason = (event.get("attrs") or {}).get("reason")
            if reason:
                reasons[f"{name}:{reason}"] = (
                    reasons.get(f"{name}:{reason}", 0) + 1
                )
        lines.append("")
        lines.append("events:")
        for name in sorted(counts):
            detail = ", ".join(
                f"{key.split(':', 1)[1]}={n}"
                for key, n in sorted(reasons.items())
                if key.startswith(name + ":")
            )
            lines.append(
                f"  {name:<16s} x{counts[name]}"
                + (f"  ({detail})" if detail else "")
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The process-wide active tracer.
# ---------------------------------------------------------------------------

_active: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled (default)."""
    return _active


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def disable_tracing() -> None:
    global _active
    _active = None


@contextmanager
def trace_scope(tracer: Optional[Tracer] = None):
    """Scoped tracing: installs a tracer, restores the old one on exit."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else Tracer()
    try:
        yield _active
    finally:
        _active = previous


def span(name: str, **attrs: Any):
    """Span context manager against the active tracer; no-op when disabled.

    The disabled path costs one global read and returns a shared inert
    context manager — cheap enough for compile-phase granularity (it is
    never called per-instruction or per-cycle).
    """
    tracer = _active
    if tracer is None:
        return _NULL_CM
    return tracer.span(name, **attrs)


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CM = _NullContext()
