"""Unified observability layer: metrics registry + structured tracing.

``repro.obs`` gives every run the same three observation surfaces:

* :mod:`repro.obs.metrics` — a typed catalog every subsystem registers its
  counters/gauges/histograms into, with on-demand collection from the
  existing ``SimStats``/``RunResult``/``CompileResult`` objects;
* :mod:`repro.obs.tracing` — span-based wall-clock tracing of the
  compile → lower → simulate pipeline with per-epoch machine-time events
  and a JSON-lines timeline exporter (``repro trace``);
* ``tools/bench_compare.py`` — the perf-regression gate that diffs a
  fresh engine benchmark against the committed baseline.

Everything here is disabled by default and purely observational: with no
tracer installed and no collection requested, simulated cycle counts are
bit-identical and the hot path is untouched.  See docs/observability.md.
"""

from .metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricSpec,
    MetricsRegistry,
    default_registry,
    diff_snapshots,
    format_snapshot,
    load_all,
    register,
)
from .tracing import (
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    read_jsonl,
    span,
    summarize_records,
    trace_scope,
)

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "MetricSpec",
    "MetricsRegistry",
    "default_registry",
    "diff_snapshots",
    "format_snapshot",
    "load_all",
    "register",
    "Tracer",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "read_jsonl",
    "span",
    "summarize_records",
    "trace_scope",
]
