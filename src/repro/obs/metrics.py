"""Typed metrics registry: the uniform observation surface of the stack.

Every instrumented subsystem (``uarch.core``, ``uarch.executor``,
``uarch.ssb``, ``uarch.conflict``, ``uarch.packing``, ``uarch.caches``,
the compiler pipeline) declares its metrics here as :class:`MetricSpec`
entries at import time.  The registry is a *catalog plus extractor*, not a
second storage layer: the hot simulation path keeps incrementing the plain
:class:`~repro.uarch.statistics.SimStats` attribute bag (the compatibility
shim — its dataclass layout, round-trip serialization and the result-store
digests are unchanged), and :meth:`MetricsRegistry.collect` maps a stats
object into a flat ``{metric_name: value}`` snapshot on demand.

This split is what keeps instrumentation free when nobody is looking:
collection walks the catalog once per *run*, never once per cycle, so
cycle counts stay bit-identical and throughput is untouched.

A coverage test pins the contract from the other side: every ``SimStats``
counter field must be described by exactly one registered spec, so new
engine counters cannot be added without documenting them in the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"
_KINDS = (COUNTER, GAUGE, HISTOGRAM)


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one observable metric.

    ``source`` names the attribute to read off the collected object
    (usually a ``SimStats`` field); ``derive`` computes the value from the
    whole object instead (ratios and other derived gauges).  Exactly one
    of the two must be set.
    """

    name: str                 # qualified, e.g. "uarch.ssb.reads"
    kind: str                 # COUNTER / GAUGE / HISTOGRAM
    subsystem: str            # owning subsystem, e.g. "uarch.ssb"
    description: str
    unit: str = ""
    source: Optional[str] = None
    derive: Optional[Callable[[Any], Any]] = field(
        default=None, compare=False
    )

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if (self.source is None) == (self.derive is None):
            raise ValueError(
                f"{self.name}: exactly one of source/derive must be set"
            )


class MetricsRegistry:
    """Process-wide catalog of metric declarations."""

    def __init__(self):
        self._specs: Dict[str, MetricSpec] = {}

    # -- registration --------------------------------------------------------

    def register(self, *specs: MetricSpec) -> None:
        """Add specs to the catalog.

        Re-registering an identical spec is a no-op (modules may be
        re-imported); registering a *different* spec under an existing
        name is an error — metric names are a public, documented schema.
        """
        for spec in specs:
            existing = self._specs.get(spec.name)
            if existing is None:
                self._specs[spec.name] = spec
            elif existing != spec:
                raise ValueError(
                    f"metric {spec.name!r} already registered with a "
                    f"different definition"
                )

    # -- lookup --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def get(self, name: str) -> Optional[MetricSpec]:
        return self._specs.get(name)

    def specs(self, subsystem: Optional[str] = None) -> List[MetricSpec]:
        """All specs, optionally restricted to a subsystem prefix."""
        out = [
            spec for spec in self._specs.values()
            if subsystem is None
            or spec.subsystem == subsystem
            or spec.subsystem.startswith(subsystem + ".")
        ]
        return sorted(out, key=lambda s: s.name)

    def subsystems(self) -> List[str]:
        return sorted({spec.subsystem for spec in self._specs.values()})

    def sources(self) -> List[str]:
        """Every attribute name the catalog reads (coverage testing)."""
        return sorted(
            spec.source for spec in self._specs.values()
            if spec.source is not None
        )

    # -- collection ----------------------------------------------------------

    def collect(self, obj: Any,
                subsystem: Optional[str] = None) -> Dict[str, Any]:
        """Snapshot ``obj`` into ``{metric_name: value}``.

        Specs whose source attribute is absent from ``obj`` (or whose
        derivation raises on it) are skipped, so one catalog serves
        ``SimStats``, ``RunResult`` and ``CompileResult`` alike.
        """
        snapshot: Dict[str, Any] = {}
        for spec in self.specs(subsystem):
            if spec.derive is not None:
                try:
                    value = spec.derive(obj)
                except (AttributeError, KeyError, TypeError, ZeroDivisionError):
                    continue
            else:
                if not hasattr(obj, spec.source):
                    continue
                value = getattr(obj, spec.source)
            if spec.kind == HISTOGRAM and isinstance(value, dict):
                value = dict(sorted(value.items(), key=lambda kv: str(kv[0])))
            snapshot[spec.name] = value
        return snapshot

    # -- rendering -----------------------------------------------------------

    def catalog(self) -> str:
        """Markdown table of every registered metric, grouped by subsystem
        (the source of truth behind ``docs/observability.md``)."""
        lines: List[str] = []
        for subsystem in self.subsystems():
            lines.append(f"### `{subsystem}`\n")
            lines.append("| metric | kind | unit | description |")
            lines.append("|---|---|---|---|")
            for spec in self.specs(subsystem):
                if spec.subsystem != subsystem:
                    continue
                unit = spec.unit or "—"
                lines.append(
                    f"| `{spec.name}` | {spec.kind} | {unit} "
                    f"| {spec.description} |"
                )
            lines.append("")
        return "\n".join(lines)


def diff_snapshots(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Tuple[Any, Any]]:
    """``{name: (before, after)}`` for every metric whose value changed."""
    out: Dict[str, Tuple[Any, Any]] = {}
    for name in sorted(set(before) | set(after)):
        a, b = before.get(name), after.get(name)
        if a != b:
            out[name] = (a, b)
    return out


def format_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-readable ``name  value`` listing, sorted by name."""
    if not snapshot:
        return "(no metrics)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, float):
            value = f"{value:.4f}"
        lines.append(f"{name:<{width}}  {value}")
    return "\n".join(lines)


# The process-wide registry all subsystems register into.
_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _REGISTRY


def register(*specs: MetricSpec) -> None:
    """Register into the default registry (module-import-time helper)."""
    _REGISTRY.register(*specs)


def load_all() -> MetricsRegistry:
    """Import every instrumented module so the catalog is complete.

    Registration happens at module import; callers that only want the
    catalog (docs, tests, the CLI) may not have pulled in the whole
    simulator yet.
    """
    from ..analysis import lint  # noqa: F401
    from ..compiler import pipeline  # noqa: F401
    from ..experiments import spec  # noqa: F401
    from ..fuzz import engine  # noqa: F401
    from ..sampling import runner  # noqa: F401
    from ..uarch import (  # noqa: F401
        caches, conflict, core, executor, packing, ssb,
    )
    return _REGISTRY
