"""Long-run workloads: the sampled-simulation proving ground.

Large-parameter variants of the standard kernel generators, sized so a
full detailed simulation takes hundreds of thousands to millions of
cycles — well past :class:`~repro.sampling.runner.SamplingConfig`'s
``full_detail_threshold`` — which is where SimPoint-style sampling
(docs/sampling.md) actually pays for itself.  The regular SPEC stand-in
phases are a few thousand instructions each and are deliberately *not*
sampled (the runner degenerates to an exact detailed run below the
threshold), so these are the workloads every sampling accuracy claim is
validated against.

Names carry a ``longrun_`` prefix so they can never shadow a suite
phase.
"""

from __future__ import annotations

from typing import List

from .base import (
    Benchmark,
    CATEGORY_CONTROL,
    CATEGORY_DATA_PREFETCH,
    CATEGORY_MEMORY,
    Workload,
)
from . import generators as g

# Detailed runs of these kernels take ~10^6 cycles; leave generous room.
LONGRUN_MAX_CYCLES = 50_000_000


def _long(workload: Workload) -> Workload:
    workload.max_cycles = LONGRUN_MAX_CYCLES
    return workload


def _longrun() -> List[Benchmark]:
    return [
        Benchmark(
            "longrun_imagick", "longrun",
            [(_long(g.convolution("longrun_conv", width=110, height=110,
                                  sequential=2000, seed=401)), 1.0)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="~0.5M-instruction thresholded convolution; "
                           "row-granular speculation (the hardest case for "
                           "short sampling windows)",
        ),
        Benchmark(
            "longrun_bwaves", "longrun",
            [(_long(g.stencil_rows("longrun_stencil", width=256, rows=120,
                                   sequential=1500, seed=409)), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="~0.8M-instruction streaming 3-point stencil; "
                           "highly phase-homogeneous",
        ),
        Benchmark(
            "longrun_libquantum", "longrun",
            [(_long(g.stream_op("longrun_stream", n=20000,
                                sequential=1000, seed=419)), 1.0)],
            category=CATEGORY_DATA_PREFETCH, profitable=True,
            spec_behaviour="~0.4M-instruction streaming pass with "
                           "data-dependent branches on missing loads",
        ),
        Benchmark(
            "longrun_xalanc", "longrun",
            [(_long(g.hash_probe("longrun_hash", queries=12000,
                                 table_bits=12, seed=421)), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="~0.7M-instruction hash-table probing; "
                           "irregular access pattern",
        ),
    ]
