"""SPEC CPU 2006 / 2017 stand-in suites.

Each entry names a SPEC benchmark the paper evaluates, the kernel template
that reproduces its documented loop behaviour (section 6.4 and 6.4.3), the
dominant table-2 gain category, and whether the paper reports it as
profitable (>1% whole-program speedup).

The workloads are synthetic stand-ins — see DESIGN.md for the substitution
argument.  Benchmarks may have several weighted phases, standing in for the
paper's SimPoint-weighted evaluation (section 6.1).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import WorkloadError
from . import generators as g
from .base import (
    Benchmark,
    CATEGORY_BRANCH_PREFETCH,
    CATEGORY_CONTROL,
    CATEGORY_DATA_PREFETCH,
    CATEGORY_DEPCHAIN,
    CATEGORY_MEMORY,
    CATEGORY_NONE,
    Workload,
)


def _spec2017() -> List[Benchmark]:
    return [
        Benchmark(
            "imagick", "spec2017",
            [(g.convolution("imagick_conv", width=26, height=26,
                            sequential=414), 0.7),
             (g.transpose("imagick_rotate", rows=48, cols=6, col_stride=64,
                          sequential=60), 0.3)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="dense image kernels with independent pixels; the"
            " paper's biggest winner (87%)",
        ),
        Benchmark(
            "omnetpp", "spec2017",
            [(g.event_queue("omnetpp_events", nodes=240, spread=6000,
                            sequential=234), 1.0)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="discrete-event queue walks: pointer chasing with"
            " data-dependent branches (paper: branch-condition prefetch)",
        ),
        Benchmark(
            "nab", "spec2017",
            [(g.md_force("nab_force", n=200, sequential=375), 1.0)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="molecular-dynamics force loops: sqrt/div chains",
        ),
        Benchmark(
            "gcc", "spec2017",
            [(g.hash_probe("gcc_symtab", queries=140, sequential=2296), 0.55),
             (g.branchy_count("gcc_fold", n=120, sequential=880), 0.3),
             (g.hist_prefetch("gcc_alias", n=130, branchy=True,
                              sequential=600, seed=311), 0.15)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="symbol-table probing and branchy folding passes",
        ),
        Benchmark(
            "xalancbmk", "spec2017",
            [(g.event_queue("xalanc_dom", nodes=180, spread=3000,
                            sequential=1822), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="DOM tree traversal: pointer chases, moderate"
            " sequential fraction",
        ),
        Benchmark(
            "mcf", "spec2017",
            [(g.network_flow("mcf_arcs", n=160, sequential=1644), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="network-simplex arc scans: cache-miss bound",
        ),
        Benchmark(
            "perlbench", "spec2017",
            [(g.hash_probe("perl_hash", queries=120, table_bits=9,
                           sequential=5952), 1.0)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="hash-heavy interpreter loops, large serial part",
        ),
        Benchmark(
            "x264", "spec2017",
            [(g.sad_block("x264_sad", blocks=130, sequential=2716), 1.0)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="block SAD with adjacent int32 stores (the"
            " benchmark that degrades at 8-byte granules, fig. 10)",
        ),
        Benchmark(
            "exchange2", "spec2017",
            [(g.branchy_count("exchange2_digits", n=200, sequential=3723), 0.8),
             (g.hist_prefetch("exchange2_perm", n=120, branchy=True,
                              sequential=700, seed=313), 0.2)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="puzzle digit counting: data-dependent branches",
        ),
        Benchmark(
            "povray", "spec2017",
            [(g.ray_sphere("povray_isect", rays=170, sequential=3283), 0.8),
             (g.scan_prefetch("povray_texture", queries=10, span=80,
                              sequential=650, seed=317), 0.2)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="ray-object intersection tests: FP + branch",
        ),
        Benchmark(
            "bwaves", "spec2017",
            [(g.stencil_rows("bwaves_stencil", width=72, rows=22,
                             sequential=777), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="structured-grid FP streams",
        ),
        Benchmark(
            "parest", "spec2017",
            [(g.sparse_matvec("parest_spmv", nrows=64, sequential=2228), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="sparse linear algebra gathers",
        ),
        Benchmark(
            "cactuBSSN", "spec2017",
            [(g.stencil_rows("cactu_stencil", width=60, rows=20,
                             sequential=1766), 1.0)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="relativity stencils: FP chains per point",
        ),
        # ---- the no-speedup set (section 6.4.3) ----
        Benchmark(
            "namd", "spec2017",
            [(g.saturated_fp("namd_fma", n=110), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="high IPC with a saturated pipeline (paper 6.4.3)",
        ),
        Benchmark(
            "lbm", "spec2017",
            [(g.huge_body("lbm_collide", n=8, points=280), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="extremely large loop bodies (paper 6.4.3)",
        ),
        Benchmark(
            "blender", "spec2017",
            [(g.low_trip_blocks("blender_verts", groups=46), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="low trip counts (paper 6.4.3)",
        ),
        Benchmark(
            "deepsjeng", "spec2017",
            [(g.tiny_loop("deepsjeng_eval", outer=50, trip=5), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="low trip count, high-IPC search (paper 6.4.3)",
        ),
        Benchmark(
            "leela", "spec2017",
            [(g.tiny_loop("leela_playout", outer=60, trip=4), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="very small loops (paper 6.4.3)",
        ),
        Benchmark(
            "xz", "spec2017",
            [(g.lz_match("xz_match", n=160, window=24), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="frequent cross-iteration dependencies needing"
            " DoACROSS (paper 6.4.3)",
        ),
        Benchmark(
            "wrf", "spec2017",
            [(g.stencil_rows("wrf_phys", width=40, rows=8,
                             sequential=2420), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="grid physics dominated by serial sections"
            " (below the 1% cut in the paper)",
        ),
    ]


def _spec2006() -> List[Benchmark]:
    return [
        Benchmark(
            "perlbench06", "spec2006",
            [(g.hash_probe("perl06_hash", queries=150, table_bits=9,
                           sequential=2294, seed=211), 1.0)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="interpreter hash loops",
        ),
        Benchmark(
            "bzip2", "spec2006",
            [(g.lz_match("bzip2_sort", n=140, window=40, seed=223), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="block-sort with cross-iteration deps",
        ),
        Benchmark(
            "gcc06", "spec2006",
            [(g.hash_probe("gcc06_symtab", queries=160, sequential=2178,
                           seed=227), 0.85),
             (g.hist_prefetch("gcc06_alias", n=120, branchy=True,
                              sequential=550, seed=331), 0.15)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="symbol-table probing",
        ),
        Benchmark(
            "mcf06", "spec2006",
            [(g.network_flow("mcf06_arcs", n=180, chain=10,
                             sequential=326, seed=229), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="pointer-heavy arc scans, miss bound",
        ),
        Benchmark(
            "gobmk", "spec2006",
            [(g.tiny_loop("gobmk_board", outer=55, trip=4, vary_trip=True,
                         seed=233), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="small branchy board loops",
        ),
        Benchmark(
            "hmmer", "spec2006",
            [(g.dp_row("hmmer_viterbi", cols=52, rows=12, sequential=1817,
                      seed=239), 1.0)],
            category=CATEGORY_BRANCH_PREFETCH, profitable=True,
            spec_behaviour="profile-HMM DP rows",
        ),
        Benchmark(
            "sjeng", "spec2006",
            [(g.tiny_loop("sjeng_eval", outer=48, trip=5, seed=241), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="search eval, low trip counts",
        ),
        Benchmark(
            "libquantum", "spec2006",
            [(g.stream_op("libq_toffoli", n=380, sequential=554,
                          seed=251), 1.0)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="streaming gate application: classic TLS winner",
        ),
        Benchmark(
            "h264ref", "spec2006",
            [(g.sad_block("h264_sad", blocks=140, sequential=927, seed=257), 1.0)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="motion-estimation SAD blocks",
        ),
        Benchmark(
            "omnetpp06", "spec2006",
            [(g.event_queue("omnetpp06_events", nodes=200, spread=5000,
                            sequential=357, seed=263), 1.0)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="event queue walks",
        ),
        Benchmark(
            "astar", "spec2006",
            [(g.grid_relax("astar_relax", cells=150, sequential=1234, seed=269), 1.0)],
            category=CATEGORY_CONTROL, profitable=True,
            spec_behaviour="grid relaxation with branchy mins",
        ),
        Benchmark(
            "xalancbmk06", "spec2006",
            [(g.event_queue("xalanc06_dom", nodes=170, spread=2500,
                            sequential=1506, seed=271), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="DOM traversal",
        ),
        Benchmark(
            "milc", "spec2006",
            [(g.sparse_matvec("milc_su3", nrows=56, nnz_per_row=8,
                              sequential=789, seed=277), 1.0)],
            category=CATEGORY_MEMORY, profitable=True,
            spec_behaviour="lattice gathers",
        ),
        Benchmark(
            "namd06", "spec2006",
            [(g.saturated_fp("namd06_fma", n=100, seed=281), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="saturated FP pipeline",
        ),
        Benchmark(
            "povray06", "spec2006",
            [(g.ray_sphere("povray06_isect", rays=150, sequential=3264,
                           seed=283), 0.85),
             (g.scan_prefetch("povray06_media", queries=9, span=70,
                              sequential=600, seed=337), 0.15)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="intersection tests",
        ),
        Benchmark(
            "lbm06", "spec2006",
            [(g.huge_body("lbm06_collide", n=8, points=270, seed=293), 1.0)],
            category=CATEGORY_NONE, profitable=False,
            spec_behaviour="huge loop bodies",
        ),
        Benchmark(
            "sphinx3", "spec2006",
            [(g.gauss_mix("sphinx_gauss", senones=56, sequential=997, seed=307), 1.0)],
            category=CATEGORY_DEPCHAIN, profitable=True,
            spec_behaviour="Gaussian scoring loops",
        ),
    ]


def _fill_categories(benchmarks: List[Benchmark]) -> List[Benchmark]:
    """Default each phase's expected gain category from its benchmark.

    The dedicated prefetch phases carry their own category (they are the
    table-2 "prefetching" loops inside otherwise true-parallelism
    benchmarks, mirroring the paper's footnote 2)."""
    explicit = {
        "gcc_alias": CATEGORY_BRANCH_PREFETCH,
        "exchange2_perm": CATEGORY_BRANCH_PREFETCH,
        "gcc06_alias": CATEGORY_BRANCH_PREFETCH,
        "povray_texture": CATEGORY_DATA_PREFETCH,
        "povray06_media": CATEGORY_DATA_PREFETCH,
    }
    for bench in benchmarks:
        for workload, _ in bench.phases:
            if not workload.category:
                workload.category = explicit.get(workload.name, bench.category)
    return benchmarks


_SUITES: Dict[str, List[Benchmark]] = {}


SUITE_NAMES = ("spec2017", "spec2006", "longrun")


def register_suite(name: str, benchmarks: List[Benchmark]) -> None:
    """Register a dynamically-built suite (spec files, fuzz corpora).

    Registered suites resolve through :func:`suite`, :func:`get_workload`
    and :func:`get_benchmark` exactly like the built-ins; re-registering a
    built-in name is an error, re-registering a dynamic one replaces it.
    """
    if name in SUITE_NAMES:
        raise WorkloadError(
            f"cannot register suite {name!r}: shadows a built-in suite"
        )
    if not benchmarks:
        raise WorkloadError(f"suite {name!r} has no benchmarks")
    _SUITES[name] = _fill_categories(list(benchmarks))


def available_suites() -> List[str]:
    """Built-in suite names plus any registered spec suites."""
    return list(SUITE_NAMES) + sorted(set(_SUITES) - set(SUITE_NAMES))


def suite(name: str) -> List[Benchmark]:
    """The benchmarks of a built-in (``"spec2017"``, ``"spec2006"``,
    ``"longrun"``) or registered suite (cached)."""
    if name not in _SUITES:
        if name == "spec2017":
            _SUITES[name] = _fill_categories(_spec2017())
        elif name == "spec2006":
            _SUITES[name] = _fill_categories(_spec2006())
        elif name == "longrun":
            from .longrun import _longrun

            _SUITES[name] = _fill_categories(_longrun())
        else:
            raise WorkloadError(
                f"unknown suite {name!r}; choose from: "
                f"{', '.join(available_suites())}"
            )
    return _SUITES[name]


def get_benchmark(name: str) -> Benchmark:
    for suite_name in available_suites():
        for bench in suite(suite_name):
            if bench.name == name:
                return bench
    raise WorkloadError(f"unknown benchmark {name!r}")


def get_workload(name: str) -> Workload:
    """Find a workload (phase) by name across all suites."""
    for suite_name in available_suites():
        for bench in suite(suite_name):
            for workload, _ in bench.phases:
                if workload.name == name:
                    return workload
    raise WorkloadError(f"unknown workload {name!r}")


def profitable_2017() -> List[Benchmark]:
    """The paper's 13 profitable SPEC CPU 2017 benchmarks (section 6.2)."""
    return [b for b in suite("spec2017") if b.profitable]
