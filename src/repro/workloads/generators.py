"""Kernel templates: one parameterised generator per SPEC behaviour class.

Each generator returns a :class:`~repro.workloads.base.Workload` whose Frog
source and input data are engineered to exhibit one of the loop behaviours
the paper's section 6.4 attributes to the SPEC benchmarks: memory-level
parallelism, hard-to-predict data-dependent branches, long dependency
chains, prefetch-dominated loops — plus the pathologies of the no-speedup
set (tiny bodies, low trip counts, saturated pipelines, cross-iteration
memory dependencies).

All inputs are deterministic (seeded); array placements are fixed constants
spread across the address space.
"""

from __future__ import annotations

import random
from typing import Dict

from ..uarch.memory_state import SparseMemory
from .base import Workload

# Fixed array bases, far enough apart that kernels never overlap regions.
A0 = 0x0001_0000
A1 = 0x0020_0000
A2 = 0x0040_0000
A3 = 0x0060_0000
A4 = 0x0080_0000
BIG = 0x0100_0000  # base of the "huge" sparse region for miss-heavy kernels
SINK = 0x00F0_0000  # where serial-prologue results are stored


def serial_section(iters: int, tag: int = 0) -> str:
    """An inherently serial code section: an FP-divide dependency chain.

    Stands in for a benchmark's sequential regions (which LoopFrog does not
    accelerate).  Each iteration costs a divide plus an add on the critical
    path (~15 cycles), so the serial time is tunable independently of the
    instruction count.  The result is stored so the chain cannot be
    dead-code-eliminated.
    """
    if iters <= 0:
        return ""
    return f"""
        var zserial{tag}: float = 1.5;
        var zsink{tag}: ptr<float> = {SINK + 16 * tag};
        for (var zs{tag}: int = 0; zs{tag} < {iters}; zs{tag} = zs{tag} + 1) {{
            zserial{tag} = zserial{tag} / 1.0001 + 0.25;
        }}
        zsink{tag}[0] = zserial{tag};
    """


def convolution(name: str, width: int = 22, height: int = 22,
                sequential: int = 40, seed: int = 11) -> Workload:
    """Thresholded 3x3 image kernel (imagick-like): independent rows with a
    hard-to-predict per-pixel branch.  In the baseline every mispredict
    freezes the single fetch stream; LoopFrog's independent threadlet
    streams keep fetching (the paper's "cutting control dependencies")."""
    source = f"""
    fn main(img: ptr<float>, out: ptr<float>, acc0: ptr<float>) {{
        var w: int = {width};
        var h: int = {height};
        // Serial fraction of the benchmark (not annotated).
{serial_section(sequential)}
        acc0[0] = 1.0;
        #pragma loopfrog
        for (var y: int = 1; y < h - 1; y = y + 1) {{
            for (var x: int = 1; x < w - 1; x = x + 1) {{
                var p: int = y * w + x;
                var acc: float = img[p] * 4.0;
                acc = acc - img[p - 1] - img[p + 1];
                acc = acc - img[p - w] - img[p + w];
                if (acc > 0.0) {{
                    out[p] = acc * 0.25;
                }} else {{
                    out[p] = 0.0 - acc * 0.125;
                }}
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        n = width * height
        mem.store_float_array(A0, [rng.uniform(-1, 1) for _ in range(n)])
        return {"r1": A0, "r2": A1, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="thresholded 3x3 kernel, independent rows")


def event_queue(name: str, nodes: int = 220, spread: int = 4096,
                sequential: int = 60, seed: int = 23) -> Workload:
    """Linked-list event processing with data-dependent branches
    (omnetpp-like): pointer chase in the continuation, branchy body."""
    source = f"""
    fn main(next: ptr<int>, data: ptr<int>, out: ptr<int>, node: int) {{
{serial_section(sequential)}
        var k: int = 0;
        #pragma loopfrog
        while (node != 0) {{
            var v: int = data[node];
            if (v % 3 == 0) {{
                out[k] = v * 5 + 1;
            }} else {{
                if (v % 3 == 1) {{ out[k] = v + 7; }}
                else {{ out[k] = (v >> 1) - 2; }}
            }}
            k = k + 1;
            node = next[node];
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        ids = rng.sample(range(1, spread), nodes)
        for pos, node in enumerate(ids):
            nxt = ids[pos + 1] if pos + 1 < nodes else 0
            mem.store_int(A0 + 8 * node, nxt)
            mem.store_int(A1 + 8 * node, rng.randrange(1 << 30))
        # nodes=0 means an empty list: start from the null node (zero-trip
        # walk) instead of indexing into an empty id list.
        return {"r1": A0, "r2": A1, "r3": A2, "r4": ids[0] if ids else 0}

    return Workload(name, source, setup, seed=seed,
                    description="linked-list walk with data-dependent branches")


def md_force(name: str, n: int = 200, sequential: int = 50,
             seed: int = 31) -> Workload:
    """Pairwise force loop with sqrt/div chains (nab-like): long FP
    dependency chains per iteration, fully parallel across iterations."""
    source = f"""
    fn main(px: ptr<float>, py: ptr<float>, f: ptr<float>) {{
        var cx: float = 0.25;
        var cy: float = -0.5;
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var dx: float = px[i] - cx;
            var dy: float = py[i] - cy;
            var r2: float = dx * dx + dy * dy + 0.5;
            var inv: float = 1.0 / sqrt(r2);
            var s3: float = inv * inv * inv;
            f[i] = f[i] + s3 * dx - s3 * dy;
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        mem.store_float_array(A0, [rng.uniform(-2, 2) for _ in range(n)])
        mem.store_float_array(A1, [rng.uniform(-2, 2) for _ in range(n)])
        mem.store_float_array(A2, [0.0] * (n + 1))
        return {"r1": A0, "r2": A1, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="MD force loop: sqrt/div dependency chains")


def saturated_fp(name: str, n: int = 120, sequential: int = 0,
                 seed: int = 37) -> Workload:
    """High-IPC dense FP kernel (namd-like): the baseline pipeline is
    already近 saturated, leaving no headroom for threadlets."""
    source = f"""
    fn main(a: ptr<float>, b: ptr<float>, out: ptr<float>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var p: int = i * 8;
            out[p] = a[p] * b[p] + 1.0;
            out[p + 1] = a[p + 1] * b[p + 1] + 1.0;
            out[p + 2] = a[p + 2] * b[p + 2] + 1.0;
            out[p + 3] = a[p + 3] * b[p + 3] + 1.0;
            out[p + 4] = a[p + 4] * b[p + 4] + 1.0;
            out[p + 5] = a[p + 5] * b[p + 5] + 1.0;
            out[p + 6] = a[p + 6] * b[p + 6] + 1.0;
            out[p + 7] = a[p + 7] * b[p + 7] + 1.0;
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        total = n * 8
        mem.store_float_array(A0, [rng.uniform(0, 1) for _ in range(total)])
        mem.store_float_array(A1, [rng.uniform(0, 1) for _ in range(total)])
        return {"r1": A0, "r2": A1, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="dense independent FP, saturated baseline")


def hash_probe(name: str, queries: int = 150, table_bits: int = 10,
               fill: float = 0.5, sequential: int = 60,
               seed: int = 41) -> Workload:
    """Open-addressing hash probes (gcc/perlbench-like): irregular inner
    trip counts and data-dependent branches."""
    size = 1 << table_bits
    mask = size - 1
    source = f"""
    fn main(keys: ptr<int>, table: ptr<int>, out: ptr<int>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var q: int = 0; q < {queries}; q = q + 1) {{
            var key: int = keys[q];
            var h: int = (key * 40503) & {mask};
            var probes: int = 0;
            while (table[h] != key) {{
                h = (h + 1) & {mask};
                probes = probes + 1;
                if (probes > 12) {{ break; }}
            }}
            out[q] = h + probes * {size};
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        table = [0] * size
        keys = []
        for _ in range(int(size * fill)):
            key = rng.randrange(1, 1 << 40)
            h = (key * 40503) & mask
            while table[h]:
                h = (h + 1) & mask
            table[h] = key
            keys.append(key)
        query_keys = [rng.choice(keys) if rng.random() < 0.8
                      else rng.randrange(1, 1 << 40) for _ in range(queries)]
        mem.store_int_array(A0, query_keys)
        mem.store_int_array(A1, table)
        return {"r1": A0, "r2": A1, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="hash-table probing, irregular trips")


def sad_block(name: str, blocks: int = 120, sequential: int = 0,
              seed: int = 43) -> Workload:
    """Sum-of-absolute-differences over blocks with adjacent 4-byte result
    stores (x264-like).  The int32 output layout is what makes this kernel
    sensitive to >=8-byte conflict granules (figure 10)."""
    source = f"""
    fn main(cur: ptr<int32>, ref: ptr<int32>, sad: ptr<int32>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var b: int = 0; b < {blocks}; b = b + 1) {{
            var base: int = b * 16;
            var acc: int = 0;
            for (var p: int = 0; p < 16; p = p + 1) {{
                acc = acc + abs(cur[base + p] - ref[base + p]);
            }}
            // Smoothing reads a block finished two epochs ago: at 4-byte
            // granules there is enough slack that forwarding always wins,
            // but the adjacent int32 stores share 8-byte granules, whose
            // read-modify-write false reads conflict under misordering.
            var smooth: int = 0;
            if (b > 1) {{ smooth = sad[b - 2]; }}
            if (acc & 1 == 1) {{
                sad[b] = acc + (smooth >> 3);
            }} else {{
                sad[b] = acc - (smooth >> 4);
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        total = blocks * 16
        mem.store_int_array(A0, [rng.randrange(256) for _ in range(total)], size=4)
        mem.store_int_array(A1, [rng.randrange(256) for _ in range(total)], size=4)
        return {"r1": A0, "r2": A1, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="block SAD with adjacent int32 stores")


def network_flow(name: str, n: int = 160, chain: int = 12, span: int = 0xFFFF,
                 sequential: int = 50, seed: int = 47) -> Workload:
    """Late-discovered long-latency misses (mcf-like).

    Each iteration runs a serial hash chain and only then loads from the
    cold region at the hashed address: the miss cannot issue before the
    chain resolves, so the baseline's reorder buffer covers only a handful
    of outstanding misses.  Threadlets keep retiring into their own ROB
    slices and run far ahead, discovering future misses early — the paper's
    "memory parallelism" win."""
    source = f"""
    fn main(seeds: ptr<int>, cost: ptr<int>, out: ptr<int>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var h: int = seeds[i];
            for (var k: int = 0; k < {chain}; k = k + 1) {{
                h = (h * 1103515245 + 12345) & 0x7fffffff;
            }}
            var a: int = (h & {span}) * 16;
            var c: int = cost[a];
            if (c < 0) {{ out[i] = c - h % 7; }}
            else {{ out[i] = c + h % 9 + 1; }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        mem.store_int_array(A0, [rng.randrange(1 << 30) for _ in range(n)])
        # The cost region (BIG) stays unwritten: every access is a cold miss.
        return {"r1": A0, "r2": BIG, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="hash-chained far misses: late-discovered MLP")


def stencil_rows(name: str, width: int = 64, rows: int = 24,
                 sequential: int = 30, seed: int = 53) -> Workload:
    """Row-wise 3-point stencil (bwaves/cactuBSSN-like): streaming FP."""
    source = f"""
    fn main(grid: ptr<float>, out: ptr<float>) {{
        var w: int = {width};
{serial_section(sequential)}
        #pragma loopfrog
        for (var r: int = 0; r < {rows}; r = r + 1) {{
            var base: int = r * w;
            for (var x: int = 1; x < w - 1; x = x + 1) {{
                out[base + x] = (grid[base + x - 1] + grid[base + x] * 2.0
                                 + grid[base + x + 1]) * 0.25;
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        n = rows * width
        mem.store_float_array(A0, [rng.uniform(0, 4) for _ in range(n)])
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="row-parallel 3-point stencil")


def huge_body(name: str, n: int = 30, points: int = 36,
              sequential: int = 0, seed: int = 59) -> Workload:
    """Very large loop bodies with heavy store traffic (lbm-like): one
    iteration's contiguous distribution writes exceed the threadlet's
    2-KiB SSB slice, so speculative epochs stall mid-body and
    parallelization gains little (paper 6.4.3)."""
    body_lines = "\n".join(
        f"            out[base + {p}] = grid[base + {p}] * 0.9 + grid[base + {p + 1}] * 0.05 + w{p % 4};"
        for p in range(points)
    )
    source = f"""
    fn main(grid: ptr<float>, out: ptr<float>) {{
{serial_section(sequential)}
        var w0: float = 0.01;
        var w1: float = 0.02;
        var w2: float = 0.03;
        var w3: float = 0.04;
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var base: int = i * {points + 1};
{body_lines}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        total = n * (points + 1) + 1
        mem.store_float_array(A0, [rng.uniform(0, 1) for _ in range(total)])
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="huge loop body, SSB-overflowing stores")


def tiny_loop(name: str, outer: int = 60, trip: int = 6,
              vary_trip: bool = False, seed: int = 61) -> Workload:
    """Very small inner loops with low trip counts (leela/deepsjeng-like):
    spawning overhead eats the parallelism.  With ``vary_trip`` the trip
    count is data dependent, defeating the loop predictor and iteration
    packing (gobmk-like)."""
    trip_expr = f"{trip} + (a[base] & 3)" if vary_trip else str(trip)
    source = f"""
    fn main(a: ptr<int>, out: ptr<int>) {{
        for (var o: int = 0; o < {outer}; o = o + 1) {{
            var base: int = o * {trip};
            // sequential glue between the tiny parallel loops
            var bias: int = a[base] * 3 - o;
            out[{outer * (trip + 4)} + o] = bias;
            var trips: int = {trip_expr};
            #pragma loopfrog
            for (var i: int = 0; i < trips; i = i + 1) {{
                out[base + i] = a[base + i] + (a[base + i] >> 2);
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        total = outer * trip
        mem.store_int_array(A0, [rng.randrange(1 << 20) for _ in range(total)])
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="tiny low-trip parallel loops")


def lz_match(name: str, n: int = 150, window: int = 24,
             sequential: int = 0, seed: int = 67) -> Workload:
    """Sliding-window dependent rewriting (xz-like): iterations read bytes
    recently written by earlier iterations — frequent true conflicts."""
    source = f"""
    fn main(buf: ptr<int>, dist: ptr<int>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var d: int = dist[i];
            var src: int = i + {window} - d;
            buf[i + {window}] = buf[src] + 1;
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        mem.store_int_array(A0, [rng.randrange(64) for _ in range(window)])
        mem.store_int_array(A1, [rng.randrange(1, window // 2) for _ in range(n)])
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="overlapping window: cross-iteration deps")


def stream_op(name: str, n: int = 300, stride: int = 8,
              sequential: int = 30, seed: int = 71) -> Workload:
    """Quantum gate application (libquantum-like): a single streaming pass
    where a *data-dependent branch* tests a control bit of each freshly
    missing amplitude.  The baseline's fetch stalls on every mispredict
    until the missing load resolves; LoopFrog's four independent streams
    overlap those stalls — the classic TLS win on this benchmark."""
    source = f"""
    fn main(state: ptr<int>, out: ptr<int>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var p: int = i * {stride};
            var amp: int = state[p];
            if ((amp >> 3) & 1 == 1) {{
                state[p] = amp ^ 2731;
            }} else {{
                state[p] = amp + 1;
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        # One 64-bit amplitude per cache line: no reuse, every access is an
        # L1 miss (only the L2 is warmed by the engine).
        for i in range(n):
            mem.store_int(A0 + 8 * i * stride, rng.randrange(1 << 40))
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="gate application with control-bit branches")


def dp_row(name: str, cols: int = 48, rows: int = 12,
           sequential: int = 0, seed: int = 73) -> Workload:
    """Dynamic-programming rows (hmmer-like): row-internal parallelism."""
    source = f"""
    fn main(prev: ptr<int>, cur: ptr<int>, score: ptr<int>) {{
{serial_section(sequential)}
        for (var r: int = 0; r < {rows}; r = r + 1) {{
            var prow: int = (r % 2) * {cols};
            var crow: int = ((r + 1) % 2) * {cols};
            #pragma loopfrog
            for (var j: int = 1; j < {cols}; j = j + 1) {{
                var up: int = prev[prow + j] - 3;
                var diag: int = prev[prow + j - 1] + score[r * {cols} + j];
                // Data-dependent selection: mispredicts gate the baseline.
                if (diag > up) {{
                    cur[crow + j] = diag;
                }} else {{
                    cur[crow + j] = up - (up >> 4);
                }}
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        mem.store_int_array(A0, [rng.randrange(20) for _ in range(2 * cols)])
        mem.store_int_array(A1, [0] * (2 * cols))
        mem.store_int_array(A2, [rng.randrange(-5, 15) for _ in range(rows * cols)])
        return {"r1": A0, "r2": A0, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="DP rows: in-row parallel, cross-row serial")


def sparse_matvec(name: str, nrows: int = 60, nnz_per_row: int = 6,
                  xspan: int = 20000, sequential: int = 0,
                  seed: int = 79) -> Workload:
    """CSR sparse matrix-vector product (parest/milc-like): indirection."""
    source = f"""
    fn main(rowptr: ptr<int>, col: ptr<int>, val: ptr<float>,
            x: ptr<float>, y: ptr<float>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var r: int = 0; r < {nrows}; r = r + 1) {{
            var start: int = rowptr[r];
            var stop: int = rowptr[r + 1];
            var acc: float = 0.0;
            for (var k: int = start; k < stop; k = k + 1) {{
                acc = acc + val[k] * x[col[k]];
            }}
            y[r] = acc;
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        rowptr = [0]
        cols, vals = [], []
        for _ in range(nrows):
            for _ in range(nnz_per_row):
                cols.append(rng.randrange(xspan))
                vals.append(rng.uniform(-1, 1))
            rowptr.append(len(cols))
        mem.store_int_array(A0, rowptr)
        mem.store_int_array(A1, cols)
        mem.store_float_array(A2, vals)
        for c in set(cols):
            mem.store_float(A3 + 8 * c, rng.uniform(0, 1))
        return {"r1": A0, "r2": A1, "r3": A2, "r4": A3, "f1": 0.0}

    # The 5th argument (y) exceeds the 4-register int ABI; pack it by
    # pre-writing the base into a fixed location... simpler: y shares A4 via
    # a constant below.
    source = source.replace(
        "fn main(rowptr: ptr<int>, col: ptr<int>, val: ptr<float>,\n"
        "            x: ptr<float>, y: ptr<float>) {",
        f"fn main(rowptr: ptr<int>, col: ptr<int>, val: ptr<float>, x: ptr<float>) {{\n"
        f"        var y: ptr<float> = {A4};",
    )
    return Workload(name, source, setup, seed=seed,
                    description="CSR SpMV: gather indirection")


def ray_sphere(name: str, rays: int = 160, hit_rate: float = 0.45,
               sequential: int = 0, seed: int = 83) -> Workload:
    """FP intersection tests with data-dependent branch (povray-like)."""
    source = f"""
    fn main(bx: ptr<float>, cs: ptr<float>, out: ptr<float>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {rays}; i = i + 1) {{
            var b: float = bx[i];
            var c: float = cs[i];
            var disc: float = b * b - c;
            if (disc > 0.0) {{
                out[i] = 0.0 - b - sqrt(disc);
            }} else {{
                out[i] = -1.0;
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        bs, cs = [], []
        for _ in range(rays):
            b = rng.uniform(-2, 2)
            hit = rng.random() < hit_rate
            c = b * b - rng.uniform(0.01, 2.0) if hit else b * b + rng.uniform(0.01, 2.0)
            bs.append(b)
            cs.append(c)
        mem.store_float_array(A0, bs)
        mem.store_float_array(A1, cs)
        return {"r1": A0, "r2": A1, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="ray-sphere tests: data-dependent FP branch")


def branchy_count(name: str, n: int = 180, sequential: int = 40,
                  seed: int = 89) -> Workload:
    """Digit/permutation counting with data-dependent control
    (exchange2-like): gains come from resolving branch conditions early."""
    source = f"""
    fn main(digits: ptr<int>, out: ptr<int>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var d: int = digits[i];
            var score: int = 0;
            if (d & 1 == 1) {{ score = score + 3; }}
            if (d & 2 == 2) {{ score = score - 1; }}
            if (d % 5 == 0) {{ score = score * 2; }}
            if (d % 7 == 3) {{ score = score + d; }}
            out[i] = score;
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        mem.store_int_array(A0, [rng.randrange(1 << 24) for _ in range(n)])
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="branchy scoring: data-dependent control")


def grid_relax(name: str, cells: int = 140, width: int = 32,
               sequential: int = 0, seed: int = 97) -> Workload:
    """Grid neighbour relaxation (astar-like): branchy memory updates over
    disjoint output cells."""
    source = f"""
    fn main(dist: ptr<int>, cost: ptr<int>, out: ptr<int>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {cells}; i = i + 1) {{
            var p: int = i + {width};
            var best: int = dist[p - 1];
            var up: int = dist[p - {width}];
            if (up < best) {{ best = up; }}
            var right: int = dist[p + 1];
            if (right < best) {{ best = right; }}
            out[p] = best + cost[p];
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        total = cells + 2 * width
        mem.store_int_array(A0, [rng.randrange(100) for _ in range(total)])
        mem.store_int_array(A1, [rng.randrange(10) for _ in range(total)])
        return {"r1": A0, "r2": A1, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="neighbour relaxation with branchy mins")


def gauss_mix(name: str, senones: int = 60, features: int = 16,
              sequential: int = 0, seed: int = 101) -> Workload:
    """Gaussian distance scoring (sphinx3-like): FP accumulate per senone."""
    source = f"""
    fn main(feat: ptr<float>, mean: ptr<float>, var_: ptr<float>,
            score: ptr<float>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var s: int = 0; s < {senones}; s = s + 1) {{
            var base: int = s * {features};
            var acc: float = 0.0;
            for (var d: int = 0; d < {features}; d = d + 1) {{
                var diff: float = feat[d] - mean[base + d];
                acc = acc + diff * diff * var_[base + d];
            }}
            score[s] = acc;
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        mem.store_float_array(A0, [rng.uniform(-1, 1) for _ in range(features)])
        total = senones * features
        mem.store_float_array(A1, [rng.uniform(-1, 1) for _ in range(total)])
        mem.store_float_array(A2, [rng.uniform(0.5, 2) for _ in range(total)])
        return {"r1": A0, "r2": A1, "r3": A2, "r4": A3}

    return Workload(name, source, setup, seed=seed,
                    description="per-senone Gaussian distances")


def low_trip_blocks(name: str, groups: int = 50, trip: int = 3,
                    work: int = 25, seed: int = 103) -> Workload:
    """Mostly-sequential work with occasional 3-trip loops (blender-like)."""
    source = f"""
    fn main(v: ptr<float>, out: ptr<float>) {{
        for (var g: int = 0; g < {groups}; g = g + 1) {{
            // long sequential section per group
            var t: float = 1.0;
            for (var s: int = 0; s < {work}; s = s + 1) {{
                t = t * 0.99 + v[g];
            }}
            out[{groups * trip} + g] = t;
            var base: int = g * {trip};
            #pragma loopfrog
            for (var i: int = 0; i < {trip}; i = i + 1) {{
                out[base + i] = v[base + i] * 2.0 + 1.0;
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        total = groups * trip
        mem.store_float_array(A0, [rng.uniform(0, 1) for _ in range(total)])
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="low-trip loops buried in sequential code")


def hist_prefetch(name: str, n: int = 150, slots: int = 8,
                  branchy: bool = True, span: int = 60000,
                  sequential: int = 0, seed: int = 109) -> Workload:
    """A loop whose speculation mostly *fails* but still pays off
    (paper section 6.4.2: prefetching).

    Every iteration loads from a cold far region and folds the value into a
    tiny shared histogram; the histogram writes conflict between epochs, so
    most threadlets are squashed — but their far loads have already warmed
    the caches (and, in the ``branchy`` variant, resolved the
    data-dependent branch conditions), so the restarted architectural
    execution runs much faster."""
    if branchy:
        body = """
            var slot: int = c & {mask};
            if (c > 512) {{
                hist[slot] = hist[slot] + c;
            }} else {{
                hist[slot + {slots}] = hist[slot + {slots}] + 1;
            }}"""
    else:
        body = """
            var slot: int = c & {mask};
            hist[slot] = hist[slot] + c;"""
    body = body.format(mask=slots - 1, slots=slots)
    source = f"""
    fn main(idx: ptr<int>, cost: ptr<int>, hist: ptr<int>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var i: int = 0; i < {n}; i = i + 1) {{
            var a: int = idx[i];
            var c: int = cost[a];
{body}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        indices = [rng.randrange(span) * 16 for _ in range(n)]
        mem.store_int_array(A0, indices)
        # Sparse-populate the far region so branch outcomes vary (~50/50);
        # the lines are spread too widely for the L2 warmup to matter.
        for a in indices:
            if rng.random() < 0.5:
                mem.store_int(BIG + 8 * a, rng.randrange(513, 4096))
        return {"r1": A0, "r2": BIG, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="conflict-heavy histogram over far loads")


def scan_prefetch(name: str, queries: int = 10, span: int = 80,
                  stride: int = 8, sequential: int = 0,
                  seed: int = 113) -> Workload:
    """Repeated linear scans with early exit (data-value prefetching).

    Each query scans a cold strided region until it finds its key and
    breaks.  Speculative threadlets past the break are squashed by the
    ``sync``, but they have already fetched the lines the *next* query's
    scan will read — failed speculation acting as a data prefetcher
    (paper section 6.4.2, "speeding up the delivery of data")."""
    source = f"""
    fn main(keys: ptr<int>, far: ptr<int>, out: ptr<int>) {{
        for (var q: int = 0; q < {queries}; q = q + 1) {{
            var key: int = keys[q];
            out[q] = -1;
            #pragma loopfrog
            for (var j: int = 0; j < {span}; j = j + 1) {{
                var v: int = far[j * {stride}];
                if (v == key) {{
                    out[q] = j;
                    break;
                }}
            }}
        }}
        // Serial tail (after the scans, so their pipeline dynamics are
        // not hidden behind a slowly draining prologue).
{serial_section(sequential)}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        values = [rng.randrange(1, 1 << 30) for _ in range(span)]
        # One 8-byte element per cache line across a region the L2 warmup
        # covers but the L1 does not.
        for j, v in enumerate(values):
            mem.store_int(A3 + 8 * j * stride, v)
        # Keys found at increasing depths so every scan goes a bit further.
        depths = sorted(rng.sample(range(span // 4, span), queries))
        mem.store_int_array(A0, [values[d] for d in depths])
        return {"r1": A0, "r2": A3, "r3": A2}

    return Workload(name, source, setup, seed=seed,
                    description="early-exit scans warmed by failed speculation")


def transpose(name: str, rows: int = 20, cols: int = 16, col_stride: int = 32,
              sequential: int = 0, seed: int = 127) -> Workload:
    """Column-major image writes (imagick transpose/rotate-like).

    Each epoch writes one output row of the transposed image: ``cols``
    stores separated by ``col_stride`` elements (256 B at the default),
    which alias to a handful of SSB sets.  With unconstrained associativity
    the writes fit easily; at 4-way the slice overflows a set and the
    threadlet stalls — the associativity sensitivity of paper section 6.6,
    which its victim buffer partially recovers."""
    source = f"""
    fn main(img: ptr<float>, out: ptr<float>) {{
{serial_section(sequential)}
        #pragma loopfrog
        for (var y: int = 0; y < {rows}; y = y + 1) {{
            for (var x: int = 0; x < {cols}; x = x + 1) {{
                out[x * {col_stride} + y] = img[y * {cols} + x] * 0.5 + 1.0;
            }}
        }}
    }}
    """

    def setup(mem: SparseMemory, rng: random.Random) -> Dict[str, float]:
        mem.store_float_array(A0, [rng.uniform(0, 2) for _ in range(rows * cols)])
        return {"r1": A0, "r2": A1}

    return Workload(name, source, setup, seed=seed,
                    description="column-major writes: SSB set-aliasing")
