"""Declarative workload specs: suites as data instead of code.

A :class:`WorkloadSpec` names a kernel *template* (one of the public
generator functions in :mod:`repro.workloads.generators`), the parameters
to instantiate it with, and an optional seed / cycle budget / category
override.  Specs round-trip through a deterministic YAML subset
(:mod:`repro.workloads.specyaml`), so a suite is now a checked-in data
file rather than a Python module — the fmperf pattern of homogeneous /
heterogeneous / realistic workload specs.

A spec file holds one of three document shapes:

* a single spec mapping (``template: ... / name: ...``),
* a list of spec mappings,
* a suite mapping (``suite: NAME`` + ``benchmarks:`` each with weighted
  ``phases`` of specs), which :func:`register_spec_suite` makes visible
  to ``repro suite`` / ``get_workload`` alongside the built-in stand-ins.

The template registry is discovered by introspection: every public
function in ``generators`` whose first parameter is ``name`` is a
template, and its keyword defaults define the legal spec parameters.
Adding a generator automatically adds a template.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import SpecError
from . import generators, specyaml
from .base import ALL_CATEGORIES, Benchmark, CATEGORY_NONE, Workload

__all__ = [
    "WorkloadSpec",
    "BenchmarkSpec",
    "SuiteSpec",
    "template_names",
    "template_params",
    "parse_spec_document",
    "load_spec_file",
    "build_suite",
    "register_spec_suite",
]


# ---------------------------------------------------------------------------
# Template registry (discovered from the generator module)
# ---------------------------------------------------------------------------


def _discover_templates() -> Dict[str, Any]:
    templates: Dict[str, Any] = {}
    for name in dir(generators):
        if name.startswith("_"):
            continue
        fn = getattr(generators, name)
        if not inspect.isfunction(fn) or fn.__module__ != generators.__name__:
            continue
        params = list(inspect.signature(fn).parameters)
        if not params or params[0] != "name":
            continue  # helpers like serial_section are not templates
        templates[name] = fn
    return templates


_TEMPLATES: Dict[str, Any] = _discover_templates()


def template_names() -> List[str]:
    """Every registered kernel template id, sorted."""
    return sorted(_TEMPLATES)


def template_params(template: str) -> Dict[str, Any]:
    """``{param: default}`` for a template (excluding ``name``/``seed``)."""
    fn = _TEMPLATES.get(template)
    if fn is None:
        raise SpecError(
            f"unknown template {template!r}; choose from: "
            f"{', '.join(template_names())}"
        )
    out = {}
    for pname, param in inspect.signature(fn).parameters.items():
        if pname in ("name", "seed"):
            continue
        out[pname] = param.default
    return out


# ---------------------------------------------------------------------------
# WorkloadSpec
# ---------------------------------------------------------------------------

_SPEC_KEYS = ("template", "name", "params", "seed", "max_cycles", "category")


@dataclass(frozen=True)
class WorkloadSpec:
    """A frozen, hashable description of one workload instantiation."""

    template: str
    name: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: Optional[int] = None
    max_cycles: Optional[int] = None
    category: str = ""

    def __post_init__(self):
        if isinstance(self.params, dict):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        else:
            object.__setattr__(
                self, "params", tuple(sorted(tuple(p) for p in self.params))
            )
        if not self.name or not isinstance(self.name, str):
            raise SpecError("spec needs a non-empty string 'name'")
        legal = template_params(self.template)  # validates the template too
        for key, _value in self.params:
            if key not in legal:
                raise SpecError(
                    f"{self.name}: template {self.template!r} has no "
                    f"parameter {key!r}; valid parameters: "
                    f"{', '.join(sorted(legal))}"
                )
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecError(f"{self.name}: seed must be an integer")
        if self.category and self.category not in (
            ALL_CATEGORIES + (CATEGORY_NONE,)
        ):
            raise SpecError(
                f"{self.name}: unknown category {self.category!r}"
            )

    # -- conversion ----------------------------------------------------------

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"template": self.template, "name": self.name}
        if self.params:
            out["params"] = self.params_dict()
        if self.seed is not None:
            out["seed"] = self.seed
        if self.max_cycles is not None:
            out["max_cycles"] = self.max_cycles
        if self.category:
            out["category"] = self.category
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "WorkloadSpec":
        if not isinstance(data, dict):
            raise SpecError(
                f"workload spec must be a mapping, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_SPEC_KEYS))
        if unknown:
            raise SpecError(
                f"unknown spec key(s) {', '.join(unknown)}; valid keys: "
                f"{', '.join(_SPEC_KEYS)}"
            )
        if "template" not in data:
            raise SpecError("workload spec needs a 'template' key")
        if "name" not in data:
            raise SpecError("workload spec needs a 'name' key")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise SpecError(
                f"{data.get('name')}: 'params' must be a mapping"
            )
        return cls(
            template=data["template"],
            name=data["name"],
            params=tuple(sorted(params.items())),
            seed=data.get("seed"),
            max_cycles=data.get("max_cycles"),
            category=data.get("category") or "",
        )

    def to_yaml(self) -> str:
        return specyaml.dump(self.to_dict())

    @classmethod
    def from_yaml(cls, text: str) -> "WorkloadSpec":
        return cls.from_dict(specyaml.load(text))

    # -- instantiation -------------------------------------------------------

    def instantiate(self) -> Workload:
        """Build the concrete :class:`Workload` this spec describes.

        The spec seed is passed to the generator call itself, so it reaches
        the setup ``random.Random`` through the normal ``Workload.seed``
        path — there is no post-hoc mutation that could race the digest or
        compile caches.
        """
        fn = _TEMPLATES[self.template]
        kwargs = self.params_dict()
        if self.seed is not None:
            kwargs["seed"] = self.seed
        try:
            workload = fn(self.name, **kwargs)
        except SpecError:
            raise
        except Exception as exc:
            raise SpecError(
                f"{self.name}: template {self.template!r} rejected "
                f"params {kwargs!r}: {exc}"
            ) from exc
        if self.max_cycles is not None:
            workload.max_cycles = self.max_cycles
        if self.category:
            workload.category = self.category
        return workload


# ---------------------------------------------------------------------------
# Suite specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark of a spec-defined suite: weighted workload specs."""

    name: str
    phases: Tuple[Tuple[WorkloadSpec, float], ...]
    category: str = CATEGORY_NONE
    profitable: bool = True
    spec_behaviour: str = ""

    @classmethod
    def from_dict(cls, data: Any) -> "BenchmarkSpec":
        if not isinstance(data, dict):
            raise SpecError("benchmark entry must be a mapping")
        if "name" not in data:
            raise SpecError("benchmark entry needs a 'name' key")
        name = data["name"]
        raw_phases = data.get("phases")
        if not isinstance(raw_phases, list) or not raw_phases:
            raise SpecError(
                f"benchmark {name!r} needs a non-empty 'phases' list"
            )
        phases = []
        for entry in raw_phases:
            if not isinstance(entry, dict):
                raise SpecError(
                    f"benchmark {name!r}: each phase must be a mapping"
                )
            entry = dict(entry)
            weight = entry.pop("weight", 1.0)
            if not isinstance(weight, (int, float)) or weight <= 0:
                raise SpecError(
                    f"benchmark {name!r}: phase weight must be positive"
                )
            phases.append((WorkloadSpec.from_dict(entry), float(weight)))
        category = data.get("category") or CATEGORY_NONE
        if category not in ALL_CATEGORIES + (CATEGORY_NONE,):
            raise SpecError(
                f"benchmark {name!r}: unknown category {category!r}"
            )
        return cls(
            name=name,
            phases=tuple(phases),
            category=category,
            profitable=bool(data.get("profitable", True)),
            spec_behaviour=data.get("spec_behaviour") or "",
        )


@dataclass(frozen=True)
class SuiteSpec:
    """A whole spec-defined suite (``suite:`` + ``benchmarks:``)."""

    name: str
    benchmarks: Tuple[BenchmarkSpec, ...] = field(default_factory=tuple)
    description: str = ""

    @classmethod
    def from_dict(cls, data: Any) -> "SuiteSpec":
        name = data.get("suite")
        if not name or not isinstance(name, str):
            raise SpecError("suite spec needs a non-empty 'suite' name")
        unknown = sorted(set(data) - {"suite", "benchmarks", "description"})
        if unknown:
            raise SpecError(
                f"unknown suite key(s): {', '.join(unknown)}"
            )
        raw = data.get("benchmarks")
        if not isinstance(raw, list) or not raw:
            raise SpecError(
                f"suite {name!r} needs a non-empty 'benchmarks' list"
            )
        return cls(
            name=name,
            benchmarks=tuple(BenchmarkSpec.from_dict(b) for b in raw),
            description=str(data.get("description") or ""),
        )


# ---------------------------------------------------------------------------
# Documents
# ---------------------------------------------------------------------------


def parse_spec_document(
    obj: Any,
) -> Union[List[WorkloadSpec], SuiteSpec]:
    """Classify and parse a loaded YAML document.

    Returns a list of :class:`WorkloadSpec` (single-spec and list-of-spec
    documents) or a :class:`SuiteSpec` (suite documents).
    """
    if isinstance(obj, dict) and "suite" in obj:
        return SuiteSpec.from_dict(obj)
    if isinstance(obj, dict):
        return [WorkloadSpec.from_dict(obj)]
    if isinstance(obj, list):
        specs = [WorkloadSpec.from_dict(entry) for entry in obj]
        if not specs:
            raise SpecError("spec file contains an empty list")
        names = [s.name for s in specs]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise SpecError(f"duplicate workload name(s): {', '.join(dupes)}")
        return specs
    raise SpecError(
        "spec file must contain a spec mapping, a list of specs, or a "
        "suite mapping"
    )


def load_spec_file(path: str) -> Union[List[WorkloadSpec], SuiteSpec]:
    """Read + parse a spec file, wrapping errors with the file name."""
    with open(path) as fh:
        text = fh.read()
    try:
        return parse_spec_document(specyaml.load(text))
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from exc


def build_suite(suite_spec: SuiteSpec) -> List[Benchmark]:
    """Instantiate every benchmark of a suite spec as live objects."""
    seen: Dict[str, str] = {}
    benchmarks = []
    for bench in suite_spec.benchmarks:
        phases = []
        for wspec, weight in bench.phases:
            if wspec.name in seen:
                raise SpecError(
                    f"suite {suite_spec.name!r}: workload name "
                    f"{wspec.name!r} used by both {seen[wspec.name]!r} "
                    f"and {bench.name!r}"
                )
            seen[wspec.name] = bench.name
            workload = wspec.instantiate()
            if not workload.category:
                workload.category = bench.category
            phases.append((workload, weight))
        benchmarks.append(
            Benchmark(
                bench.name,
                suite_spec.name,
                phases,
                category=bench.category,
                profitable=bench.profitable,
                spec_behaviour=bench.spec_behaviour,
            )
        )
    return benchmarks


def register_spec_suite(suite_spec: SuiteSpec) -> List[Benchmark]:
    """Build a suite spec and register it with the suite registry, so
    ``repro suite NAME`` / ``get_workload`` resolve it like a built-in."""
    from .suites import register_suite

    benchmarks = build_suite(suite_spec)
    register_suite(suite_spec.name, benchmarks)
    return benchmarks
