"""SPEC-stand-in workloads: kernels, benchmarks, and suite definitions."""

from .base import (
    ALL_CATEGORIES,
    Benchmark,
    CATEGORY_BRANCH_PREFETCH,
    CATEGORY_CONTROL,
    CATEGORY_DATA_PREFETCH,
    CATEGORY_DEPCHAIN,
    CATEGORY_MEMORY,
    CATEGORY_NONE,
    Workload,
)
from .suites import (
    SUITE_NAMES,
    available_suites,
    get_benchmark,
    get_workload,
    profitable_2017,
    register_suite,
    suite,
)
from .spec import (
    BenchmarkSpec,
    SuiteSpec,
    WorkloadSpec,
    load_spec_file,
    register_spec_suite,
    template_names,
)
from . import generators, longrun

__all__ = [
    "ALL_CATEGORIES",
    "Benchmark",
    "BenchmarkSpec",
    "CATEGORY_BRANCH_PREFETCH",
    "CATEGORY_CONTROL",
    "CATEGORY_DATA_PREFETCH",
    "CATEGORY_DEPCHAIN",
    "CATEGORY_MEMORY",
    "CATEGORY_NONE",
    "SUITE_NAMES",
    "SuiteSpec",
    "Workload",
    "WorkloadSpec",
    "available_suites",
    "get_benchmark",
    "get_workload",
    "load_spec_file",
    "profitable_2017",
    "register_spec_suite",
    "register_suite",
    "suite",
    "template_names",
    "generators",
    "longrun",
]
