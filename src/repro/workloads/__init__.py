"""SPEC-stand-in workloads: kernels, benchmarks, and suite definitions."""

from .base import (
    ALL_CATEGORIES,
    Benchmark,
    CATEGORY_BRANCH_PREFETCH,
    CATEGORY_CONTROL,
    CATEGORY_DATA_PREFETCH,
    CATEGORY_DEPCHAIN,
    CATEGORY_MEMORY,
    CATEGORY_NONE,
    Workload,
)
from .suites import (
    SUITE_NAMES,
    get_benchmark,
    get_workload,
    profitable_2017,
    suite,
)
from . import generators, longrun

__all__ = [
    "ALL_CATEGORIES",
    "Benchmark",
    "CATEGORY_BRANCH_PREFETCH",
    "CATEGORY_CONTROL",
    "CATEGORY_DATA_PREFETCH",
    "CATEGORY_DEPCHAIN",
    "CATEGORY_MEMORY",
    "CATEGORY_NONE",
    "SUITE_NAMES",
    "Workload",
    "get_benchmark",
    "get_workload",
    "profitable_2017",
    "suite",
    "generators",
    "longrun",
]
