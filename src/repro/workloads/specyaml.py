"""A deterministic YAML subset: just enough for workload specs.

The repo deliberately has zero runtime dependencies (``pyproject.toml``
declares ``dependencies = []``), so workload spec files cannot rely on
PyYAML being installed.  This module implements the small subset the spec
and fuzz-corpus formats need — nested mappings, lists (including lists of
mappings), and int/float/bool/null/string scalars — with two properties
PyYAML does not guarantee:

* **Byte-determinism.**  :func:`dump` sorts mapping keys and uses a fixed
  2-space indent, so identical objects always serialize to identical
  bytes.  The fuzz corpus relies on this for its byte-reproducibility
  contract (same seed, same budget -> same corpus files).
* **Clean one-line errors.**  :func:`load` raises
  :class:`~repro.errors.SpecError` with a ``line N:`` prefix, matching
  the CLI error contract (``error: ...``, exit 1).

Not supported (by design): anchors, aliases, tags, flow style, multi-line
scalars, documents.  Spec files using those fail with a clear error.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..errors import SpecError

__all__ = ["dump", "load"]


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------

_QUOTE_TRIGGERS = set(":#{}[]&*!|>'\"%@`,")


def _scalar(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return _string(value)
    raise SpecError(f"cannot serialize {type(value).__name__} value {value!r}")


def _string(text: str) -> str:
    """Quote only when the bare form would not round-trip as a string."""
    if text == "":
        return '""'
    needs_quote = (
        text != text.strip()
        or text.lower() in ("null", "true", "false", "yes", "no", "~")
        or any(ch in _QUOTE_TRIGGERS for ch in text)
        or "\n" in text
        or _parses_as_number(text)
        or text[0] in "-? "
    )
    if not needs_quote:
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f'"{escaped}"'


def _parses_as_number(text: str) -> bool:
    try:
        int(text, 0)
        return True
    except ValueError:
        pass
    try:
        float(text)
        return True
    except ValueError:
        return False


def _dump_lines(obj: Any, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(obj, dict):
        if not obj:
            raise SpecError("cannot serialize an empty mapping")
        for key in sorted(obj):
            if not isinstance(key, str):
                raise SpecError(f"mapping keys must be strings, got {key!r}")
            value = obj[key]
            if isinstance(value, (dict, list)) and value:
                lines.append(f"{pad}{_string(key)}:")
                _dump_lines(value, indent + 1, lines)
            elif isinstance(value, list):  # empty list
                lines.append(f"{pad}{_string(key)}: []")
            elif isinstance(value, dict):  # empty dict
                lines.append(f"{pad}{_string(key)}: {{}}")
            else:
                lines.append(f"{pad}{_string(key)}: {_scalar(value)}")
    elif isinstance(obj, list):
        for item in obj:
            if isinstance(item, dict) and item:
                first = True
                for key in sorted(item):
                    value = item[key]
                    prefix = f"{pad}- " if first else f"{pad}  "
                    first = False
                    if isinstance(value, (dict, list)) and value:
                        lines.append(f"{prefix}{_string(key)}:")
                        _dump_lines(value, indent + 2, lines)
                    elif isinstance(value, list):
                        lines.append(f"{prefix}{_string(key)}: []")
                    elif isinstance(value, dict):
                        lines.append(f"{prefix}{_string(key)}: {{}}")
                    else:
                        lines.append(
                            f"{prefix}{_string(key)}: {_scalar(value)}"
                        )
            elif isinstance(item, list):
                raise SpecError("nested bare lists are not supported")
            else:
                lines.append(f"{pad}- {_scalar(item)}")
    else:
        lines.append(f"{pad}{_scalar(obj)}")


def dump(obj: Any) -> str:
    """Serialize ``obj`` to deterministic YAML (sorted keys, LF lines)."""
    lines: List[str] = []
    _dump_lines(obj, 0, lines)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _parse_scalar(text: str, line_no: int) -> Any:
    text = text.strip()
    if text in ("null", "~", ""):
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if text == "[]":
        return []
    if text == "{}":
        return {}
    if text.startswith('"'):
        if not text.endswith('"') or len(text) < 2:
            raise SpecError(f"line {line_no}: unterminated string {text!r}")
        body = text[1:-1]
        out = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\":
                if i + 1 >= len(body):
                    raise SpecError(
                        f"line {line_no}: dangling escape in {text!r}"
                    )
                nxt = body[i + 1]
                out.append({"n": "\n", "t": "\t"}.get(nxt, nxt))
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)
    if text.startswith("'"):
        if not text.endswith("'") or len(text) < 2:
            raise SpecError(f"line {line_no}: unterminated string {text!r}")
        return text[1:-1].replace("''", "'")
    for base in (10, 0):
        try:
            return int(text, base)
        except ValueError:
            pass
    try:
        return float(text)
    except ValueError:
        pass
    if any(ch in text for ch in "{}[]"):
        raise SpecError(
            f"line {line_no}: flow-style collections are not supported: "
            f"{text!r}"
        )
    return text


def _split_key(text: str, line_no: int) -> Tuple[str, str]:
    """Split ``key: rest`` (the key may be quoted)."""
    if text.startswith(('"', "'")):
        quote = text[0]
        end = text.find(quote, 1)
        if quote == '"':
            while end > 0 and text[end - 1] == "\\":
                end = text.find(quote, end + 1)
        if end < 0:
            raise SpecError(f"line {line_no}: unterminated key in {text!r}")
        key = _parse_scalar(text[: end + 1], line_no)
        rest = text[end + 1:].lstrip()
        if not rest.startswith(":"):
            raise SpecError(f"line {line_no}: expected ':' after key")
        return str(key), rest[1:].strip()
    idx = text.find(":")
    if idx < 0:
        raise SpecError(f"line {line_no}: expected 'key: value', got {text!r}")
    return text[:idx].strip(), text[idx + 1:].strip()


class _Parser:
    def __init__(self, text: str):
        self.lines: List[Tuple[int, int, str]] = []  # (line_no, indent, body)
        for i, raw in enumerate(text.splitlines(), 1):
            stripped = raw.split("#", 1)[0].rstrip() if not (
                '"' in raw or "'" in raw
            ) else self._strip_comment(raw)
            if not stripped.strip():
                continue
            if "\t" in raw[: len(raw) - len(raw.lstrip())]:
                raise SpecError(f"line {i}: tabs are not allowed in indentation")
            indent = len(stripped) - len(stripped.lstrip())
            self.lines.append((i, indent, stripped.strip()))
        self.pos = 0

    @staticmethod
    def _strip_comment(raw: str) -> str:
        """Strip a trailing comment, respecting quoted strings."""
        in_quote = ""
        for i, ch in enumerate(raw):
            if in_quote:
                if ch == in_quote and (in_quote != '"' or raw[i - 1] != "\\"):
                    in_quote = ""
            elif ch in "\"'":
                in_quote = ch
            elif ch == "#" and (i == 0 or raw[i - 1] in " \t"):
                return raw[:i].rstrip()
        return raw.rstrip()

    def peek(self) -> Tuple[int, int, str]:
        return self.lines[self.pos]

    def done(self) -> bool:
        return self.pos >= len(self.lines)

    def parse_block(self, indent: int) -> Any:
        line_no, line_indent, body = self.peek()
        if line_indent < indent:
            raise SpecError(f"line {line_no}: unexpected dedent")
        if body.startswith("- ") or body == "-":
            return self.parse_list(line_indent)
        return self.parse_map(line_indent)

    def parse_map(self, indent: int) -> Any:
        out = {}
        while not self.done():
            line_no, line_indent, body = self.peek()
            if line_indent < indent:
                break
            if line_indent > indent:
                raise SpecError(f"line {line_no}: unexpected indent")
            if body.startswith("- ") or body == "-":
                raise SpecError(
                    f"line {line_no}: list item inside a mapping block"
                )
            key, rest = _split_key(body, line_no)
            if key in out:
                raise SpecError(f"line {line_no}: duplicate key {key!r}")
            self.pos += 1
            if rest:
                out[key] = _parse_scalar(rest, line_no)
            elif not self.done() and self.peek()[1] > indent:
                out[key] = self.parse_block(self.peek()[1])
            else:
                out[key] = None
        return out

    def parse_list(self, indent: int) -> Any:
        out = []
        while not self.done():
            line_no, line_indent, body = self.peek()
            if line_indent < indent:
                break
            if line_indent > indent:
                raise SpecError(f"line {line_no}: unexpected indent")
            if not (body.startswith("- ") or body == "-"):
                break
            rest = body[2:].strip() if body.startswith("- ") else ""
            if not rest:
                self.pos += 1
                if not self.done() and self.peek()[1] > indent:
                    out.append(self.parse_block(self.peek()[1]))
                else:
                    out.append(None)
            elif ":" in rest and not rest.startswith(('"', "'")) or (
                rest.startswith(('"', "'")) and self._looks_like_kv(rest)
            ):
                # "- key: value" opens an inline mapping whose further keys
                # sit two spaces deeper (aligned under the key).
                out.append(self._parse_item_map(indent + 2, line_no, rest))
            else:
                self.pos += 1
                out.append(_parse_scalar(rest, line_no))
        return out

    @staticmethod
    def _looks_like_kv(rest: str) -> bool:
        quote = rest[0]
        end = rest.find(quote, 1)
        return end > 0 and rest[end + 1:].lstrip().startswith(":")

    def _parse_item_map(self, indent: int, line_no: int, first: str) -> Any:
        key, rest = _split_key(first, line_no)
        self.pos += 1
        item = {}
        if rest:
            item[key] = _parse_scalar(rest, line_no)
        elif not self.done() and self.peek()[1] > indent:
            item[key] = self.parse_block(self.peek()[1])
        else:
            item[key] = None
        while not self.done():
            nxt_no, nxt_indent, nxt_body = self.peek()
            if nxt_indent != indent or nxt_body.startswith("- "):
                break
            k, rest = _split_key(nxt_body, nxt_no)
            if k in item:
                raise SpecError(f"line {nxt_no}: duplicate key {k!r}")
            self.pos += 1
            if rest:
                item[k] = _parse_scalar(rest, nxt_no)
            elif not self.done() and self.peek()[1] > nxt_indent:
                item[k] = self.parse_block(self.peek()[1])
            else:
                item[k] = None
        return item


def load(text: str) -> Any:
    """Parse the YAML subset.  Raises :class:`SpecError` with ``line N:``."""
    parser = _Parser(text)
    if parser.done():
        return None
    if len(parser.lines) == 1 and not (
        parser.lines[0][2].startswith("- ") or ":" in parser.lines[0][2]
    ):
        line_no, _, body = parser.lines[0]
        return _parse_scalar(body, line_no)
    result = parser.parse_block(parser.lines[0][1])
    if not parser.done():
        line_no, _, body = parser.peek()
        raise SpecError(f"line {line_no}: unexpected content {body!r}")
    return result
