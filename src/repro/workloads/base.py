"""Workload infrastructure: kernels, benchmarks and compiled caching.

A :class:`Workload` is one Frog kernel plus a deterministic input
generator.  A :class:`Benchmark` is a SPEC-stand-in: one or more weighted
workload *phases* (our analogue of the paper's SimPoints, section 6.1) and
metadata recording which behaviour of the original SPEC benchmark the
kernel reproduces and why (the paper's section 6.4 analysis).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler import CompileOptions, CompileResult, compile_frog
from ..errors import WorkloadError
from ..uarch.memory_state import SparseMemory

# Table 2 gain categories (paper section 6.4).
CATEGORY_MEMORY = "memory_parallelism"
CATEGORY_CONTROL = "control_dependencies"
CATEGORY_DEPCHAIN = "dependency_chains"
CATEGORY_BRANCH_PREFETCH = "branch_condition_prefetch"
CATEGORY_DATA_PREFETCH = "data_value_prefetch"
CATEGORY_NONE = "none"

ALL_CATEGORIES = (
    CATEGORY_MEMORY,
    CATEGORY_CONTROL,
    CATEGORY_DEPCHAIN,
    CATEGORY_BRANCH_PREFETCH,
    CATEGORY_DATA_PREFETCH,
)

SetupFn = Callable[[SparseMemory, random.Random], Dict[str, float]]


@dataclass
class Workload:
    """One runnable kernel: Frog source + deterministic input setup."""

    name: str
    source: str
    setup: SetupFn
    description: str = ""
    seed: int = 1234
    max_cycles: int = 8_000_000
    # Expected table-2 gain category for this kernel's annotated loop
    # (filled from the owning benchmark when left empty).
    category: str = ""

    _compiled: Optional[CompileResult] = field(default=None, repr=False)
    _compiled_nohints: Optional[CompileResult] = field(default=None, repr=False)

    # Fields whose mutation changes the workload's identity: the memoized
    # content digest (results/digest.py) and — for source/name — the
    # compiled-program caches must be dropped, or a mutated workload would
    # silently serve results computed for the old inputs.
    _IDENTITY_FIELDS = frozenset(
        {"name", "source", "setup", "seed", "max_cycles"}
    )
    _COMPILE_FIELDS = frozenset({"name", "source"})

    def __setattr__(self, key: str, value) -> None:
        if key in self._IDENTITY_FIELDS:
            self.__dict__.pop("_repro_digest", None)
            if key in self._COMPILE_FIELDS:
                self.__dict__["_compiled"] = None
                self.__dict__["_compiled_nohints"] = None
        object.__setattr__(self, key, value)

    def compiled(self, hints: bool = True) -> CompileResult:
        """Compile (cached).  ``hints=False`` strips the pragma effect."""
        if hints:
            if self._compiled is None:
                self._compiled = compile_frog(
                    self.source, CompileOptions(name=self.name)
                )
            return self._compiled
        if self._compiled_nohints is None:
            self._compiled_nohints = compile_frog(
                self.source,
                CompileOptions(insert_hints=False, name=self.name + ":nohints"),
            )
        return self._compiled_nohints

    @property
    def program(self):
        return self.compiled().program

    def fresh_input(self) -> Tuple[SparseMemory, Dict[str, float]]:
        """A fresh (memory, initial_registers) pair for one run."""
        rng = random.Random(self.seed)
        memory = SparseMemory()
        regs = self.setup(memory, rng)
        return memory, regs


@dataclass
class Benchmark:
    """A SPEC-stand-in benchmark: weighted workload phases + metadata."""

    name: str
    suite: str  # "spec2017" or "spec2006"
    phases: List[Tuple[Workload, float]]
    category: str = CATEGORY_NONE   # dominant table-2 gain category
    profitable: bool = True         # does the paper report >1% for it?
    spec_behaviour: str = ""        # what the kernel mimics and why

    def __post_init__(self):
        if not self.phases:
            raise WorkloadError(f"benchmark {self.name} has no phases")
        total = sum(w for _, w in self.phases)
        if total <= 0:
            raise WorkloadError(f"benchmark {self.name} has zero total weight")
        self.phases = [(wl, w / total) for wl, w in self.phases]
