"""Lightweight IR clean-up passes.

The Frog lowering is deliberately naive (stable registers per variable,
fresh temporaries everywhere), so a couple of local passes recover most of
the obvious redundancy before register allocation:

* :func:`remove_unreachable_blocks` — drop blocks the CFG cannot reach.
* :func:`fuse_copies` — fold ``t = op ...; v = mov t`` into ``v = op ...``
  when ``t`` has exactly one use.
* :func:`eliminate_dead_code` — delete side-effect-free instructions whose
  results are never used (iterates with copy fusion to a fixpoint).

These roughly stand in for the ``-O3`` baseline the paper compiles against;
no LoopFrog-specific optimisation is performed (paper section 5.2).
"""

from __future__ import annotations

from typing import Dict

from .cfg import CFG
from .ir import Function, IROp, VReg

_PURE_OPS = {
    IROp.ADD, IROp.SUB, IROp.MUL, IROp.AND, IROp.OR, IROp.XOR,
    IROp.SHL, IROp.SHR, IROp.SLT, IROp.SLE, IROp.SEQ, IROp.SNE,
    IROp.MIN, IROp.MAX, IROp.MOV,
    IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FABS, IROp.FMIN, IROp.FMAX,
    IROp.FMOV, IROp.FSLT, IROp.FSLE, IROp.FSEQ, IROp.CVT_IF, IROp.CVT_FI,
}
# DIV/REM/FDIV/FSQRT can trap (divide by zero, sqrt of negative), so they are
# not removable even when dead.


def remove_unreachable_blocks(func: Function) -> int:
    """Delete unreachable blocks; returns how many were removed."""
    cfg = CFG(func)
    reachable = cfg.reachable
    dead = [b for b in func.blocks if b.name not in reachable]
    for block in dead:
        func.blocks.remove(block)
        del func._block_map[block.name]
    return len(dead)


def _use_counts(func: Function) -> Dict[VReg, int]:
    counts: Dict[VReg, int] = {}
    for block in func.blocks:
        for instr in block.instrs:
            for v in instr.uses():
                counts[v] = counts.get(v, 0) + 1
        if block.terminator is not None:
            for v in block.terminator.uses():
                counts[v] = counts.get(v, 0) + 1
    return counts


def fuse_copies(func: Function) -> int:
    """Fold single-use temporaries into the following move; returns count."""
    counts = _use_counts(func)
    fused = 0
    for block in func.blocks:
        new_instrs = []
        i = 0
        instrs = block.instrs
        while i < len(instrs):
            instr = instrs[i]
            nxt = instrs[i + 1] if i + 1 < len(instrs) else None
            if (
                nxt is not None
                and nxt.op in (IROp.MOV, IROp.FMOV)
                and instr.dest is not None
                and nxt.operands == (instr.dest,)
                and counts.get(instr.dest, 0) == 1
                and instr.dest != nxt.dest
                # Register classes must agree (mov vs fmov mismatch means a
                # conversion is involved; leave those alone).
                and instr.dest.cls == (nxt.dest.cls if nxt.dest else None)
            ):
                instr.dest = nxt.dest
                new_instrs.append(instr)
                i += 2
                fused += 1
                continue
            new_instrs.append(instr)
            i += 1
        block.instrs = new_instrs
    return fused


def eliminate_dead_code(func: Function) -> int:
    """Remove pure instructions whose destinations are never used."""
    removed = 0
    changed = True
    while changed:
        changed = False
        counts = _use_counts(func)
        for block in func.blocks:
            keep = []
            for instr in block.instrs:
                dead = (
                    instr.op in _PURE_OPS
                    and instr.dest is not None
                    and counts.get(instr.dest, 0) == 0
                )
                if dead:
                    removed += 1
                    changed = True
                else:
                    keep.append(instr)
            block.instrs = keep
    return removed


def optimize(func: Function) -> None:
    """Run the standard clean-up pipeline to a fixpoint."""
    remove_unreachable_blocks(func)
    for _ in range(4):
        a = fuse_copies(func)
        b = eliminate_dead_code(func)
        if a == 0 and b == 0:
            break
    func.validate()
