"""The Frog compiler: IR, loop analyses, LoopFrog hint insertion, codegen.

The main entry point is :func:`compile_frog`, which takes Frog source text
and produces a runnable :class:`~repro.isa.program.Program` with LoopFrog
hints inserted into ``#pragma loopfrog`` loops (paper section 5).
"""

from .cfg import CFG
from .depanal import (
    VERDICT_INDEPENDENT,
    VERDICT_MAY_CONFLICT,
    VERDICT_MUST_CONFLICT,
    VERDICTS,
    AccessSite,
    AffineAddr,
    DependenceWitness,
    LoopDependence,
    analyze_function,
)
from .hints import HintOptions, HintReport, insert_hints
from .ir import (
    BasicBlock,
    Branch,
    CondBranch,
    Const,
    Function,
    IRInstr,
    IROp,
    Module,
    Ret,
    VReg,
)
from .licm import fold_constants, hoist_invariants
from .liveness import Liveness
from .loops import Loop, find_loops, loop_preheader
from .lowering import lower_module
from .optimize import optimize
from .pipeline import CompileOptions, CompileResult, compile_ast, compile_frog
from .profiling import (
    LoopProfile,
    apply_selection,
    profile_and_select,
    profile_program,
    select_profitable,
)
from .regalloc import Allocation, allocate, apply_allocation

__all__ = [
    "CFG",
    "VERDICT_INDEPENDENT",
    "VERDICT_MAY_CONFLICT",
    "VERDICT_MUST_CONFLICT",
    "VERDICTS",
    "AccessSite",
    "AffineAddr",
    "DependenceWitness",
    "LoopDependence",
    "analyze_function",
    "HintOptions",
    "HintReport",
    "insert_hints",
    "BasicBlock",
    "Branch",
    "CondBranch",
    "Const",
    "Function",
    "IRInstr",
    "IROp",
    "Module",
    "Ret",
    "VReg",
    "fold_constants",
    "hoist_invariants",
    "Liveness",
    "Loop",
    "find_loops",
    "loop_preheader",
    "lower_module",
    "optimize",
    "CompileOptions",
    "CompileResult",
    "compile_ast",
    "compile_frog",
    "LoopProfile",
    "apply_selection",
    "profile_and_select",
    "profile_program",
    "select_profitable",
    "Allocation",
    "allocate",
    "apply_allocation",
]
