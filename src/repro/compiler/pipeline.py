"""The Frog compilation pipeline.

``compile_frog`` runs: parse → lower (inline calls) → clean-up passes →
LoopFrog hint insertion (for ``#pragma loopfrog`` loops) → linear-scan
register allocation → code generation.  The result bundles the final
:class:`~repro.isa.program.Program` with the hint-insertion reports so
callers can see which loops were annotated and why others were rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.program import Program
from ..lang import ast as frog_ast
from ..lang import parse
from ..obs import metrics as _metrics
from ..obs.tracing import span as _span
from .depanal import LoopDependence, analyze_function
from .hints import HintOptions, HintReport, insert_hints
from .ir import Function
from .lowering import lower_module
from .optimize import optimize
from .regalloc import allocate, apply_allocation
from . import codegen


@dataclass
class CompileOptions:
    """Knobs for :func:`compile_frog`."""

    entry: str = "main"
    insert_hints: bool = True
    # Mark every loop for hint insertion regardless of pragmas (used by
    # profiling-based loop selection, paper section 5.1).
    mark_all_loops: bool = False
    optimize: bool = True
    # Optional extra optimisations (paper section 5.2 leaves these to
    # future work; they are off by default to match the tuned baseline).
    fold_constants: bool = False
    licm: bool = False
    hint_options: HintOptions = field(default_factory=HintOptions)
    # Run the static loop-carried dependence analysis (repro.compiler.
    # depanal) on the pre-hint IR and keep the per-loop verdicts on the
    # result.  Purely observational: codegen is unaffected unless
    # hint_options.speculate consults the verdicts itself.
    static_analysis: bool = False
    name: Optional[str] = None  # program name override


@dataclass
class CompileResult:
    """A compiled kernel plus compilation metadata."""

    program: Program
    ir: Function
    hint_reports: List[HintReport]
    # Static dependence verdicts by loop header block name (populated when
    # CompileOptions.static_analysis is set).
    dependence: Dict[str, LoopDependence] = field(default_factory=dict)

    @property
    def annotated_loops(self) -> List[HintReport]:
        return [r for r in self.hint_reports if r.annotated]

    @property
    def rejected_loops(self) -> List[HintReport]:
        return [r for r in self.hint_reports if not r.annotated]


def compile_frog(
    source: str, options: Optional[CompileOptions] = None
) -> CompileResult:
    """Compile Frog source text to machine code.

    Args:
        source: Frog program text; must define the entry function.
        options: compilation options (defaults compile ``main`` with hints).

    Returns:
        A :class:`CompileResult`; ``result.program`` is runnable on the
        functional executor and both timing models.
    """
    options = options or CompileOptions()
    with _span("compile", entry=options.entry):
        with _span("compile.parse"):
            module = parse(source)
        return compile_ast(module, options)


def compile_ast(
    module: frog_ast.Module, options: Optional[CompileOptions] = None
) -> CompileResult:
    """Compile an already-parsed Frog module (see :func:`compile_frog`)."""
    options = options or CompileOptions()
    with _span("compile.lower", entry=options.entry):
        ir_module = lower_module(module, options.entry, options.mark_all_loops)
        func = ir_module[options.entry]

    with _span("compile.optimize"):
        if options.optimize:
            optimize(func)
        if options.fold_constants:
            from .licm import fold_constants

            fold_constants(func)
            if options.optimize:
                optimize(func)
        if options.licm:
            from .licm import hoist_invariants

            hoist_invariants(func)

    dependence: Dict[str, LoopDependence] = {}
    if options.static_analysis:
        with _span("compile.depanal"):
            dependence = analyze_function(
                func, granule_bytes=options.hint_options.granule_bytes
            )

    reports: List[HintReport] = []
    if options.insert_hints:
        with _span("compile.hints"):
            reports = insert_hints(func, options.hint_options)
            if options.optimize:
                # Hint insertion adds blocks; re-run block clean-up only
                # (copy fusion/DCE could disturb the chosen split, so skip
                # them).
                from .optimize import remove_unreachable_blocks

                remove_unreachable_blocks(func)

    with _span("compile.regalloc"):
        alloc = allocate(func)
        param_locations = {
            param: (
                alloc.mapping[param].slot
                if alloc.mapping[param].spilled
                else alloc.mapping[param].phys
            )
            for param, _ in func.params
            if param in alloc.mapping
        }
        apply_allocation(func, alloc)
    with _span("compile.codegen"):
        program = codegen.generate(
            func, frame_slots=alloc.frame_slots,
            param_locations=param_locations,
        )
    for report in reports:
        if report.static_verdict is None and report.header in dependence:
            report.static_verdict = dependence[report.header].verdict
    if options.name:
        program.name = options.name
    return CompileResult(
        program=program, ir=func, hint_reports=reports, dependence=dependence
    )


# ---------------------------------------------------------------------------
# Metrics catalog for the compilation pipeline (collected from
# CompileResult — `default_registry().collect(result, "compiler")`).
# ---------------------------------------------------------------------------

_metrics.register(
    _metrics.MetricSpec("compiler.loops_annotated", _metrics.COUNTER,
                        "compiler",
                        "Loops that received detach/reattach/sync hints",
                        unit="loops",
                        derive=lambda r: len(r.annotated_loops)),
    _metrics.MetricSpec("compiler.loops_rejected", _metrics.COUNTER,
                        "compiler",
                        "Pragma'd loops rejected by hint insertion",
                        unit="loops",
                        derive=lambda r: len(r.rejected_loops)),
    _metrics.MetricSpec("compiler.instructions_emitted", _metrics.COUNTER,
                        "compiler",
                        "Static instructions in the generated program",
                        unit="instructions",
                        derive=lambda r: len(r.program)),
    _metrics.MetricSpec("compiler.ir_blocks", _metrics.COUNTER,
                        "compiler",
                        "Basic blocks in the final IR of the entry function",
                        unit="blocks",
                        derive=lambda r: len(r.ir.blocks)),
)
