"""Optional optimisation passes: constant folding and loop-invariant code
motion (LICM).

The paper compiles its baseline with full ``-O3`` and notes that further
"optimizing transformations ... could increase the size of the parallel
body" (section 5.2).  These two passes are the classic enablers:

* :func:`fold_constants` — evaluates integer/float operations whose
  operands are all constants (using the executor's exact semantics, so
  folding can never change behaviour).
* :func:`hoist_invariants` — moves pure instructions whose operands are
  invariant in a loop to the loop's preheader.  Hoisting shrinks loop
  *headers* (address computations and the like), which directly grows the
  relative share of the parallel body.

Both passes are off by default (``CompileOptions(licm=True)`` /
``fold=True`` enable them) so the default pipeline matches the
configuration every experiment was tuned with.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..isa.instructions import Opcode
from ..uarch.executor import execute_one
from ..isa.instructions import Instruction
from .cfg import CFG
from .ir import Branch, Const, Function, IRInstr, IROp, VReg
from .loops import Loop, find_loops, loop_preheader

# IR ops safe to fold/hoist: pure and non-trapping.
_PURE = {
    IROp.ADD, IROp.SUB, IROp.MUL, IROp.AND, IROp.OR, IROp.XOR,
    IROp.SHL, IROp.SHR, IROp.SLT, IROp.SLE, IROp.SEQ, IROp.SNE,
    IROp.MIN, IROp.MAX, IROp.MOV,
    IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FABS, IROp.FMIN, IROp.FMAX,
    IROp.FMOV, IROp.FSLT, IROp.FSLE, IROp.FSEQ, IROp.CVT_IF, IROp.CVT_FI,
}

_IR_TO_ISA = {
    IROp.ADD: Opcode.ADD, IROp.SUB: Opcode.SUB, IROp.MUL: Opcode.MUL,
    IROp.AND: Opcode.AND, IROp.OR: Opcode.OR, IROp.XOR: Opcode.XOR,
    IROp.SHL: Opcode.SHL, IROp.SHR: Opcode.SHR, IROp.SLT: Opcode.SLT,
    IROp.SLE: Opcode.SLE, IROp.SEQ: Opcode.SEQ, IROp.SNE: Opcode.SNE,
    IROp.MIN: Opcode.MIN, IROp.MAX: Opcode.MAX,
    IROp.FADD: Opcode.FADD, IROp.FSUB: Opcode.FSUB, IROp.FMUL: Opcode.FMUL,
    IROp.FABS: Opcode.FABS, IROp.FMIN: Opcode.FMIN, IROp.FMAX: Opcode.FMAX,
    IROp.FSLT: Opcode.FSLT, IROp.FSLE: Opcode.FSLE, IROp.FSEQ: Opcode.FSEQ,
    IROp.CVT_IF: Opcode.FCVT, IROp.CVT_FI: Opcode.ICVT,
}


def _evaluate(instr: IRInstr):
    """Evaluate a pure IR op on constant operands via the executor."""
    opcode = _IR_TO_ISA.get(instr.op)
    if opcode is None:
        return None
    values = [v.value for v in instr.operands]
    regs = {"r10": 0, "f10": 0.0}
    srcs = []
    for i, v in enumerate(values):
        name = f"f{i+1}" if isinstance(v, float) else f"r{i+1}"
        regs[name] = v
        srcs.append(name)
    is_float_dest = instr.op in (
        IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FABS, IROp.FMIN, IROp.FMAX,
        IROp.FMOV, IROp.CVT_IF,
    )
    dest = "f10" if is_float_dest else "r10"
    machine = Instruction(opcode, dest=dest, srcs=tuple(srcs))
    execute_one(machine, regs, _NoMemory(), 0)
    return regs[dest]


class _NoMemory:
    def load(self, addr, size):  # pragma: no cover - never reached
        raise AssertionError("pure ops do not touch memory")

    def store(self, addr, size, value):  # pragma: no cover
        raise AssertionError("pure ops do not touch memory")


def fold_constants(func: Function) -> int:
    """Fold pure ops with all-constant operands; returns folds performed.

    Folded instructions become ``mov dest, <const>``; a following
    copy-fusion/DCE pass cleans those up.  Constants propagate across
    instructions within each block via a local environment.
    """
    folded = 0
    for block in func.blocks:
        env: Dict[VReg, Const] = {}
        for instr in block.instrs:
            # Substitute known-constant operands.
            if instr.op in _PURE or instr.op in (IROp.LOAD, IROp.STORE):
                instr.operands = tuple(
                    env.get(v, v) if isinstance(v, VReg) else v
                    for v in instr.operands
                )
            if (
                instr.op in _PURE
                and instr.op not in (IROp.MOV, IROp.FMOV)
                and instr.operands
                and all(isinstance(v, Const) for v in instr.operands)
            ):
                value = _evaluate(instr)
                if value is not None:
                    is_float = isinstance(value, float)
                    instr.op = IROp.FMOV if is_float else IROp.MOV
                    instr.operands = (Const(value),)
                    folded += 1
            # Track constants created by moves.
            if (
                instr.op in (IROp.MOV, IROp.FMOV)
                and isinstance(instr.operands[0], Const)
                and instr.dest is not None
            ):
                env[instr.dest] = instr.operands[0]
            elif instr.dest is not None:
                env.pop(instr.dest, None)
    return folded


def hoist_invariants(func: Function) -> int:
    """Hoist loop-invariant pure instructions to preheaders; returns count.

    A candidate must (a) be pure, (b) have all operands defined outside the
    loop (or by already-hoisted instructions), (c) be the loop's *only*
    definition of its destination, and (d) sit in a block that executes on
    every iteration (we conservatively require the loop header or a block
    dominating every latch).  Condition (c) matters because the IR is not
    SSA.
    """
    hoisted_total = 0
    changed = True
    while changed:
        changed = False
        cfg = CFG(func)
        loops = find_loops(func, cfg)
        for loop in sorted(loops.values(), key=lambda l: -l.depth):
            hoisted_total += _hoist_one_loop(func, cfg, loop) or 0
            # Structure changed if anything was hoisted; recompute CFG.
        break  # a single fixpoint round per call keeps this predictable
    return hoisted_total


def _hoist_one_loop(func: Function, cfg: CFG, loop: Loop) -> int:
    from .liveness import Liveness

    pre_name = loop_preheader(func, cfg, loop)
    if pre_name is None:
        return 0
    preheader = func.block(pre_name)
    if not isinstance(preheader.terminator, Branch):
        return 0

    # Registers live into the header carry pre-loop values (the IR is not
    # SSA): hoisting a redefinition would clobber them on zero-trip paths
    # or before their first in-loop use.
    live_at_header = Liveness(func, cfg).live_in[loop.header]

    # Definitions inside the loop, per register.
    def_counts: Dict[VReg, int] = {}
    for name in loop.blocks:
        for instr in func.block(name).instrs:
            for d in instr.defs():
                def_counts[d] = def_counts.get(d, 0) + 1

    # Blocks guaranteed to run every iteration: dominate every latch.
    always_run = {
        name for name in loop.blocks
        if all(cfg.dominates(name, latch) for latch in loop.latches)
    }

    invariant: Set[VReg] = set()
    hoisted = 0
    for name in sorted(always_run, key=lambda n: cfg.rpo_index.get(n, 0)):
        block = func.block(name)
        keep: List[IRInstr] = []
        for instr in block.instrs:
            movable = (
                instr.op in _PURE
                and instr.dest is not None
                and def_counts.get(instr.dest, 0) == 1
                and instr.dest not in live_at_header
                and all(
                    not isinstance(v, VReg)
                    or v not in def_counts
                    or v in invariant
                    for v in instr.operands
                )
            )
            if movable:
                preheader.instrs.append(instr)
                invariant.add(instr.dest)
                def_counts.pop(instr.dest, None)
                hoisted += 1
            else:
                keep.append(instr)
        block.instrs = keep
    return hoisted
