"""Backward liveness dataflow over virtual registers.

Used by the hint-insertion pass (which register values cross an iteration
boundary — the paper's register loop-carried dependencies, section 3) and by
the linear-scan register allocator.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from .cfg import CFG
from .ir import BasicBlock, Function, VReg


class Liveness:
    """Per-block live-in / live-out sets for one function."""

    def __init__(self, func: Function, cfg: CFG):
        self.func = func
        self.cfg = cfg
        self.use: Dict[str, Set[VReg]] = {}
        self.defs: Dict[str, Set[VReg]] = {}
        self.live_in: Dict[str, Set[VReg]] = {}
        self.live_out: Dict[str, Set[VReg]] = {}
        self._compute()

    def _block_use_def(self, block: BasicBlock) -> None:
        use: Set[VReg] = set()
        defined: Set[VReg] = set()
        for instr in block.instrs:
            for v in instr.uses():
                if v not in defined:
                    use.add(v)
            for v in instr.defs():
                defined.add(v)
        if block.terminator is not None:
            for v in block.terminator.uses():
                if v not in defined:
                    use.add(v)
        self.use[block.name] = use
        self.defs[block.name] = defined

    def _compute(self) -> None:
        for block in self.func.blocks:
            self._block_use_def(block)
            self.live_in[block.name] = set()
            self.live_out[block.name] = set()

        # Iterate to fixpoint, visiting blocks in reverse RPO for speed.
        order = list(reversed(self.cfg.rpo))
        changed = True
        while changed:
            changed = False
            for name in order:
                out: Set[VReg] = set()
                for succ in self.cfg.succs[name]:
                    out |= self.live_in[succ]
                new_in = self.use[name] | (out - self.defs[name])
                if out != self.live_out[name] or new_in != self.live_in[name]:
                    self.live_out[name] = out
                    self.live_in[name] = new_in
                    changed = True

    def live_at_block_entry(self, name: str) -> FrozenSet[VReg]:
        return frozenset(self.live_in[name])

    def live_after_index(self, block: BasicBlock, index: int) -> Set[VReg]:
        """Registers live immediately *after* ``block.instrs[index]``.

        Walks backward from the block's live-out through the instructions
        following ``index``.
        """
        live = set(self.live_out[block.name])
        if block.terminator is not None:
            live |= set(block.terminator.uses())
        for instr in reversed(block.instrs[index + 1 :]):
            live -= set(instr.defs())
            live |= set(instr.uses())
        return live
