"""Code generation: physical-register IR -> ISA :class:`Program`.

Blocks are emitted in layout order with fall-through optimisation for
unconditional branches.  The function's return value lands in ``r1``/``f1``
and the program ends with ``halt`` (kernels are whole programs; the ISA's
``call``/``ret`` are reserved for hand-written assembly).

The stack pointer is initialised to :data:`STACK_BASE` for spill slots.
LoopFrog hint regions (continuation block names) become labels in the
emitted program, so hint instructions resolve to continuation addresses
exactly as in the paper's ISA extension (section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CompilerError
from ..isa import registers as regdefs
from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from .ir import Branch, CondBranch, Const, Function, IRInstr, IROp, Ret, Value, VReg

# Spill slots live at the top of the address space, far away from workload
# data laid out from low addresses.
STACK_BASE = 0x7000_0000

_SIMPLE_OPS: Dict[IROp, Opcode] = {
    IROp.ADD: Opcode.ADD, IROp.SUB: Opcode.SUB, IROp.MUL: Opcode.MUL,
    IROp.DIV: Opcode.DIV, IROp.REM: Opcode.REM, IROp.AND: Opcode.AND,
    IROp.OR: Opcode.OR, IROp.XOR: Opcode.XOR, IROp.SHL: Opcode.SHL,
    IROp.SHR: Opcode.SHR, IROp.SLT: Opcode.SLT, IROp.SLE: Opcode.SLE,
    IROp.SEQ: Opcode.SEQ, IROp.SNE: Opcode.SNE, IROp.MIN: Opcode.MIN,
    IROp.MAX: Opcode.MAX,
    IROp.FADD: Opcode.FADD, IROp.FSUB: Opcode.FSUB, IROp.FMUL: Opcode.FMUL,
    IROp.FDIV: Opcode.FDIV, IROp.FMIN: Opcode.FMIN, IROp.FMAX: Opcode.FMAX,
    IROp.FSLT: Opcode.FSLT, IROp.FSLE: Opcode.FSLE, IROp.FSEQ: Opcode.FSEQ,
}
_UNARY_OPS: Dict[IROp, Opcode] = {
    IROp.FSQRT: Opcode.FSQRT,
    IROp.FABS: Opcode.FABS,
    IROp.CVT_IF: Opcode.FCVT,
    IROp.CVT_FI: Opcode.ICVT,
}
_HINT_OPS: Dict[IROp, Opcode] = {
    IROp.DETACH: Opcode.DETACH,
    IROp.REATTACH: Opcode.REATTACH,
    IROp.SYNC: Opcode.SYNC,
}

_MATERIALIZE_SCRATCH = {"int": "r29", "float": "f13"}


class CodeGenerator:
    """Emits one function as a complete program.

    ``param_locations`` maps each parameter VReg to either a physical
    register name or an integer spill-slot index (from the allocator).
    """

    def __init__(self, func: Function, frame_slots: int = 0, param_locations=None):
        self.func = func
        self.frame_slots = frame_slots
        self.param_locations = param_locations or {}
        self.instructions: List[Instruction] = []
        self.pending_label: Optional[str] = None

    def emit(self, instr: Instruction) -> None:
        if self.pending_label is not None:
            instr.label = self.pending_label
            self.pending_label = None
        self.instructions.append(instr)

    def set_label(self, name: str) -> None:
        if self.pending_label is not None:
            # Two labels on the same spot: pin the first with a nop.
            self.emit(Instruction(Opcode.NOP))
        self.pending_label = name

    # -- operand helpers ----------------------------------------------------

    def _phys(self, value: VReg) -> str:
        name = value.name
        if name not in regdefs.ALL_REGS:
            raise CompilerError(
                f"codegen saw unallocated virtual register %{name}"
            )
        return name

    def _materialize(self, value: Value, cls: str) -> str:
        """Return a physical register holding ``value``."""
        if isinstance(value, VReg):
            return self._phys(value)
        scratch = _MATERIALIZE_SCRATCH[cls]
        if cls == "float":
            self.emit(Instruction(Opcode.FLI, dest=scratch, imm=float(value.value)))
        else:
            self.emit(Instruction(Opcode.LI, dest=scratch, imm=int(value.value)))
        return scratch

    # -- main ---------------------------------------------------------------

    def generate(self) -> Program:
        self._emit_prologue()
        layout = self.func.blocks
        next_name = {
            layout[i].name: layout[i + 1].name if i + 1 < len(layout) else None
            for i in range(len(layout))
        }
        for block in layout:
            self.set_label(block.name)
            for instr in block.instrs:
                self._emit_instr(instr)
            self._emit_terminator(block.terminator, next_name[block.name])
        if self.pending_label is not None:
            self.emit(Instruction(Opcode.HALT))
        return Program(self.instructions, name=self.func.name)

    def _emit_prologue(self) -> None:
        if self.frame_slots:
            self.emit(Instruction(Opcode.LI, dest="sp", imm=STACK_BASE))
        # ABI: parameters arrive in r1..r4 / f1..f4 in declaration order.
        int_args = iter(regdefs.ARG_REGS)
        fp_args = iter(regdefs.FP_ARG_REGS)
        for param, ptype in self.func.params:
            try:
                src = next(fp_args if param.cls == "float" else int_args)
            except StopIteration:
                raise CompilerError(
                    f"too many {param.cls} parameters in {self.func.name}"
                )
            location = self.param_locations.get(param, param.name)
            if isinstance(location, int):
                # Parameter was spilled: store the incoming value to its slot.
                opcode = Opcode.FSTORE if param.cls == "float" else Opcode.STORE
                self.emit(
                    Instruction(opcode, srcs=(src, "sp"), imm=location * 8, size=8)
                )
                continue
            if location != src:
                op = Opcode.FMOV if param.cls == "float" else Opcode.MOV
                self.emit(Instruction(op, dest=location, srcs=(src,)))

    def _emit_instr(self, instr: IRInstr) -> None:
        op = instr.op

        if op in _HINT_OPS:
            self.emit(Instruction(_HINT_OPS[op], region=instr.region))
            return

        if op is IROp.LOAD:
            base = self._materialize(instr.operands[0], "int")
            opcode = Opcode.FLOAD if instr.is_float else Opcode.LOAD
            self.emit(
                Instruction(
                    opcode,
                    dest=self._phys(instr.dest),
                    srcs=(base,),
                    imm=instr.offset,
                    size=instr.size,
                )
            )
            return

        if op is IROp.STORE:
            value_cls = "float" if instr.is_float else "int"
            value = self._materialize(instr.operands[0], value_cls)
            base = self._materialize(instr.operands[1], "int")
            opcode = Opcode.FSTORE if instr.is_float else Opcode.STORE
            self.emit(
                Instruction(
                    opcode, srcs=(value, base), imm=instr.offset, size=instr.size
                )
            )
            return

        if op in (IROp.MOV, IROp.FMOV):
            dest = self._phys(instr.dest)
            source = instr.operands[0]
            if isinstance(source, Const):
                opcode = Opcode.FLI if op is IROp.FMOV else Opcode.LI
                imm = float(source.value) if op is IROp.FMOV else int(source.value)
                self.emit(Instruction(opcode, dest=dest, imm=imm))
            else:
                opcode = Opcode.FMOV if op is IROp.FMOV else Opcode.MOV
                self.emit(Instruction(opcode, dest=dest, srcs=(self._phys(source),)))
            return

        if op in _UNARY_OPS:
            cls = "float" if op in (IROp.FSQRT, IROp.FABS, IROp.CVT_FI) else "int"
            src = self._materialize(instr.operands[0], cls)
            self.emit(
                Instruction(_UNARY_OPS[op], dest=self._phys(instr.dest), srcs=(src,))
            )
            return

        if op in _SIMPLE_OPS:
            cls = "float" if instr.operands and _is_float_op(op) else "int"
            first = self._materialize(instr.operands[0], cls)
            second = instr.operands[1] if len(instr.operands) > 1 else None
            if isinstance(second, Const):
                self.emit(
                    Instruction(
                        _SIMPLE_OPS[op],
                        dest=self._phys(instr.dest),
                        srcs=(first,),
                        imm=second.value,
                    )
                )
            else:
                srcs = (first,) if second is None else (first, self._phys(second))
                self.emit(
                    Instruction(_SIMPLE_OPS[op], dest=self._phys(instr.dest), srcs=srcs)
                )
            return

        raise CompilerError(f"codegen: unhandled IR op {op!r}")

    def _emit_terminator(self, term, fallthrough: Optional[str]) -> None:
        if isinstance(term, Branch):
            if term.target != fallthrough:
                self.emit(Instruction(Opcode.JMP, target=term.target))
            elif self.pending_label is not None:
                # Keep the label anchored even when the jump is elided.
                self.emit(Instruction(Opcode.NOP))
            return
        if isinstance(term, CondBranch):
            cond = self._phys(term.cond)
            if term.iffalse == fallthrough:
                self.emit(Instruction(Opcode.BNEZ, srcs=(cond,), target=term.iftrue))
            elif term.iftrue == fallthrough:
                self.emit(Instruction(Opcode.BEQZ, srcs=(cond,), target=term.iffalse))
            else:
                self.emit(Instruction(Opcode.BNEZ, srcs=(cond,), target=term.iftrue))
                self.emit(Instruction(Opcode.JMP, target=term.iffalse))
            return
        if isinstance(term, Ret):
            if term.value is not None:
                if isinstance(term.value, Const):
                    cls = term.value.cls
                    dest = (
                        regdefs.FP_RETURN_REG if cls == "float" else regdefs.RETURN_REG
                    )
                    opcode = Opcode.FLI if cls == "float" else Opcode.LI
                    self.emit(Instruction(opcode, dest=dest, imm=term.value.value))
                else:
                    cls = term.value.cls
                    dest = (
                        regdefs.FP_RETURN_REG if cls == "float" else regdefs.RETURN_REG
                    )
                    src = self._phys(term.value)
                    if src != dest:
                        opcode = Opcode.FMOV if cls == "float" else Opcode.MOV
                        self.emit(Instruction(opcode, dest=dest, srcs=(src,)))
            self.emit(Instruction(Opcode.HALT))
            return
        raise CompilerError(f"codegen: unhandled terminator {term!r}")


def _is_float_op(op: IROp) -> bool:
    return op.value.startswith("f")


def generate(func: Function, frame_slots: int = 0, param_locations=None) -> Program:
    """Generate an ISA program for an allocated IR function."""
    return CodeGenerator(func, frame_slots, param_locations).generate()
