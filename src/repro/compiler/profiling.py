"""Profile-guided loop selection (paper section 5.1).

The paper's prototype uses profiling information to annotate the most
profitable loops, "simulating perfect static loop selection", and notes
that unprofitable loops must be excluded statically or dynamically.  This
module implements that workflow over compiled programs:

1. compile with every loop marked (``CompileOptions(mark_all_loops=True)``
   or a source with pragmas everywhere);
2. :func:`profile_program` — one functional run counting, per region,
   dynamic instructions, region entries, iterations and body sizes;
3. :func:`select_profitable` — static selection heuristics in the spirit
   of section 5.1: drop loops with tiny bodies, low trip counts or low
   coverage;
4. :func:`apply_selection` — rewrite the binary with unselected hints
   turned into nops (the two-nops-per-iteration cost the paper quotes for
   dynamically deselected loops disappears entirely for statically
   deselected ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from ..uarch.executor import Executor
from ..uarch.memory_state import SparseMemory


@dataclass
class LoopProfile:
    """Dynamic statistics for one annotated region."""

    region: str
    entries: int = 0
    iterations: int = 0
    instructions: int = 0   # dynamic instructions inside the region
    coverage: float = 0.0   # fraction of total dynamic instructions

    @property
    def mean_trip_count(self) -> float:
        return self.iterations / self.entries if self.entries else 0.0

    @property
    def mean_iteration_size(self) -> float:
        return self.instructions / self.iterations if self.iterations else 0.0


def profile_program(
    program: Program,
    memory: Optional[SparseMemory] = None,
    initial_regs: Optional[dict] = None,
    max_instructions: int = 5_000_000,
) -> List[LoopProfile]:
    """One functional run; returns per-region loop profiles."""
    executor = Executor(program, memory)
    if initial_regs:
        executor.regs.update(initial_regs)

    profiles: Dict[str, LoopProfile] = {}
    active: Optional[str] = None
    active_index: Optional[int] = None

    def hook(pc, instr, result):
        nonlocal active, active_index
        if active is not None:
            profiles[active].instructions += 1
        if not instr.is_hint:
            return
        op = instr.opcode
        if op is Opcode.DETACH and active is None:
            active = instr.region
            active_index = instr.region_index
            profile = profiles.setdefault(active, LoopProfile(active))
            profile.entries += 1
            profile.iterations += 1
        elif op is Opcode.REATTACH and active_index == instr.region_index:
            # Falling through the reattach into the continuation starts the
            # next iteration; count it at the next detach instead.
            pass
        elif op is Opcode.DETACH and active_index == instr.region_index:
            profiles[active].iterations += 1
        elif op is Opcode.SYNC and active_index == instr.region_index:
            active = None
            active_index = None

    executor._trace_hook = hook
    executor.run(max_instructions=max_instructions)

    total = executor.instruction_count
    result = list(profiles.values())
    for profile in result:
        profile.coverage = profile.instructions / total if total else 0.0
    return result


def select_profitable(
    profiles: Iterable[LoopProfile],
    min_coverage: float = 0.02,
    min_trip_count: float = 4.0,
    min_iteration_size: float = 6.0,
    max_iteration_size: float = 2000.0,
) -> Set[str]:
    """Static selection (section 5.1): keep loops likely to profit.

    The defaults encode the paper's observed failure modes: very small
    loops, low trip counts, and extremely large iterations are excluded;
    so are loops that cover a negligible share of run time.
    """
    keep: Set[str] = set()
    for profile in profiles:
        if profile.coverage < min_coverage:
            continue
        if profile.mean_trip_count < min_trip_count:
            continue
        if not (min_iteration_size <= profile.mean_iteration_size
                <= max_iteration_size):
            continue
        keep.add(profile.region)
    return keep


def apply_selection(program: Program, keep: Set[str]) -> Program:
    """A copy of ``program`` with hints of unselected regions as nops."""
    instructions = []
    for instr in program:
        if instr.is_hint and instr.region not in keep:
            instructions.append(
                Instruction(Opcode.NOP, label=instr.label, comment=str(instr))
            )
        else:
            instructions.append(
                Instruction(
                    opcode=instr.opcode,
                    dest=instr.dest,
                    srcs=instr.srcs,
                    imm=instr.imm,
                    size=instr.size,
                    target=instr.target,
                    region=instr.region,
                    label=instr.label,
                )
            )
    return Program(instructions, dict(program.labels),
                   name=program.name + ":selected")


def profile_and_select(
    program: Program,
    memory: Optional[SparseMemory] = None,
    initial_regs: Optional[dict] = None,
    **selection_kwargs,
) -> Program:
    """The full section-5.1 pipeline: profile, select, rewrite."""
    mem_copy = memory.copy() if memory is not None else None
    profiles = profile_program(program, mem_copy, initial_regs)
    keep = select_profitable(profiles, **selection_kwargs)
    return apply_selection(program, keep)
