"""Control-flow-graph analyses: predecessors, reverse postorder, dominators.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm, which is simple
and fast for the small functions the Frog compiler produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import CompilerError
from .ir import Function


class CFG:
    """Derived CFG facts for one function (recompute after mutation)."""

    def __init__(self, func: Function):
        self.func = func
        func.validate()
        self.succs: Dict[str, List[str]] = {}
        self.preds: Dict[str, List[str]] = {b.name: [] for b in func.blocks}
        for block in func.blocks:
            succs = list(block.successors())
            self.succs[block.name] = succs
            for s in succs:
                self.preds[s].append(block.name)
        self.rpo: List[str] = self._reverse_postorder()
        self.rpo_index: Dict[str, int] = {n: i for i, n in enumerate(self.rpo)}
        self.idom: Dict[str, Optional[str]] = self._dominators()

    def _reverse_postorder(self) -> List[str]:
        seen: Set[str] = set()
        order: List[str] = []
        # Iterative DFS to avoid recursion limits on long CFG chains.
        stack = [(self.func.entry.name, iter(self.succs[self.func.entry.name]))]
        seen.add(self.func.entry.name)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self.succs[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    @property
    def reachable(self) -> Set[str]:
        return set(self.rpo)

    def _dominators(self) -> Dict[str, Optional[str]]:
        """Immediate dominators (Cooper–Harvey–Kennedy)."""
        entry = self.func.entry.name
        idom: Dict[str, Optional[str]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for node in self.rpo:
                if node == entry:
                    continue
                processed = [p for p in self.preds[node] if p in idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = self._intersect(p, new_idom, idom)
                if idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True
        result: Dict[str, Optional[str]] = {}
        for node in self.rpo:
            result[node] = None if node == entry else idom.get(node)
        return result

    def _intersect(self, a: str, b: str, idom: Dict[str, Optional[str]]) -> str:
        index = self.rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b``."""
        if a == b:
            return True
        node: Optional[str] = b
        entry = self.func.entry.name
        while node is not None and node != entry:
            node = self.idom[node]
            if node == a:
                return True
        return a == entry

    def back_edges(self) -> List[tuple]:
        """Edges (tail, head) where head dominates tail — loop back edges."""
        edges = []
        for block in self.func.blocks:
            if block.name not in self.rpo_index:
                continue  # unreachable
            for succ in self.succs[block.name]:
                if self.dominates(succ, block.name):
                    edges.append((block.name, succ))
        return edges

    def validate_reachability(self) -> None:
        unreachable = {b.name for b in self.func.blocks} - self.reachable
        if unreachable:
            raise CompilerError(
                f"{self.func.name}: unreachable blocks {sorted(unreachable)}"
            )
