"""Linear-scan register allocation from virtual to physical registers.

Intervals are computed on the block layout order, extended to cover any
block where the register is live-in or live-out (safe for loops).  When the
pool runs dry, the interval with the furthest end is spilled to a stack
slot; spill loads/stores go through ``sp``-relative memory.  Spilled
loop-carried values therefore become through-memory dependencies — the same
artefact the paper notes for register-pressure lowering (section 5.3) — and
are handled at run time by the SSB/conflict detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CompilerError
from ..isa import registers as regdefs
from .cfg import CFG
from .ir import Function, IRInstr, IROp, VReg
from .liveness import Liveness

# Scratch registers reserved for spill-code sequencing.
INT_SCRATCH = ("r30", "r31")
FP_SCRATCH = ("f14", "f15")

INT_POOL = [r for r in regdefs.ALLOCATABLE_INT if r not in INT_SCRATCH]
FP_POOL = [f for f in regdefs.ALLOCATABLE_FP if f not in FP_SCRATCH]


@dataclass
class Interval:
    vreg: VReg
    start: int
    end: int
    phys: Optional[str] = None
    slot: Optional[int] = None  # stack slot index if spilled

    @property
    def spilled(self) -> bool:
        return self.slot is not None


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    mapping: Dict[VReg, Interval]
    frame_slots: int  # number of 8-byte spill slots

    def location(self, vreg: VReg) -> Interval:
        return self.mapping[vreg]


def _number_positions(func: Function) -> Dict[str, Tuple[int, int]]:
    """Assign (start, end) numbering per block over a linear layout."""
    positions: Dict[str, Tuple[int, int]] = {}
    pos = 0
    for block in func.blocks:
        start = pos
        pos += max(1, len(block.instrs)) + 1  # +1 for the terminator
        positions[block.name] = (start, pos - 1)
    return positions


def compute_intervals(func: Function) -> List[Interval]:
    cfg = CFG(func)
    liveness = Liveness(func, cfg)
    block_pos = _number_positions(func)

    intervals: Dict[VReg, Interval] = {}

    def touch(vreg: VReg, pos: int) -> None:
        iv = intervals.get(vreg)
        if iv is None:
            intervals[vreg] = Interval(vreg, pos, pos)
        else:
            iv.start = min(iv.start, pos)
            iv.end = max(iv.end, pos)

    for param, _ in func.params:
        touch(param, 0)

    for block in func.blocks:
        start, end = block_pos[block.name]
        for v in liveness.live_in[block.name]:
            touch(v, start)
        for v in liveness.live_out[block.name]:
            touch(v, end)
        pos = start
        for instr in block.instrs:
            for v in instr.uses():
                touch(v, pos)
            for v in instr.defs():
                touch(v, pos)
            pos += 1
        if block.terminator is not None:
            for v in block.terminator.uses():
                touch(v, pos)

    return sorted(intervals.values(), key=lambda iv: (iv.start, iv.end))


def allocate(func: Function) -> Allocation:
    """Run linear scan; returns the vreg -> location mapping."""
    intervals = compute_intervals(func)
    pools = {"int": list(INT_POOL), "float": list(FP_POOL)}
    active: Dict[str, List[Interval]] = {"int": [], "float": []}
    mapping: Dict[VReg, Interval] = {}
    next_slot = 0

    for iv in intervals:
        cls = iv.vreg.cls
        act = active[cls]
        # Expire old intervals.
        act[:] = [a for a in act if a.end >= iv.start or _release(a, pools[cls])]
        if pools[cls]:
            iv.phys = pools[cls].pop()
            act.append(iv)
        else:
            # Spill the active interval with the furthest end (or this one).
            victim = max(act, key=lambda a: a.end) if act else None
            if victim is not None and victim.end > iv.end:
                iv.phys = victim.phys
                victim.phys = None
                victim.slot = next_slot
                next_slot += 1
                act.remove(victim)
                act.append(iv)
            else:
                iv.slot = next_slot
                next_slot += 1
        mapping[iv.vreg] = iv

    return Allocation(mapping, next_slot)


def _release(interval: Interval, pool: List[str]) -> bool:
    """Return an expired interval's register to the pool; always False so it
    can be used inside a filtering comprehension."""
    if interval.phys is not None:
        pool.append(interval.phys)
    return False


def apply_allocation(func: Function, alloc: Allocation) -> None:
    """Rewrite the IR in place: vregs -> physical names, with spill code.

    After this pass every operand VReg name is a physical register name; the
    ``cls`` field is preserved so codegen can still distinguish int/float.
    """
    for block in func.blocks:
        new_instrs: List[IRInstr] = []
        for instr in block.instrs:
            scratch_in = {"int": iter(INT_SCRATCH), "float": iter(FP_SCRATCH)}
            replacements: Dict[VReg, VReg] = {}
            # Reload spilled uses into scratch registers.
            for use in dict.fromkeys(instr.uses()):
                loc = alloc.mapping[use]
                if loc.spilled:
                    try:
                        scratch = next(scratch_in[use.cls])
                    except StopIteration:
                        raise CompilerError(
                            f"too many spilled operands in one instruction: {instr}"
                        )
                    phys = VReg(scratch, use.cls)
                    new_instrs.append(_spill_load(phys, loc.slot, use.cls))
                    replacements[use] = phys
                else:
                    replacements[use] = VReg(loc.phys, use.cls)
            instr.operands = tuple(
                replacements.get(v, v) if isinstance(v, VReg) else v
                for v in instr.operands
            )
            # Destination.
            store_after: Optional[IRInstr] = None
            if instr.dest is not None:
                loc = alloc.mapping[instr.dest]
                if loc.spilled:
                    scratch = (INT_SCRATCH if instr.dest.cls == "int" else FP_SCRATCH)[0]
                    phys = VReg(scratch, instr.dest.cls)
                    store_after = _spill_store(phys, loc.slot, instr.dest.cls)
                    instr.dest = phys
                else:
                    instr.dest = VReg(loc.phys, instr.dest.cls)
            new_instrs.append(instr)
            if store_after is not None:
                new_instrs.append(store_after)
        block.instrs = new_instrs

        term = block.terminator
        if term is not None and term.uses():
            extra: List[IRInstr] = []
            for use in term.uses():
                loc = alloc.mapping[use]
                if loc.spilled:
                    phys = VReg(INT_SCRATCH[0] if use.cls == "int" else FP_SCRATCH[0], use.cls)
                    extra.append(_spill_load(phys, loc.slot, use.cls))
                    _replace_term_use(term, use, phys)
                else:
                    _replace_term_use(term, use, VReg(loc.phys, use.cls))
            block.instrs.extend(extra)


def _spill_load(dest: VReg, slot: int, cls: str) -> IRInstr:
    return IRInstr(
        IROp.LOAD,
        dest=dest,
        operands=(VReg("sp", "int"),),
        offset=slot * 8,
        size=8,
        is_float=cls == "float",
    )


def _spill_store(src: VReg, slot: int, cls: str) -> IRInstr:
    return IRInstr(
        IROp.STORE,
        operands=(src, VReg("sp", "int")),
        offset=slot * 8,
        size=8,
        is_float=cls == "float",
    )


def _replace_term_use(term, old: VReg, new: VReg) -> None:
    from .ir import CondBranch, Ret

    if isinstance(term, CondBranch) and term.cond == old:
        term.cond = new
    elif isinstance(term, Ret) and term.value == old:
        term.value = new
