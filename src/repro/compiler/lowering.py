"""Lowering from the Frog AST to the compiler IR.

Design notes:

* Variables are *not* SSA: each source variable gets one stable virtual
  register and assignments ``mov`` into it.  This keeps loop-carried
  dependencies visible to the liveness analysis exactly as the
  hint-insertion pass needs them.
* All user-function calls are inlined (the reproduction ISA keeps
  ``call``/``ret`` for hand-written assembly, but the Frog compiler avoids a
  calling convention entirely).  Recursion is rejected.
* ``#pragma loopfrog`` loops are recorded in ``Function.marked_loops`` by
  header block name, which is what the hint-insertion pass consumes
  (paper section 5.1: manual loop selection, automatic hint insertion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import CompilerError
from ..lang import ast
from .ir import (
    Branch,
    CondBranch,
    Const,
    Function,
    IRInstr,
    IROp,
    Module,
    Ret,
    Value,
    VReg,
)

_INT_BINOPS = {
    "+": IROp.ADD, "-": IROp.SUB, "*": IROp.MUL, "/": IROp.DIV, "%": IROp.REM,
    "&": IROp.AND, "|": IROp.OR, "^": IROp.XOR, "<<": IROp.SHL, ">>": IROp.SHR,
    "<": IROp.SLT, "<=": IROp.SLE, "==": IROp.SEQ, "!=": IROp.SNE,
}
_FLOAT_BINOPS = {
    "+": IROp.FADD, "-": IROp.FSUB, "*": IROp.FMUL, "/": IROp.FDIV,
    "<": IROp.FSLT, "<=": IROp.FSLE, "==": IROp.FSEQ,
}
_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}

_MAX_INLINE_DEPTH = 16


@dataclass
class _LoopContext:
    break_target: str
    continue_target: str


@dataclass
class _InlineContext:
    """Return plumbing for an inlined function body."""

    join_block: str
    result: Optional[VReg]
    result_type: Optional[ast.Type]


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, Tuple[VReg, ast.Type]] = {}

    def declare(self, name: str, reg: VReg, typ: ast.Type) -> None:
        if name in self.vars:
            raise CompilerError(f"redeclaration of {name!r}")
        self.vars[name] = (reg, typ)

    def lookup(self, name: str) -> Tuple[VReg, ast.Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        raise CompilerError(f"undefined variable {name!r}")


class Lowerer:
    """Lowers one entry function (plus anything it calls) to IR."""

    def __init__(self, module: ast.Module, entry: str = "main",
                 mark_all_loops: bool = False):
        self.ast_module = module
        self.entry_name = entry
        self.mark_all_loops = mark_all_loops
        try:
            self.entry_decl = module.function(entry)
        except KeyError:
            raise CompilerError(f"no function named {entry!r}")
        self.func = Function(entry)
        self.current = self.func.new_block("entry")
        self.current_line = 0  # source line of the statement being lowered
        self.loop_stack: List[_LoopContext] = []
        self.inline_stack: List[str] = []
        self.inline_ctx: List[_InlineContext] = []

    # -- emit helpers -------------------------------------------------------

    def emit(self, instr: IRInstr) -> None:
        if self.current.terminator is not None:
            # Dead code after return/break: drop it silently.
            return
        if not instr.line:
            instr.line = self.current_line
        self.current.instrs.append(instr)

    def terminate(self, term) -> None:
        if self.current.terminator is None:
            self.current.terminator = term

    def start_block(self, block) -> None:
        self.current = block

    def _fresh(self, cls: str) -> VReg:
        return self.func.new_vreg(cls)

    # -- top level ----------------------------------------------------------

    def lower(self) -> Function:
        # Parameters become stable vregs in the outer scope.
        scope = _Scope()
        for pname, ptype in self.entry_decl.params:
            reg = self.func.new_vreg(ptype.reg_class, hint=f"arg_{pname}_")
            self.func.params.append((reg, ptype))
            scope.declare(pname, reg, ptype)
        self.lower_block(self.entry_decl.body, scope)
        # Implicit return for void functions.
        self.terminate(Ret(None))
        self._seal_dangling_blocks()
        self.func.validate()
        return self.func

    def _seal_dangling_blocks(self) -> None:
        for block in self.func.blocks:
            if block.terminator is None:
                block.terminator = Ret(None)

    # -- statements ---------------------------------------------------------

    def lower_block(self, block: ast.Block, scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self.lower_stmt(stmt, inner)

    def lower_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        line = getattr(stmt, "line", 0)
        if line:
            self.current_line = line
        if isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt, scope)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt, scope)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt, scope)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt, scope)
        elif isinstance(stmt, ast.Break):
            self._lower_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._lower_continue(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Block):
            self.lower_block(stmt, scope)
        else:
            raise CompilerError(f"unhandled statement {type(stmt).__name__}")

    def _lower_var_decl(self, stmt: ast.VarDecl, scope: _Scope) -> None:
        reg = self.func.new_vreg(stmt.type.reg_class, hint=f"{stmt.name}_")
        scope.declare(stmt.name, reg, stmt.type)
        if stmt.init is not None:
            value, vtype = self.lower_expr(stmt.init, scope)
            value = self._convert(value, vtype, stmt.type)
            self._move_into(reg, value, stmt.type.reg_class)
        else:
            zero = Const(0.0) if stmt.type.reg_class == "float" else Const(0)
            self._move_into(reg, zero, stmt.type.reg_class)

    def _move_into(self, dest: VReg, value: Value, cls: str) -> None:
        op = IROp.FMOV if cls == "float" else IROp.MOV
        self.emit(IRInstr(op, dest=dest, operands=(value,)))

    def _lower_assign(self, stmt: ast.Assign, scope: _Scope) -> None:
        if isinstance(stmt.target, ast.Name):
            reg, vtype = scope.lookup(stmt.target.ident)
            value, etype = self.lower_expr(stmt.value, scope)
            value = self._convert(value, etype, vtype)
            self._move_into(reg, value, vtype.reg_class)
            return
        if isinstance(stmt.target, ast.Index):
            base, offset, elem = self._lower_address(stmt.target, scope)
            value, etype = self.lower_expr(stmt.value, scope)
            value = self._convert(value, etype, elem)
            value = self._ensure_reg(value, elem.reg_class)
            self.emit(
                IRInstr(
                    IROp.STORE,
                    operands=(value, base),
                    offset=offset,
                    size=elem.size,
                    is_float=elem.reg_class == "float",
                )
            )
            return
        raise CompilerError("invalid assignment target")

    def _lower_if(self, stmt: ast.If, scope: _Scope) -> None:
        cond = self._lower_condition(stmt.cond, scope)
        then_block = self.func.new_block("if.then")
        join_block = self.func.new_block("if.join")
        else_block = self.func.new_block("if.else") if stmt.els else join_block
        self.terminate(CondBranch(cond, then_block.name, else_block.name))

        self.start_block(then_block)
        self.lower_block(stmt.then, scope)
        self.terminate(Branch(join_block.name))

        if stmt.els is not None:
            self.start_block(else_block)
            self.lower_block(stmt.els, scope)
            self.terminate(Branch(join_block.name))

        self.start_block(join_block)

    def _lower_while(self, stmt: ast.While, scope: _Scope) -> None:
        cond_block = self.func.new_block("while.cond")
        body_block = self.func.new_block("while.body")
        end_block = self.func.new_block("while.end")
        self.terminate(Branch(cond_block.name))

        self.start_block(cond_block)
        cond = self._lower_condition(stmt.cond, scope)
        self.terminate(CondBranch(cond, body_block.name, end_block.name))

        self.loop_stack.append(_LoopContext(end_block.name, cond_block.name))
        self.start_block(body_block)
        self.lower_block(stmt.body, scope)
        self.terminate(Branch(cond_block.name))
        self.loop_stack.pop()

        self.func.loop_lines[cond_block.name] = getattr(stmt, "line", 0)
        if self.mark_all_loops or (stmt.pragma and "loopfrog" in stmt.pragma):
            self.func.marked_loops.append(cond_block.name)
        self.start_block(end_block)

    def _lower_for(self, stmt: ast.For, scope: _Scope) -> None:
        outer = _Scope(scope)  # the induction variable's scope
        if stmt.init is not None:
            self.lower_stmt(stmt.init, outer)

        cond_block = self.func.new_block("for.cond")
        body_block = self.func.new_block("for.body")
        inc_block = self.func.new_block("for.inc")
        end_block = self.func.new_block("for.end")
        self.terminate(Branch(cond_block.name))

        self.start_block(cond_block)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond, outer)
            self.terminate(CondBranch(cond, body_block.name, end_block.name))
        else:
            self.terminate(Branch(body_block.name))

        self.loop_stack.append(_LoopContext(end_block.name, inc_block.name))
        self.start_block(body_block)
        self.lower_block(stmt.body, outer)
        self.terminate(Branch(inc_block.name))
        self.loop_stack.pop()

        self.start_block(inc_block)
        if stmt.step is not None:
            self.lower_stmt(stmt.step, outer)
        self.terminate(Branch(cond_block.name))

        self.func.loop_lines[cond_block.name] = getattr(stmt, "line", 0)
        if self.mark_all_loops or (stmt.pragma and "loopfrog" in stmt.pragma):
            self.func.marked_loops.append(cond_block.name)
        self.start_block(end_block)

    def _lower_return(self, stmt: ast.Return, scope: _Scope) -> None:
        if self.inline_ctx:
            ctx = self.inline_ctx[-1]
            if stmt.value is not None:
                if ctx.result is None or ctx.result_type is None:
                    raise CompilerError("returning a value from a void function")
                value, etype = self.lower_expr(stmt.value, scope)
                value = self._convert(value, etype, ctx.result_type)
                self._move_into(ctx.result, value, ctx.result_type.reg_class)
            self.terminate(Branch(ctx.join_block))
            # Continue lowering into a fresh dead block (dropped later if
            # unreachable code follows the return).
            self.start_block(self.func.new_block("post.ret"))
            self.terminate(Branch(ctx.join_block))
            self.start_block(self.func.new_block("dead"))
            return
        if stmt.value is not None:
            value, _ = self.lower_expr(stmt.value, scope)
            self.terminate(Ret(value))
        else:
            self.terminate(Ret(None))
        self.start_block(self.func.new_block("dead"))

    def _lower_break(self, stmt: ast.Break) -> None:
        if not self.loop_stack:
            raise CompilerError("break outside a loop")
        self.terminate(Branch(self.loop_stack[-1].break_target))
        self.start_block(self.func.new_block("dead"))

    def _lower_continue(self, stmt: ast.Continue) -> None:
        if not self.loop_stack:
            raise CompilerError("continue outside a loop")
        self.terminate(Branch(self.loop_stack[-1].continue_target))
        self.start_block(self.func.new_block("dead"))

    # -- expressions ---------------------------------------------------------

    def _lower_condition(self, expr: ast.Expr, scope: _Scope) -> VReg:
        value, vtype = self.lower_expr(expr, scope)
        if vtype.reg_class == "float":
            # Nonzero test on a float: f != 0.0.
            reg = self._fresh("int")
            fval = self._ensure_reg(value, "float")
            zero = self._ensure_reg(Const(0.0), "float")
            eq = self._fresh("int")
            self.emit(IRInstr(IROp.FSEQ, dest=eq, operands=(fval, zero)))
            self.emit(IRInstr(IROp.SEQ, dest=reg, operands=(eq, Const(0))))
            return reg
        return self._ensure_reg(value, "int")

    def lower_expr(self, expr: ast.Expr, scope: _Scope) -> Tuple[Value, ast.Type]:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value), ast.INT
        if isinstance(expr, ast.FloatLit):
            return Const(float(expr.value)), ast.FLOAT
        if isinstance(expr, ast.Name):
            reg, vtype = scope.lookup(expr.ident)
            return reg, vtype
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr, scope)
        if isinstance(expr, ast.UnOp):
            return self._lower_unop(expr, scope)
        if isinstance(expr, ast.Index):
            return self._lower_load(expr, scope)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, scope)
        if isinstance(expr, ast.Cast):
            value, vtype = self.lower_expr(expr.operand, scope)
            return self._convert(value, vtype, expr.type), expr.type
        raise CompilerError(f"unhandled expression {type(expr).__name__}")

    def _lower_binop(self, expr: ast.BinOp, scope: _Scope) -> Tuple[Value, ast.Type]:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr, scope)

        left, ltype = self.lower_expr(expr.left, scope)
        right, rtype = self.lower_expr(expr.right, scope)

        use_float = ltype.reg_class == "float" or rtype.reg_class == "float"
        if use_float:
            left = self._convert(left, ltype, ast.FLOAT)
            right = self._convert(right, rtype, ast.FLOAT)
            return self._emit_float_binop(expr.op, left, right)
        return self._emit_int_binop(expr.op, left, right, ltype, rtype)

    def _emit_int_binop(
        self, op: str, left: Value, right: Value, ltype: ast.Type, rtype: ast.Type
    ) -> Tuple[Value, ast.Type]:
        # Normalise > and >= by swapping operands.
        if op == ">":
            op, left, right = "<", right, left
        elif op == ">=":
            op, left, right = "<=", right, left
        irop = _INT_BINOPS.get(op)
        if irop is None:
            raise CompilerError(f"unsupported integer operator {op!r}")
        left = self._ensure_reg(left, "int")
        dest = self._fresh("int")
        self.emit(IRInstr(irop, dest=dest, operands=(left, right)))
        if op in _CMP_OPS:
            return dest, ast.INT
        # Pointer arithmetic keeps the pointer type (byte offsets).
        result_type = ltype if ltype.is_ptr else (rtype if rtype.is_ptr else ast.INT)
        return dest, result_type

    def _emit_float_binop(
        self, op: str, left: Value, right: Value
    ) -> Tuple[Value, ast.Type]:
        if op == ">":
            op, left, right = "<", right, left
        elif op == ">=":
            op, left, right = "<=", right, left
        if op == "!=":
            value, _ = self._emit_float_binop("==", left, right)
            dest = self._fresh("int")
            self.emit(IRInstr(IROp.SEQ, dest=dest, operands=(self._ensure_reg(value, "int"), Const(0))))
            return dest, ast.INT
        irop = _FLOAT_BINOPS.get(op)
        if irop is None:
            raise CompilerError(f"unsupported float operator {op!r}")
        left = self._ensure_reg(left, "float")
        is_cmp = op in _CMP_OPS
        dest = self._fresh("int" if is_cmp else "float")
        self.emit(IRInstr(irop, dest=dest, operands=(left, right)))
        return dest, ast.INT if is_cmp else ast.FLOAT

    def _lower_short_circuit(
        self, expr: ast.BinOp, scope: _Scope
    ) -> Tuple[Value, ast.Type]:
        result = self._fresh("int")
        rhs_block = self.func.new_block("sc.rhs")
        short_block = self.func.new_block("sc.short")
        join_block = self.func.new_block("sc.join")

        left = self._lower_condition(expr.left, scope)
        if expr.op == "&&":
            self.terminate(CondBranch(left, rhs_block.name, short_block.name))
            short_value = Const(0)
        else:
            self.terminate(CondBranch(left, short_block.name, rhs_block.name))
            short_value = Const(1)

        self.start_block(rhs_block)
        right = self._lower_condition(expr.right, scope)
        self.emit(IRInstr(IROp.SNE, dest=result, operands=(right, Const(0))))
        self.terminate(Branch(join_block.name))

        self.start_block(short_block)
        self.emit(IRInstr(IROp.MOV, dest=result, operands=(short_value,)))
        self.terminate(Branch(join_block.name))

        self.start_block(join_block)
        return result, ast.INT

    def _lower_unop(self, expr: ast.UnOp, scope: _Scope) -> Tuple[Value, ast.Type]:
        value, vtype = self.lower_expr(expr.operand, scope)
        if expr.op == "-":
            if vtype.reg_class == "float":
                zero = self._ensure_reg(Const(0.0), "float")
                dest = self._fresh("float")
                self.emit(IRInstr(IROp.FSUB, dest=dest, operands=(zero, value)))
                return dest, ast.FLOAT
            if isinstance(value, Const):
                return Const(-int(value.value)), ast.INT
            zero = self._ensure_reg(Const(0), "int")
            dest = self._fresh("int")
            self.emit(IRInstr(IROp.SUB, dest=dest, operands=(zero, value)))
            return dest, ast.INT
        if expr.op == "!":
            cond = self._lower_condition(expr.operand, scope)
            dest = self._fresh("int")
            self.emit(IRInstr(IROp.SEQ, dest=dest, operands=(cond, Const(0))))
            return dest, ast.INT
        raise CompilerError(f"unsupported unary operator {expr.op!r}")

    def _lower_address(
        self, expr: ast.Index, scope: _Scope
    ) -> Tuple[VReg, int, ast.Type]:
        """Compute (base_reg, const_offset, elem_type) for ``base[index]``."""
        base_value, base_type = self.lower_expr(expr.base, scope)
        if not base_type.is_ptr or base_type.elem is None:
            raise CompilerError(f"indexing a non-pointer value of type {base_type}")
        elem = base_type.elem
        base_reg = self._ensure_reg(base_value, "int")

        index_value, index_type = self.lower_expr(expr.index, scope)
        if index_type.reg_class != "int":
            raise CompilerError("array index must be an integer")
        if isinstance(index_value, Const):
            return base_reg, int(index_value.value) * elem.size, elem
        scaled = self._fresh("int")
        if elem.size == 1:
            scaled = self._ensure_reg(index_value, "int")
        else:
            shift = {2: 1, 4: 2, 8: 3}.get(elem.size)
            if shift is not None:
                self.emit(
                    IRInstr(IROp.SHL, dest=scaled, operands=(index_value, Const(shift)))
                )
            else:
                self.emit(
                    IRInstr(
                        IROp.MUL, dest=scaled, operands=(index_value, Const(elem.size))
                    )
                )
        addr = self._fresh("int")
        self.emit(IRInstr(IROp.ADD, dest=addr, operands=(base_reg, scaled)))
        return addr, 0, elem

    def _lower_load(self, expr: ast.Index, scope: _Scope) -> Tuple[Value, ast.Type]:
        base, offset, elem = self._lower_address(expr, scope)
        dest = self._fresh(elem.reg_class)
        self.emit(
            IRInstr(
                IROp.LOAD,
                dest=dest,
                operands=(base,),
                offset=offset,
                size=elem.size,
                is_float=elem.reg_class == "float",
            )
        )
        # Loaded sub-word ints are sign-extended; type becomes plain int/float.
        return dest, ast.FLOAT if elem.reg_class == "float" else (
            elem if elem.is_ptr else ast.INT
        )

    # -- calls / intrinsics ---------------------------------------------------

    _FLOAT_INTRINSICS = {
        "sqrt": IROp.FSQRT,
        "fabs": IROp.FABS,
    }

    def _lower_call(self, expr: ast.Call, scope: _Scope) -> Tuple[Value, ast.Type]:
        name = expr.func

        if name in self._FLOAT_INTRINSICS:
            (arg,) = self._lower_args(expr, scope, 1)
            value = self._convert(arg[0], arg[1], ast.FLOAT)
            dest = self._fresh("float")
            self.emit(
                IRInstr(
                    self._FLOAT_INTRINSICS[name],
                    dest=dest,
                    operands=(self._ensure_reg(value, "float"),),
                )
            )
            return dest, ast.FLOAT

        if name in ("min", "max", "fmin", "fmax"):
            args = self._lower_args(expr, scope, 2)
            is_float = name.startswith("f") or any(
                a[1].reg_class == "float" for a in args
            )
            target_type = ast.FLOAT if is_float else ast.INT
            ops = tuple(
                self._convert(v, t, target_type) for v, t in args
            )
            base = name.lstrip("f")
            irop = {
                ("min", False): IROp.MIN, ("max", False): IROp.MAX,
                ("min", True): IROp.FMIN, ("max", True): IROp.FMAX,
            }[(base, is_float)]
            dest = self._fresh(target_type.reg_class)
            first = self._ensure_reg(ops[0], target_type.reg_class)
            self.emit(IRInstr(irop, dest=dest, operands=(first, ops[1])))
            return dest, target_type

        if name == "abs":
            (arg,) = self._lower_args(expr, scope, 1)
            if arg[1].reg_class == "float":
                dest = self._fresh("float")
                self.emit(
                    IRInstr(
                        IROp.FABS,
                        dest=dest,
                        operands=(self._ensure_reg(arg[0], "float"),),
                    )
                )
                return dest, ast.FLOAT
            value = self._ensure_reg(arg[0], "int")
            neg = self._fresh("int")
            zero = self._ensure_reg(Const(0), "int")
            self.emit(IRInstr(IROp.SUB, dest=neg, operands=(zero, value)))
            dest = self._fresh("int")
            self.emit(IRInstr(IROp.MAX, dest=dest, operands=(value, neg)))
            return dest, ast.INT

        return self._inline_user_call(expr, scope)

    def _lower_args(self, expr: ast.Call, scope: _Scope, count: int):
        if len(expr.args) != count:
            raise CompilerError(
                f"{expr.func} expects {count} argument(s), got {len(expr.args)}"
            )
        return [self.lower_expr(a, scope) for a in expr.args]

    def _inline_user_call(
        self, expr: ast.Call, scope: _Scope
    ) -> Tuple[Value, ast.Type]:
        try:
            decl = self.ast_module.function(expr.func)
        except KeyError:
            raise CompilerError(f"call to undefined function {expr.func!r}")
        if expr.func in self.inline_stack:
            raise CompilerError(f"recursive call to {expr.func!r} cannot be inlined")
        if len(self.inline_stack) >= _MAX_INLINE_DEPTH:
            raise CompilerError("inline depth limit exceeded")
        if len(expr.args) != len(decl.params):
            raise CompilerError(
                f"{expr.func} expects {len(decl.params)} argument(s), "
                f"got {len(expr.args)}"
            )

        callee_scope = _Scope()
        for (pname, ptype), arg in zip(decl.params, expr.args):
            value, atype = self.lower_expr(arg, scope)
            value = self._convert(value, atype, ptype)
            reg = self.func.new_vreg(ptype.reg_class, hint=f"in_{pname}_")
            self._move_into(reg, value, ptype.reg_class)
            callee_scope.declare(pname, reg, ptype)

        join = self.func.new_block(f"ret.{decl.name}")
        result: Optional[VReg] = None
        if decl.ret_type is not None:
            result = self.func.new_vreg(decl.ret_type.reg_class, hint="retval_")

        self.inline_stack.append(expr.func)
        self.inline_ctx.append(_InlineContext(join.name, result, decl.ret_type))
        # Suspend the caller's loop context: break/continue may not escape.
        saved_loops, self.loop_stack = self.loop_stack, []
        self.lower_block(decl.body, callee_scope)
        self.terminate(Branch(join.name))
        self.loop_stack = saved_loops
        self.inline_ctx.pop()
        self.inline_stack.pop()

        self.start_block(join)
        if result is not None and decl.ret_type is not None:
            return result, decl.ret_type
        return Const(0), ast.INT

    # -- conversions ----------------------------------------------------------

    def _convert(self, value: Value, have: ast.Type, want: ast.Type) -> Value:
        if have.reg_class == want.reg_class:
            return value
        if have.reg_class == "int" and want.reg_class == "float":
            if isinstance(value, Const):
                return Const(float(value.value))
            dest = self._fresh("float")
            self.emit(IRInstr(IROp.CVT_IF, dest=dest, operands=(value,)))
            return dest
        if isinstance(value, Const):
            return Const(int(value.value))
        dest = self._fresh("int")
        self.emit(IRInstr(IROp.CVT_FI, dest=dest, operands=(value,)))
        return dest

    def _ensure_reg(self, value: Value, cls: str) -> VReg:
        if isinstance(value, VReg):
            return value
        dest = self._fresh(cls)
        op = IROp.FMOV if cls == "float" else IROp.MOV
        self.emit(IRInstr(op, dest=dest, operands=(value,)))
        return dest


def lower_module(
    module: ast.Module, entry: str = "main", mark_all_loops: bool = False
) -> Module:
    """Lower the Frog AST ``module`` into an IR module with one entry
    function (callees are inlined).  ``mark_all_loops`` marks every loop
    for hint insertion, regardless of pragmas (used by the section-5.1
    profiling workflow)."""
    ir_module = Module()
    ir_module.add(Lowerer(module, entry, mark_all_loops).lower())
    return ir_module
