"""Natural-loop detection on the IR CFG.

A natural loop is identified by a back edge (latch → header) where the
header dominates the latch; the loop body is everything that can reach the
latch without passing through the header.  Loops sharing a header are merged
(standard practice).  Nesting is recovered by body containment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .cfg import CFG
from .ir import Function


@dataclass
class Loop:
    """One natural loop.

    Attributes:
        header: loop header block name (the unique entry).
        blocks: all block names in the loop, including the header.
        latches: blocks with a back edge to the header.
        exits: (from_block, to_block) edges leaving the loop.
        parent: enclosing loop header, if nested.
        depth: nesting depth (1 = outermost).
    """

    header: str
    blocks: Set[str] = field(default_factory=set)
    latches: List[str] = field(default_factory=list)
    exits: List[Tuple[str, str]] = field(default_factory=list)
    parent: Optional[str] = None
    depth: int = 1

    def __contains__(self, block_name: str) -> bool:
        return block_name in self.blocks


def find_loops(func: Function, cfg: Optional[CFG] = None) -> Dict[str, Loop]:
    """All natural loops of ``func``, keyed by header block name."""
    cfg = cfg or CFG(func)
    loops: Dict[str, Loop] = {}

    for latch, header in cfg.back_edges():
        loop = loops.setdefault(header, Loop(header=header, blocks={header}))
        loop.latches.append(latch)
        # Walk predecessors from the latch until we hit the header.
        stack = [latch]
        while stack:
            node = stack.pop()
            if node in loop.blocks:
                continue
            loop.blocks.add(node)
            stack.extend(p for p in cfg.preds[node] if p in cfg.reachable)

    for loop in loops.values():
        loop.exits = [
            (b, s)
            for b in sorted(loop.blocks)
            for s in cfg.succs[b]
            if s not in loop.blocks
        ]

    _assign_nesting(loops)
    return loops


def _assign_nesting(loops: Dict[str, Loop]) -> None:
    headers = list(loops)
    for h in headers:
        inner = loops[h]
        best: Optional[Loop] = None
        for other_h in headers:
            if other_h == h:
                continue
            outer = loops[other_h]
            if h in outer.blocks and inner.blocks < outer.blocks:
                if best is None or len(outer.blocks) < len(best.blocks):
                    best = outer
        inner.parent = best.header if best else None
    # Depths via parent chains.
    for loop in loops.values():
        depth = 1
        node = loop.parent
        while node is not None:
            depth += 1
            node = loops[node].parent
        loop.depth = depth


def loop_preheader(func: Function, cfg: CFG, loop: Loop) -> Optional[str]:
    """The unique out-of-loop predecessor of the header, if there is one."""
    outside = [
        p for p in cfg.preds[loop.header] if p not in loop.blocks and p in cfg.reachable
    ]
    if len(outside) == 1:
        return outside[0]
    return None
