"""Intermediate representation for the Frog compiler.

A conventional three-address, basic-block IR over an unbounded set of typed
virtual registers.  It intentionally resembles a small slice of LLVM: enough
to host the CFG/dominator/loop/liveness analyses the LoopFrog hint-insertion
pass needs (paper section 5.3), without SSA construction.

Value operands are either :class:`VReg` or :class:`Const`.  Terminators are
stored separately from the instruction list (``block.terminator``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import CompilerError


@dataclass(frozen=True)
class VReg:
    """A virtual register.  ``cls`` is ``"int"`` or ``"float"``."""

    name: str
    cls: str = "int"

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const:
    """An immediate operand."""

    value: Union[int, float]

    @property
    def cls(self) -> str:
        return "float" if isinstance(self.value, float) else "int"

    def __str__(self) -> str:
        return str(self.value)


Value = Union[VReg, Const]


class IROp(enum.Enum):
    # Integer arithmetic / logic (map 1:1 onto ISA opcodes).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    MIN = "min"
    MAX = "max"
    MOV = "mov"

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FMOV = "fmov"
    FSLT = "fslt"
    FSLE = "fsle"
    FSEQ = "fseq"
    CVT_IF = "cvt_if"  # int -> float
    CVT_FI = "cvt_fi"  # float -> int

    # Memory.  LOAD: dest, [base, offset_const], size.  STORE: value first.
    LOAD = "load"
    STORE = "store"

    # LoopFrog hints (region = continuation block name).
    DETACH = "detach"
    REATTACH = "reattach"
    SYNC = "sync"


FLOAT_RESULT_OPS = frozenset(
    {
        IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FDIV, IROp.FSQRT, IROp.FABS,
        IROp.FMIN, IROp.FMAX, IROp.FMOV, IROp.CVT_IF,
    }
)
HINT_OPS = frozenset({IROp.DETACH, IROp.REATTACH, IROp.SYNC})


@dataclass
class IRInstr:
    """One IR instruction.

    * arithmetic: ``dest``, ``operands`` = (a,) or (a, b)
    * ``LOAD``: ``dest``, ``operands`` = (base,), ``offset``, ``size``,
      ``is_float``
    * ``STORE``: ``operands`` = (value, base), ``offset``, ``size``
    * hints: ``region`` = continuation block name
    """

    op: IROp
    dest: Optional[VReg] = None
    operands: Tuple[Value, ...] = ()
    offset: int = 0
    size: int = 8
    is_float: bool = False
    region: Optional[str] = None
    # Source line of the Frog statement this was lowered from (0 = unknown);
    # carried for diagnostics (`repro lint`), never for semantics.
    line: int = 0

    def uses(self) -> Tuple[VReg, ...]:
        return tuple(v for v in self.operands if isinstance(v, VReg))

    def defs(self) -> Tuple[VReg, ...]:
        return (self.dest,) if self.dest is not None else ()

    @property
    def is_memory(self) -> bool:
        return self.op in (IROp.LOAD, IROp.STORE)

    @property
    def is_hint(self) -> bool:
        return self.op in HINT_OPS

    def __str__(self) -> str:
        if self.op is IROp.LOAD:
            kind = "f" if self.is_float else ""
            return (
                f"{self.dest} = {kind}load{self.size} "
                f"[{self.operands[0]} + {self.offset}]"
            )
        if self.op is IROp.STORE:
            kind = "f" if self.is_float else ""
            return (
                f"{kind}store{self.size} {self.operands[0]}, "
                f"[{self.operands[1]} + {self.offset}]"
            )
        if self.is_hint:
            return f"{self.op.value} @{self.region}"
        rhs = ", ".join(str(v) for v in self.operands)
        if self.dest is None:
            return f"{self.op.value} {rhs}"
        return f"{self.dest} = {self.op.value} {rhs}"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass
class Branch:
    """Unconditional branch to ``target`` (a block name)."""

    target: str

    def successors(self) -> Tuple[str, ...]:
        return (self.target,)

    def uses(self) -> Tuple[VReg, ...]:
        return ()

    def __str__(self) -> str:
        return f"br {self.target}"


@dataclass
class CondBranch:
    """Branch to ``iftrue`` when ``cond`` is nonzero, else ``iffalse``."""

    cond: VReg
    iftrue: str
    iffalse: str

    def successors(self) -> Tuple[str, ...]:
        return (self.iftrue, self.iffalse)

    def uses(self) -> Tuple[VReg, ...]:
        return (self.cond,)

    def __str__(self) -> str:
        return f"cbr {self.cond}, {self.iftrue}, {self.iffalse}"


@dataclass
class Ret:
    value: Optional[Value] = None

    def successors(self) -> Tuple[str, ...]:
        return ()

    def uses(self) -> Tuple[VReg, ...]:
        return (self.value,) if isinstance(self.value, VReg) else ()

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


Terminator = Union[Branch, CondBranch, Ret]


@dataclass
class BasicBlock:
    name: str
    instrs: List[IRInstr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def successors(self) -> Tuple[str, ...]:
        if self.terminator is None:
            return ()
        return self.terminator.successors()

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {i}" for i in self.instrs)
        if self.terminator is not None:
            lines.append(f"  {self.terminator}")
        return "\n".join(lines)


class Function:
    """An IR function: ordered blocks, entry first."""

    def __init__(self, name: str, params: Sequence[Tuple[VReg, object]] = ()):
        self.name = name
        self.params: List[Tuple[VReg, object]] = list(params)
        self.blocks: List[BasicBlock] = []
        self._block_map: Dict[str, BasicBlock] = {}
        self._vreg_counter = 0
        self._block_counter = 0
        # Loops the frontend marked with #pragma loopfrog: header block names.
        self.marked_loops: List[str] = []
        # Source line of each lowered loop, keyed by header block name.
        self.loop_lines: Dict[str, int] = {}

    # -- construction helpers ----------------------------------------------

    def new_vreg(self, cls: str = "int", hint: str = "t") -> VReg:
        self._vreg_counter += 1
        return VReg(f"{hint}{self._vreg_counter}", cls)

    def new_block(self, hint: str = "bb") -> BasicBlock:
        self._block_counter += 1
        name = f"{hint}.{self._block_counter}"
        while name in self._block_map:
            self._block_counter += 1
            name = f"{hint}.{self._block_counter}"
        block = BasicBlock(name)
        self.blocks.append(block)
        self._block_map[name] = block
        return block

    def add_block(self, block: BasicBlock, after: Optional[str] = None) -> None:
        if block.name in self._block_map:
            raise CompilerError(f"duplicate block {block.name!r}")
        if after is None:
            self.blocks.append(block)
        else:
            idx = self.blocks.index(self._block_map[after])
            self.blocks.insert(idx + 1, block)
        self._block_map[block.name] = block

    def block(self, name: str) -> BasicBlock:
        try:
            return self._block_map[name]
        except KeyError:
            raise CompilerError(f"no block named {name!r} in {self.name}")

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise CompilerError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterable[IRInstr]:
        for block in self.blocks:
            yield from block.instrs

    def validate(self) -> None:
        """Check structural invariants; raises CompilerError on violation."""
        for block in self.blocks:
            if block.terminator is None:
                raise CompilerError(
                    f"{self.name}: block {block.name} has no terminator"
                )
            for succ in block.successors():
                if succ not in self._block_map:
                    raise CompilerError(
                        f"{self.name}: block {block.name} branches to "
                        f"unknown block {succ!r}"
                    )

    def __str__(self) -> str:
        header = ", ".join(str(p) for p, _ in self.params)
        body = "\n".join(str(b) for b in self.blocks)
        return f"fn {self.name}({header}):\n{body}"


class Module:
    """A collection of IR functions; ``main`` is the program entry."""

    def __init__(self):
        self.functions: Dict[str, Function] = {}

    def add(self, func: Function) -> None:
        if func.name in self.functions:
            raise CompilerError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())
