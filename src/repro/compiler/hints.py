"""LoopFrog hint insertion (paper section 5.3).

For every ``#pragma loopfrog``-marked loop the pass tries to place a
``detach``/``reattach`` pair and per-exit ``sync`` hints so that:

* the *header* (everything above ``detach`` in the iteration — in our
  lowering, the loop's condition test) and the *continuation* (everything
  below ``reattach`` — the induction updates and the branch back) contain
  **all register loop-carried dependencies**, and
* the *body* (between ``detach`` and ``reattach``) defines **no register
  that is live into the continuation** — i.e. no register dataflow from the
  body to the continuation or to any later iteration (paper section 3).

The pass never reorders instructions; it only chooses hint placement, and
maximises the body by choosing the latest legal split point inside the
latch block.  Loops where no legal placement exists (e.g. register
reductions in the body — the paper's "complex cross-iteration dependencies")
are left unannotated, with a diagnostic explaining why.

Through-memory loop-carried dependencies are deliberately ignored, exactly
as in the paper's prototype: the microarchitecture's conflict detector
handles them at run time by squashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import CompilerError
from .cfg import CFG
from .ir import (
    BasicBlock,
    Branch,
    CondBranch,
    Function,
    IRInstr,
    IROp,
    VReg,
)
from .liveness import Liveness
from .loops import Loop, find_loops

# Stable rejection-reason identifiers (enum-like).  Tools key on these;
# the human-readable explanation travels separately in ``detail``.
REASON_NOT_A_LOOP = "not-a-loop"
REASON_MULTIPLE_LATCHES = "multiple-latches"
REASON_NO_CONDITIONAL_EXIT = "no-conditional-exit"
REASON_EXIT_NOT_GUARDED = "exit-not-guarded"
REASON_BODY_REGISTER_DEPENDENCE = "body-register-dependence"
REASON_BODY_TOO_SMALL = "body-too-small"
REASON_STATIC_MUST_CONFLICT = "static-must-conflict"

REJECT_REASONS = frozenset({
    REASON_NOT_A_LOOP,
    REASON_MULTIPLE_LATCHES,
    REASON_NO_CONDITIONAL_EXIT,
    REASON_EXIT_NOT_GUARDED,
    REASON_BODY_REGISTER_DEPENDENCE,
    REASON_BODY_TOO_SMALL,
    REASON_STATIC_MUST_CONFLICT,
})

SPECULATE_ALWAYS = "always"
SPECULATE_STATIC_GATED = "static-gated"


@dataclass
class HintReport:
    """Outcome of attempting to annotate one marked loop."""

    header: str
    annotated: bool
    reason: str = ""  # stable identifier from REJECT_REASONS ("" if annotated)
    detail: str = ""  # human-readable explanation of the rejection
    region: Optional[str] = None  # continuation block name (the region ID)
    body_blocks: List[str] = field(default_factory=list)
    split_index: int = 0
    # Verdict from repro.compiler.depanal when the pipeline ran it
    # (always populated in static-gated mode).
    static_verdict: Optional[str] = None

    @property
    def message(self) -> str:
        """Reason id plus prose, for display."""
        if self.annotated:
            return "annotated"
        if self.detail:
            return f"{self.reason}: {self.detail}"
        return self.reason


@dataclass
class HintOptions:
    """Tunables for the hint-insertion pass."""

    # Smallest body (in IR instructions) worth annotating.  The paper's
    # compiler "blindly maximises the body"; static deselection of tiny
    # bodies is the cheap part of loop selection (section 5.1).
    min_body_instrs: int = 1
    # Speculation policy: "always" annotates every legal loop and lets the
    # conflict detector squash (the paper's prototype behaviour);
    # "static-gated" additionally rejects loops the static dependence
    # analysis (repro.compiler.depanal) proves must-conflict.
    speculate: str = SPECULATE_ALWAYS
    # Conflict-detector granule assumed by the static analysis in
    # static-gated mode; must match the simulated machine to be meaningful.
    granule_bytes: int = 4


def insert_hints(func: Function, options: Optional[HintOptions] = None) -> List[HintReport]:
    """Annotate all marked loops of ``func`` in place; returns reports."""
    options = options or HintOptions()
    if options.speculate not in (SPECULATE_ALWAYS, SPECULATE_STATIC_GATED):
        raise CompilerError(
            f"unknown speculate policy {options.speculate!r} "
            f"(expected {SPECULATE_ALWAYS!r} or {SPECULATE_STATIC_GATED!r})"
        )
    verdicts: Dict[str, str] = {}
    if options.speculate == SPECULATE_STATIC_GATED:
        # Analyse the pristine pre-hint IR once: transforms below rewrite
        # the loops the analysis reasons about.
        from .depanal import analyze_function

        verdicts = {
            header: dep.verdict
            for header, dep in analyze_function(
                func, granule_bytes=options.granule_bytes
            ).items()
        }

    reports: List[HintReport] = []
    # Deeper loops first so outer transforms see settled inner structure.
    pending = list(dict.fromkeys(func.marked_loops))
    while pending:
        cfg = CFG(func)
        loops = find_loops(func, cfg)
        ordered = sorted(
            (h for h in pending if h in loops),
            key=lambda h: -loops[h].depth,
        )
        missing = [h for h in pending if h not in loops]
        for h in missing:
            reports.append(
                HintReport(
                    h, False, reason=REASON_NOT_A_LOOP,
                    detail="marked block is not a loop header",
                )
            )
        if not ordered:
            break
        header = ordered[0]
        pending = [h for h in pending if h != header and h not in missing]
        if verdicts.get(header) == "must-conflict":
            report = HintReport(
                header, False, reason=REASON_STATIC_MUST_CONFLICT,
                detail="static dependence analysis proves a loop-carried "
                "memory conflict; speculation would always squash",
            )
        else:
            report = _annotate_loop(func, cfg, loops[header], options)
        report.static_verdict = verdicts.get(header)
        reports.append(report)
    return reports


def _annotate_loop(
    func: Function, cfg: CFG, loop: Loop, options: HintOptions
) -> HintReport:
    header = loop.header

    if len(loop.latches) != 1:
        return HintReport(
            header, False, reason=REASON_MULTIPLE_LATCHES,
            detail=f"loop has {len(loop.latches)} latches (irreducible iteration "
            "tail, e.g. `continue` in a while loop)",
        )
    latch_name = loop.latches[0]
    latch = func.block(latch_name)

    header_block = func.block(header)
    term = header_block.terminator
    if not isinstance(term, CondBranch):
        return HintReport(
            header, False, reason=REASON_NO_CONDITIONAL_EXIT,
            detail="loop header does not end in a conditional exit",
        )
    if (term.iftrue in loop.blocks) == (term.iffalse in loop.blocks):
        return HintReport(
            header, False, reason=REASON_EXIT_NOT_GUARDED,
            detail="loop header test does not guard the loop exit",
        )
    body_entry = term.iftrue if term.iftrue in loop.blocks else term.iffalse

    liveness = Liveness(func, cfg)

    # Registers defined by the body region (all loop blocks except the
    # header and the latch; the latch's contribution depends on the split).
    region_defs: Set[VReg] = set()
    body_blocks = sorted(loop.blocks - {header, latch_name})
    for name in body_blocks:
        for instr in func.block(name).instrs:
            region_defs.update(instr.defs())

    split = _find_split(func, latch, region_defs, liveness)
    if split is None:
        return HintReport(
            header, False, reason=REASON_BODY_REGISTER_DEPENDENCE,
            detail="body defines a register consumed by the continuation or a "
            "later iteration (register loop-carried dependence in the body)",
        )

    body_size = sum(len(func.block(b).instrs) for b in body_blocks) + split
    if body_size < options.min_body_instrs:
        return HintReport(
            header, False, reason=REASON_BODY_TOO_SMALL,
            detail=f"parallel body would contain {body_size} instruction(s), "
            f"below the minimum of {options.min_body_instrs}",
        )

    region = _transform(func, cfg, loop, header_block, term, body_entry, latch, split)
    return HintReport(
        header, True, region=region,
        body_blocks=body_blocks + [latch.name], split_index=split,
    )


def _find_split(
    func: Function,
    latch: BasicBlock,
    region_defs: Set[VReg],
    liveness: Liveness,
) -> Optional[int]:
    """Largest k such that body = region + latch[:k] is legal, else None.

    Legal means: no register defined in the body is live immediately before
    ``latch.instrs[k]`` (the continuation start).
    """
    # Live sets walking backward through the latch.
    live_after: List[Set[VReg]] = [set() for _ in range(len(latch.instrs) + 1)]
    live = set(liveness.live_out[latch.name])
    if latch.terminator is not None:
        live |= set(latch.terminator.uses())
    live_after[len(latch.instrs)] = set(live)
    for i in range(len(latch.instrs) - 1, -1, -1):
        instr = latch.instrs[i]
        live -= set(instr.defs())
        live |= set(instr.uses())
        live_after[i] = set(live)

    # Continuation starts before latch.instrs[k]; the live set there is
    # live_after[k].  Prefer the largest legal k (maximal body).
    for k in range(len(latch.instrs), -1, -1):
        defs_k = set(region_defs)
        for instr in latch.instrs[:k]:
            defs_k |= set(instr.defs())
        if not (defs_k & live_after[k]):
            return k
    return None


def _transform(
    func: Function,
    cfg: CFG,
    loop: Loop,
    header_block: BasicBlock,
    term: CondBranch,
    body_entry: str,
    latch: BasicBlock,
    split: int,
) -> str:
    """Rewire the loop with detach/reattach/sync blocks; returns region ID."""
    # 1. Continuation block K: the tail of the latch plus its back edge.
    cont = func.new_block("frog.cont")
    cont.instrs = latch.instrs[split:]
    cont.terminator = latch.terminator
    region = cont.name

    # 2. Reattach block: body -> continuation boundary.
    reattach = func.new_block("frog.reattach")
    reattach.instrs = [IRInstr(IROp.REATTACH, region=region)]
    reattach.terminator = Branch(cont.name)

    latch.instrs = latch.instrs[:split]
    latch.terminator = Branch(reattach.name)

    # 3. Detach block on the header -> body edge.
    detach = func.new_block("frog.detach")
    detach.instrs = [IRInstr(IROp.DETACH, region=region)]
    detach.terminator = Branch(body_entry)
    if term.iftrue == body_entry:
        term.iftrue = detach.name
    else:
        term.iffalse = detach.name

    # 4. Sync blocks on every loop exit edge (paper: "annotates every loop
    #    exit edge with a sync", enabling early exits via `break`).
    for from_name, to_name in loop.exits:
        block = func.block(from_name)
        sync = func.new_block("frog.sync")
        sync.instrs = [IRInstr(IROp.SYNC, region=region)]
        sync.terminator = Branch(to_name)
        _retarget(block, to_name, sync.name)

    # 5. Layout: make latch -> reattach -> continuation and
    #    header -> detach -> body fall-throughs, so the dynamic instruction
    #    stream is identical to the unhinted program (hints are the only
    #    additions; codegen elides the fall-through branches).
    for block in (reattach, cont):
        func.blocks.remove(block)
    latch_index = func.blocks.index(latch)
    func.blocks.insert(latch_index + 1, reattach)
    func.blocks.insert(latch_index + 2, cont)
    func.blocks.remove(detach)
    entry_index = func.blocks.index(func.block(body_entry))
    func.blocks.insert(entry_index, detach)

    func.validate()
    return region


def _retarget(block: BasicBlock, old: str, new: str) -> None:
    term = block.terminator
    if isinstance(term, Branch):
        if term.target == old:
            term.target = new
    elif isinstance(term, CondBranch):
        if term.iftrue == old:
            term.iftrue = new
        if term.iffalse == old:
            term.iffalse = new
