"""Static loop-carried memory-dependence analysis over Frog IR.

The hint-insertion pass deliberately ignores through-memory loop-carried
dependencies — the microarchitecture's conflict detector discovers them at
run time by squashing threadlets.  This module recovers that information
*statically*, per ``#pragma loopfrog`` loop, so tooling (``repro lint``)
and policy (``HintOptions.speculate = "static-gated"``) can reason about
squashes before a single cycle is simulated.

The analysis is a SCEV-lite two-stage pipeline:

1. **Address derivation.**  For every load/store inside the loop, derive a
   symbolic affine address expression over the *iteration number* ``n``::

       addr = Σ coeff·sym  +  iter_coeff·n  +  const

   Symbols are loop-invariant registers (typically pointer parameters) and
   the start-of-loop values of recognised basic induction variables
   (pattern ``i = i + C`` — directly, or via the unfused lowering idiom
   ``t = add i, C; mov i, t`` — in a block that executes exactly once per
   iteration).  Values flow through ``mov``/``add``/``sub`` and
   constant ``mul``/``shl``; anything else (loaded values, masked hashes,
   inner-loop induction variables) is ``unknown`` — the lattice bottom.

2. **Dependence testing.**  Only flow (RAW) dependencies at distance
   ``d >= 1`` matter: the conflict detector squashes exactly when an older
   threadlet's *write* hits a younger threadlet's speculative *read* set
   (WAW/WAR are renamed away by SSB versioning, and a same-iteration RAW
   stays inside one threadlet).  Each (store, load) pair is classified by:

   * **base disambiguation** — if the address difference keeps a nonzero
     coefficient on a pointer-typed *parameter*, the accesses use distinct
     base objects, which the Frog workload ABI treats as ``restrict``:
     no conflict.  A nonzero coefficient on any other symbol is an
     unresolved offset: ``may-conflict``.
   * **zero/strong SIV** — equal iteration coefficients ``A`` leave
     ``delta(d) = A·d + c``; the pair conflicts iff some ``d >= 1`` puts
     the two byte intervals in a shared conflict-detector granule.  When
     the shared base is provably granule-aligned (pointer parameters are
     assumed naturally aligned and every other coefficient is a granule
     multiple) the granule test is exact; otherwise the overlap window is
     padded by ``granule - 1`` bytes on each side, which is conservative
     for *independent* verdicts.
   * **GCD test** — different iteration coefficients: conflict unless no
     reachable residue lands in the padded window.

A loop is ``independent`` when no pair can conflict, ``must-conflict``
when some always-executed pair provably overlaps byte-exactly at a
derivable distance, and ``may-conflict`` otherwise.  ``independent`` is
the *sound* claim the validation harness checks against observed squashes
(``repro lint --validate``); the other two are best-effort precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .cfg import CFG
from .ir import Const, Function, IRInstr, IROp, VReg
from .loops import Loop, find_loops

VERDICT_INDEPENDENT = "independent"
VERDICT_MAY_CONFLICT = "may-conflict"
VERDICT_MUST_CONFLICT = "must-conflict"
VERDICTS = (VERDICT_INDEPENDENT, VERDICT_MAY_CONFLICT, VERDICT_MUST_CONFLICT)

# Matches LoopFrogConfig.granule_bytes for the paper's default machine.
DEFAULT_GRANULE_BYTES = 4

_RESOLVE_DEPTH_LIMIT = 32


# ---------------------------------------------------------------------------
# The affine address lattice
# ---------------------------------------------------------------------------


@dataclass
class AffineAddr:
    """``Σ coeff·sym + iter_coeff·n + const`` over the iteration number n.

    ``syms`` maps symbol names (loop-invariant register names, or
    ``iv:<reg>`` for an induction variable's start-of-loop value) to their
    integer coefficients.  ``None`` stands for the lattice bottom
    (*unknown*) everywhere in this module.
    """

    syms: Dict[str, int] = field(default_factory=dict)
    iter_coeff: int = 0
    const: int = 0

    def add(self, other: "AffineAddr") -> "AffineAddr":
        syms = dict(self.syms)
        for name, coeff in other.syms.items():
            syms[name] = syms.get(name, 0) + coeff
        return AffineAddr(
            {n: c for n, c in syms.items() if c},
            self.iter_coeff + other.iter_coeff,
            self.const + other.const,
        )

    def sub(self, other: "AffineAddr") -> "AffineAddr":
        return self.add(other.scale(-1))

    def scale(self, factor: int) -> "AffineAddr":
        if factor == 0:
            return AffineAddr()
        return AffineAddr(
            {n: c * factor for n, c in self.syms.items()},
            self.iter_coeff * factor,
            self.const * factor,
        )

    def __str__(self) -> str:
        parts = [f"{c}*{n}" for n, c in sorted(self.syms.items())]
        if self.iter_coeff:
            parts.append(f"{self.iter_coeff}*n")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


# ---------------------------------------------------------------------------
# Analysis results
# ---------------------------------------------------------------------------


@dataclass
class AccessSite:
    """One load or store inside the analysed loop."""

    kind: str                      # "load" | "store"
    block: str
    index: int                     # instruction index within the block
    size: int                      # access width in bytes
    line: int                      # source line (0 = unknown)
    text: str                      # printable form of the instruction
    always: bool                   # executes exactly once per iteration
    addr: Optional[AffineAddr]     # None = unknown address

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "block": self.block,
            "line": self.line,
            "size": self.size,
            "text": self.text,
            "always": self.always,
            "address": str(self.addr) if self.addr is not None else None,
        }


@dataclass
class DependenceWitness:
    """The offending (store, load) pair behind a non-independent verdict."""

    store: AccessSite
    load: AccessSite
    certain: bool                  # proven overlap vs. merely possible
    distance: Optional[int]        # minimum dependence distance, if known
    reason: str                    # stable cause identifier

    def to_dict(self) -> dict:
        return {
            "store": self.store.to_dict(),
            "load": self.load.to_dict(),
            "certain": self.certain,
            "distance": self.distance,
            "reason": self.reason,
        }


@dataclass
class LoopDependence:
    """Per-loop outcome of the static dependence analysis."""

    header: str
    line: int
    verdict: str
    accesses: List[AccessSite]
    witness: Optional[DependenceWitness]
    min_distance: Optional[int]
    granule_bytes: int

    def describe(self) -> str:
        """One human-readable diagnostic line (without the header)."""
        if self.verdict == VERDICT_INDEPENDENT:
            return (
                f"independent — {len(self.accesses)} memory accesses, "
                "no loop-carried RAW possible"
            )
        w = self.witness
        dist = f" at distance {w.distance}" if w and w.distance else ""
        pair = ""
        if w is not None:
            pair = (
                f": {w.store.text} (line {w.store.line}) -> "
                f"{w.load.text} (line {w.load.line}) [{w.reason}]"
            )
        return f"{self.verdict}{dist}{pair}"

    def to_dict(self) -> dict:
        return {
            "header": self.header,
            "line": self.line,
            "verdict": self.verdict,
            "min_distance": self.min_distance,
            "granule_bytes": self.granule_bytes,
            "accesses": [a.to_dict() for a in self.accesses],
            "witness": self.witness.to_dict() if self.witness else None,
        }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def analyze_function(
    func: Function,
    granule_bytes: int = DEFAULT_GRANULE_BYTES,
    headers: Optional[List[str]] = None,
    cfg: Optional[CFG] = None,
) -> Dict[str, LoopDependence]:
    """Classify the marked loops of ``func`` (must run *before* hint
    insertion — the pass analyses the natural-loop structure the hints
    will transform).  Returns ``{header block name: LoopDependence}``;
    marked headers that are not loop headers are skipped (hint insertion
    reports those separately)."""
    cfg = cfg or CFG(func)
    loops = find_loops(func, cfg)
    if headers is None:
        headers = list(dict.fromkeys(func.marked_loops))
    ptr_params = {
        reg.name for reg, typ in func.params if getattr(typ, "is_ptr", False)
    }
    results: Dict[str, LoopDependence] = {}
    for header in headers:
        loop = loops.get(header)
        if loop is None:
            continue
        analyzer = _LoopAnalyzer(
            func, cfg, loops, loop, granule_bytes, ptr_params
        )
        results[header] = analyzer.analyze()
    return results


# ---------------------------------------------------------------------------
# Per-loop machinery
# ---------------------------------------------------------------------------


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _granules_overlap(s0: int, ssize: int, delta: int, lsize: int,
                      g: int) -> bool:
    """Exact granule-intersection test for a store at byte offset ``s0``
    (mod granule) and a load ``delta`` bytes later."""
    a0, a1 = s0 // g, (s0 + ssize - 1) // g
    b0, b1 = (s0 + delta) // g, (s0 + delta + lsize - 1) // g
    return b0 <= a1 and a0 <= b1


class _LoopAnalyzer:
    def __init__(
        self,
        func: Function,
        cfg: CFG,
        loops: Dict[str, Loop],
        loop: Loop,
        granule_bytes: int,
        ptr_params: Set[str],
    ):
        self.func = func
        self.cfg = cfg
        self.loop = loop
        self.granule = granule_bytes
        self.ptr_params = ptr_params

        # Blocks belonging to a loop nested inside this one execute an
        # unknown number of times per iteration; exclude them from "once
        # per iteration" reasoning.
        nested: Set[str] = set()
        for other in loops.values():
            if other.header != loop.header and other.blocks < loop.blocks:
                nested |= other.blocks
        self.private: Set[str] = loop.blocks - nested

        # Blocks that execute exactly once per completed iteration.
        self.always: Set[str] = {
            name for name in self.private
            if all(cfg.dominates(name, latch) for latch in loop.latches)
        }

        # All in-loop definitions, per register.
        self.defs: Dict[VReg, List[Tuple[str, int, IRInstr]]] = {}
        for name in loop.blocks:
            for idx, instr in enumerate(func.block(name).instrs):
                for reg in instr.defs():
                    self.defs.setdefault(reg, []).append((name, idx, instr))

        # Intra-iteration CFG: loop edges minus those re-entering the
        # header (the back edges plus any other in-loop edge to it).
        self.iter_succs: Dict[str, List[str]] = {
            name: [
                s for s in cfg.succs[name]
                if s in loop.blocks and s != loop.header
            ]
            for name in loop.blocks
        }
        self._reach_memo: Dict[str, Set[str]] = {}
        self._iter_idom = self._iteration_dominators()

        self.ivs = self._find_induction_variables()

    # -- iteration-subgraph facts -------------------------------------------

    def _reaches(self, src: str, dst: str) -> bool:
        """True if an intra-iteration path of length >= 1 leads src -> dst."""
        if src not in self._reach_memo:
            seen: Set[str] = set()
            stack = list(self.iter_succs.get(src, ()))
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.iter_succs.get(node, ()))
            self._reach_memo[src] = seen
        return dst in self._reach_memo[src]

    def _iteration_dominators(self) -> Dict[str, Optional[str]]:
        """Immediate dominators of the intra-iteration subgraph, rooted at
        the loop header (same iterative scheme as :class:`CFG`)."""
        header = self.loop.header
        preds: Dict[str, List[str]] = {name: [] for name in self.loop.blocks}
        for name, succs in self.iter_succs.items():
            for s in succs:
                preds[s].append(name)
        # Reverse postorder of the subgraph.
        seen = {header}
        order: List[str] = []
        stack: List[Tuple[str, object]] = [(header, iter(self.iter_succs[header]))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:  # type: ignore[attr-defined]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self.iter_succs[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        index = {name: i for i, name in enumerate(order)}

        idom: Dict[str, Optional[str]] = {header: header}
        changed = True
        while changed:
            changed = False
            for node in order:
                if node == header:
                    continue
                processed = [p for p in preds[node] if p in idom and p in index]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    a, b = p, new_idom
                    while a != b:
                        while index[a] > index[b]:
                            a = idom[a]  # type: ignore[assignment]
                        while index[b] > index[a]:
                            b = idom[b]  # type: ignore[assignment]
                    new_idom = a
                if idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True
        idom[header] = None
        return idom

    def _iter_dominates(self, a: str, b: str) -> bool:
        """True if every intra-iteration path header -> b passes a."""
        if a == b:
            return True
        node = self._iter_idom.get(b)
        while node is not None:
            if node == a:
                return True
            node = self._iter_idom.get(node)
        return False

    # -- induction variables -------------------------------------------------

    def _match_increment(
        self, reg: VReg, instr: IRInstr
    ) -> Optional[int]:
        """Stride when ``instr`` computes ``reg +/- constant``, else None."""
        ops = instr.operands
        if instr.op is IROp.ADD:
            if ops == (reg,) or len(ops) != 2:
                return None
            if ops[0] == reg and isinstance(ops[1], Const):
                return int(ops[1].value)
            if ops[1] == reg and isinstance(ops[0], Const):
                return int(ops[0].value)
        elif instr.op is IROp.SUB:
            if len(ops) == 2 and ops[0] == reg and isinstance(ops[1], Const):
                return -int(ops[1].value)
        return None

    def _find_induction_variables(self) -> Dict[str, Tuple[int, str]]:
        """``{reg name: (stride, increment block)}`` for basic IVs.

        Recognises both the post-optimisation form ``i = add i, C`` and the
        raw lowering idiom ``t = add i, C; mov i, t``.  The increment must
        sit in a block that executes exactly once per iteration.
        """
        ivs: Dict[str, Tuple[int, str]] = {}
        for reg, def_sites in self.defs.items():
            if reg.cls != "int" or len(def_sites) != 1:
                continue
            block, idx, instr = def_sites[0]
            if block not in self.always:
                continue
            stride = self._match_increment(reg, instr)
            if stride is None and instr.op is IROp.MOV:
                (src,) = instr.operands
                if isinstance(src, VReg):
                    src_defs = self.defs.get(src, [])
                    if (
                        len(src_defs) == 1
                        and src_defs[0][0] == block
                        and src_defs[0][1] < idx
                    ):
                        stride = self._match_increment(reg, src_defs[0][2])
            if stride is not None:
                ivs[reg.name] = (stride, block)
        return ivs

    # -- symbolic evaluation --------------------------------------------------

    def _resolve_value(self, value, block: str, idx: int,
                       depth: int) -> Optional[AffineAddr]:
        if isinstance(value, Const):
            if isinstance(value.value, float):
                return None
            return AffineAddr(const=int(value.value))
        return self._resolve_reg(value, block, idx, depth)

    def _resolve_reg(self, reg: VReg, block: str, idx: int,
                     depth: int) -> Optional[AffineAddr]:
        """Affine value of ``reg`` just before ``block.instrs[idx]``."""
        if depth > _RESOLVE_DEPTH_LIMIT or reg.cls != "int":
            return None
        instrs = self.func.block(block).instrs
        for j in range(idx - 1, -1, -1):
            if reg in instrs[j].defs():
                return self._eval_instr(instrs[j], block, j, depth + 1)

        # No definition earlier in this block: value at block entry.
        if reg not in self.defs:
            return AffineAddr(syms={reg.name: 1})  # loop-invariant

        if reg.name in self.ivs:
            stride, inc_block = self.ivs[reg.name]
            start = AffineAddr(syms={f"iv:{reg.name}": 1}, iter_coeff=stride)
            if not self._reaches(inc_block, block):
                return start                       # pre-increment value
            if self._iter_dominates(inc_block, block):
                return start.add(AffineAddr(const=stride))  # post-increment
            return None

        def_sites = self.defs[reg]
        if len(def_sites) == 1:
            dblock, didx, dinstr = def_sites[0]
            if (
                dblock != block
                and dblock in self.private
                and self._iter_dominates(dblock, block)
            ):
                return self._eval_instr(dinstr, dblock, didx, depth + 1)
        return None

    def _eval_instr(self, instr: IRInstr, block: str, idx: int,
                    depth: int) -> Optional[AffineAddr]:
        if depth > _RESOLVE_DEPTH_LIMIT:
            return None
        op = instr.op
        resolve = lambda v: self._resolve_value(v, block, idx, depth + 1)  # noqa: E731
        if op is IROp.MOV:
            return resolve(instr.operands[0])
        if op in (IROp.ADD, IROp.SUB):
            a = resolve(instr.operands[0])
            b = resolve(instr.operands[1])
            if a is None or b is None:
                return None
            return a.add(b) if op is IROp.ADD else a.sub(b)
        if op is IROp.MUL:
            left, right = instr.operands
            if isinstance(right, Const) and not isinstance(right.value, float):
                a = resolve(left)
                return a.scale(int(right.value)) if a is not None else None
            if isinstance(left, Const) and not isinstance(left.value, float):
                b = resolve(right)
                return b.scale(int(left.value)) if b is not None else None
            return None
        if op is IROp.SHL:
            left, right = instr.operands
            if isinstance(right, Const) and not isinstance(right.value, float):
                shift = int(right.value)
                if 0 <= shift < 48:
                    a = resolve(left)
                    return a.scale(1 << shift) if a is not None else None
            return None
        return None

    # -- access collection ----------------------------------------------------

    def _collect_accesses(self) -> List[AccessSite]:
        accesses: List[AccessSite] = []
        for name in sorted(self.loop.blocks):
            for idx, instr in enumerate(self.func.block(name).instrs):
                if not instr.is_memory:
                    continue
                base = (
                    instr.operands[0] if instr.op is IROp.LOAD
                    else instr.operands[1]
                )
                addr = self._resolve_reg(base, name, idx, 0)
                if addr is not None and instr.offset:
                    addr = addr.add(AffineAddr(const=instr.offset))
                accesses.append(AccessSite(
                    kind="load" if instr.op is IROp.LOAD else "store",
                    block=name,
                    index=idx,
                    size=instr.size,
                    line=instr.line,
                    text=str(instr),
                    always=name in self.always,
                    addr=addr,
                ))
        return accesses

    # -- dependence testing ---------------------------------------------------

    def _test_pair(
        self, store: AccessSite, load: AccessSite
    ) -> Optional[Tuple[bool, Optional[int], str]]:
        """``None`` if the pair cannot conflict across iterations, else
        ``(certain, min_distance, reason)``."""
        if store.addr is None or load.addr is None:
            return (False, None, "non-affine-address")

        diff = load.addr.sub(store.addr)
        if diff.syms:
            if any(name in self.ptr_params for name in diff.syms):
                return None  # distinct restrict base objects
            return (False, None, "symbolic-offset")

        g = self.granule
        a_s, a_l = store.addr.iter_coeff, load.addr.iter_coeff
        c = diff.const
        pad_lo = -(load.size + g - 2)
        pad_hi = store.size + g - 2
        byte_lo = -(load.size - 1)
        byte_hi = store.size - 1

        if a_s != a_l:
            # Weak SIV / mismatched strides: delta = (a_l - a_s)*n + a_l*d + c
            # over free n >= 0, d >= 1.  Keep only the GCD residue argument.
            from math import gcd

            step = gcd(abs(a_l - a_s), abs(a_l))
            if step:
                reachable = any(
                    (x - c) % step == 0 for x in range(pad_lo, pad_hi + 1)
                )
                if not reachable:
                    return None
            return (False, None, "stride-mismatch")

        a = a_s
        aligned_exact = (
            a % g == 0
            and all(
                coeff % g == 0 or name in self.ptr_params
                for name, coeff in store.addr.syms.items()
            )
        )
        s0 = store.addr.const % g if aligned_exact else 0

        if a == 0:
            # Loop-invariant address recurrence: every iteration pair.
            if aligned_exact:
                hit = _granules_overlap(s0, store.size, c, load.size, g)
            else:
                hit = pad_lo <= c <= pad_hi
            if not hit:
                return None
            certain = (
                byte_lo <= c <= byte_hi and store.always and load.always
            )
            return (certain, 1, "loop-invariant-address")

        if a > 0:
            d_lo = _ceil_div(pad_lo - c, a)
            d_hi = (pad_hi - c) // a
        else:
            d_lo = _ceil_div(pad_hi - c, a)
            d_hi = (pad_lo - c) // a
        d_lo = max(d_lo, 1)
        first_conflict: Optional[int] = None
        certain_at: Optional[int] = None
        for d in range(d_lo, d_hi + 1):
            delta = a * d + c
            if aligned_exact and not _granules_overlap(
                s0, store.size, delta, load.size, g
            ):
                continue
            if first_conflict is None:
                first_conflict = d
            if (
                byte_lo <= delta <= byte_hi
                and store.always
                and load.always
            ):
                certain_at = d
                break
        if first_conflict is None:
            return None
        if certain_at is not None:
            return (True, first_conflict, "exact-overlap")
        return (False, first_conflict, "granule-overlap")

    # -- top level ------------------------------------------------------------

    def analyze(self) -> LoopDependence:
        accesses = self._collect_accesses()
        line = getattr(self.func, "loop_lines", {}).get(self.loop.header, 0)

        stores = [a for a in accesses if a.kind == "store"]
        loads = [a for a in accesses if a.kind == "load"]

        witness: Optional[DependenceWitness] = None
        must_witness: Optional[DependenceWitness] = None
        distances: List[int] = []
        for store in stores:
            for load in loads:
                outcome = self._test_pair(store, load)
                if outcome is None:
                    continue
                certain, distance, reason = outcome
                w = DependenceWitness(store, load, certain, distance, reason)
                if distance is not None:
                    distances.append(distance)
                if certain:
                    if (
                        must_witness is None
                        or (must_witness.distance or 0) > (distance or 0)
                    ):
                        must_witness = w
                elif witness is None or (
                    witness.distance is None and distance is not None
                ):
                    witness = w

        if must_witness is not None:
            verdict = VERDICT_MUST_CONFLICT
            chosen: Optional[DependenceWitness] = must_witness
        elif witness is not None:
            verdict = VERDICT_MAY_CONFLICT
            chosen = witness
        else:
            verdict = VERDICT_INDEPENDENT
            chosen = None

        return LoopDependence(
            header=self.loop.header,
            line=line,
            verdict=verdict,
            accesses=accesses,
            witness=chosen,
            min_distance=min(distances) if distances else None,
            granule_bytes=self.granule,
        )
