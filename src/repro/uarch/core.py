"""The approximate-cycle out-of-order core engine.

One engine serves both the baseline and the LoopFrog configurations: with
``LoopFrogConfig.enabled == False`` hints are treated as nops (the paper's
backwards-compatibility guarantee) and the machine is a conventional wide
OoO core; with it enabled, ``detach`` spawns speculative threadlets whose
memory traffic flows through the SSB and conflict detector.

Model structure (see DESIGN.md "Timing-model fidelity notes"):

* **Functional execution happens at fetch.**  Each threadlet's register
  state advances as instructions are fetched along its (locally correct)
  path; speculative threadlets read through the SSB's versioning logic, so
  they really do consume stale data when they out-run an older threadlet's
  stores — which the conflict detector later catches and repairs by
  squashing, exactly as in section 4.2.
* **Timing is layered on top**: fetched instructions flow through dispatch
  (ROB/IQ/LSQ allocation, renaming), issue (operand readiness, FU ports,
  cache latencies) and in-order per-threadlet commit.  Branch mispredicts
  stall the fetch of the offending threadlet until the branch resolves,
  charging a variable, data-dependent penalty; other threadlets keep
  fetching (the paper's "cutting control dependencies").
* **Two-level commit**: instructions commit to their threadlet; the oldest
  threadlet is architectural and its commits are the program's. When it
  finishes its epoch, the successor becomes architectural and its SSB slice
  is merged (section 4.1.4).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ExecutionError, SimulationError
from ..isa.instructions import (
    OPCLASS_ORDER,
    Instruction,
    OpClass,
    Opcode,
)
from ..obs.metrics import COUNTER, GAUGE, HISTOGRAM, MetricSpec, register
from ..obs.tracing import current_tracer
from ..isa.program import Program
from ..isa.registers import initial_register_file
from .branch_pred import FrontEndPredictor
from .caches import MemoryHierarchy
from .config import MachineConfig
from .conflict import ConflictDetector
from .executor import DISPATCH as _EXEC_DISPATCH
from .memory_state import SparseMemory
from .packing import IterationPacker
from .ssb import SpeculativeStateBuffer
from .statistics import SimStats
from .threadlet import Threadlet, ThreadletState

# Version of the engine's *timing semantics*.  The persistent result store
# (repro.results) keys cached simulation results on this value: bump it on
# ANY change that can alter cycle counts or statistics, so stale results
# from older engines are invalidated across sessions.  Pure speedups that
# keep outputs bit-identical (like the hot-path work in this module) must
# NOT bump it — that is what keeps warm re-runs instant across versions.
ENGINE_SCHEMA_VERSION = 1


# Shared default for PipelineInstr.mem_dep_writers: it is only ever
# iterated (dispatch) or replaced wholesale (fetch of a load), never
# mutated in place, so all non-load instructions can share one tuple.
_NO_WRITERS: Tuple["PipelineInstr", ...] = ()


class PipelineInstr:
    """One dynamic instruction in flight."""

    __slots__ = (
        "seq", "slot", "pc", "instr", "op_class", "op_index", "consumers",
        "num_pending", "dispatched", "issued", "ready_cycle", "committed",
        "squashed", "mem_addr", "mem_size", "taken", "mispredicted",
        "dest_is_fp", "mem_dep_writers", "is_load", "is_store",
    )

    def __init__(self, seq: int, slot: int, pc: int, instr: Instruction):
        self.seq = seq
        self.slot = slot
        self.pc = pc
        self.instr = instr
        self.op_class = instr.op_class
        self.op_index = instr.op_index
        self.consumers: List["PipelineInstr"] = []
        self.num_pending = 0
        self.dispatched = False
        self.issued = False
        self.ready_cycle: Optional[int] = None
        self.committed = False
        self.squashed = False
        self.mem_addr: Optional[int] = None
        self.mem_size = 0
        self.taken = False
        self.mispredicted = False
        self.dest_is_fp = instr.dest_is_fp
        self.mem_dep_writers = _NO_WRITERS
        self.is_load = instr.is_load
        self.is_store = instr.is_store

    def done(self, cycle: int) -> bool:
        return self.issued and self.ready_cycle is not None and self.ready_cycle <= cycle

    def __repr__(self) -> str:
        return f"PI(seq={self.seq}, slot={self.slot}, pc={self.pc}, {self.instr.opcode.value})"


class _SpecMemView:
    """Memory view for a speculative threadlet: reads via SSB versioning,
    writes into the threadlet's slice.  Records access metadata for the
    engine to pick up after ``execute_one`` returns."""

    __slots__ = ("engine", "threadlet")

    def __init__(self, engine: "Engine", threadlet: Threadlet):
        self.engine = engine
        self.threadlet = threadlet

    def load(self, addr: int, size: int) -> int:
        return self.engine._spec_load(self.threadlet, addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        self.engine._spec_store(self.threadlet, addr, size, value)


class _ArchMemView:
    """Memory view for the architectural threadlet: direct to memory, but
    accesses still update the conflict detector (section 4)."""

    __slots__ = ("engine", "threadlet")

    def __init__(self, engine: "Engine", threadlet: Threadlet):
        self.engine = engine
        self.threadlet = threadlet

    def load(self, addr: int, size: int) -> int:
        return self.engine._arch_load(self.threadlet, addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        self.engine._arch_store(self.threadlet, addr, size, value)


class WindowResult:
    """Outcome of :meth:`Engine.run_window`: the detailed-warmup prefix is
    split out so callers measure only the post-warmup portion."""

    __slots__ = (
        "stats", "warmup_instructions", "warmup_cycles",
        "measured_instructions", "measured_cycles", "finished",
    )

    def __init__(self, stats: SimStats, warmup_instructions: int,
                 warmup_cycles: int, measured_instructions: int,
                 measured_cycles: int, finished: bool):
        self.stats = stats
        self.warmup_instructions = warmup_instructions
        self.warmup_cycles = warmup_cycles
        self.measured_instructions = measured_instructions
        self.measured_cycles = measured_cycles
        self.finished = finished

    @property
    def cpi(self) -> float:
        if self.measured_instructions == 0:
            return 0.0
        return self.measured_cycles / self.measured_instructions


class Engine:
    """Cycle-driven simulation of one core running one program."""

    def __init__(
        self,
        machine: MachineConfig,
        program: Program,
        memory: Optional[SparseMemory] = None,
        initial_regs: Optional[Dict[str, float]] = None,
        warm_caches: bool = True,
        initial_pc: int = 0,
    ):
        machine.validate()
        self.machine = machine
        self.core = machine.core
        self.lf = machine.loopfrog
        self.program = program
        self._instructions = program.instructions
        self._program_len = len(self._instructions)
        self.memory = memory if memory is not None else SparseMemory()
        self.stats = SimStats()
        self.hierarchy = MemoryHierarchy(machine.memory, self.stats)
        if warm_caches:
            self._warm_caches()
        self.predictor = FrontEndPredictor(self.core, self.lf.num_threadlets)
        self.ssb = SpeculativeStateBuffer(self.lf, self.memory)
        self.conflicts = ConflictDetector(
            self.lf.granule_bytes,
            self.lf.num_threadlets,
            use_bloom=self.lf.use_bloom_filters,
            bloom_bits=self.lf.bloom_bits,
            bloom_hashes=self.lf.bloom_hashes,
        )
        self.packer = IterationPacker(self.lf)

        self.threadlets = [
            Threadlet(slot, self.core.fetch_queue_size)
            for slot in range(self.lf.num_threadlets)
        ]
        main = self.threadlets[0]
        regs = initial_register_file()
        if initial_regs:
            regs.update(initial_regs)
        main.activate(epoch=0, regs=regs, pc=initial_pc, rename={},
                      region=None, region_label=None)
        main.is_arch = True
        self.order: List[Threadlet] = [main]

        self.cycle = 0
        self.seq = 0
        self.finished = False

        # Shared back-end occupancy.
        self.rob_used = 0
        self.iq_used = 0
        self.lq_used = 0
        self.sq_used = 0
        self.int_regs_used = 0
        self.fp_regs_used = 0

        self.ready: List[Tuple[int, PipelineInstr]] = []   # issueable heap
        self.completions: List[Tuple[int, int, PipelineInstr]] = []
        # Issue-path FU tables indexed by OpClass position (see OPCLASS_ORDER):
        # list indexing avoids enum hashing on every issued instruction.
        self._fu_latency_by_index = [
            self.core.fu_latency.get(cls, 1) for cls in OPCLASS_ORDER
        ]
        self._fu_ports_template = [
            self.core.fu_ports.get(cls, 8) for cls in OPCLASS_ORDER
        ]
        # Cached per-access scratch set by _spec_load/_spec_store.
        self._last_writers: List[PipelineInstr] = []
        self._last_forwarded = False
        self._arch_commit_gate = 0  # conflict-check drain before commit
        # Tracing is resolved once at construction: the per-epoch emit
        # sites test one attribute against None, and the default (tracing
        # disabled) leaves timing and statistics bit-identical.
        self._tracer = current_tracer()

    def _warm_caches(self) -> None:
        """Pre-warm the L2 with the workload's initialised data and the L1I
        with the program text, modelling a benchmark past its warmup phase
        (the paper warms 50M instructions per SimPoint, section 6.1).
        Untouched regions — e.g. the huge sparse spans of miss-bound
        kernels — stay cold and pay full memory latency."""
        line = self.machine.memory.line_size
        for addr in self.memory.written_addresses():
            self.hierarchy.l2.insert(addr // line)
        for pc in range(len(self.program)):
            self.hierarchy.l1i.insert((pc * 4) // line)
            self.hierarchy.l2.insert((pc * 4) // line)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, max_cycles: int = 50_000_000) -> SimStats:
        """Simulate until the program halts; returns the statistics."""
        tracer = self._tracer
        if tracer is None:
            self._run_loop(max_cycles)
        else:
            with tracer.span(
                "simulate",
                program=self.program.name,
                loopfrog=self.lf.enabled,
            ) as span:
                self._run_loop(max_cycles)
                span.attrs["cycles"] = self.cycle
                span.attrs["arch_instructions"] = self.stats.arch_instructions
        self.stats.cycles = self.cycle
        return self.stats

    def apply_warmup(self, warmup) -> None:
        """Replay recorded functional history into the timing structures.

        ``warmup`` is a :class:`repro.sampling.fastforward.WarmupState`
        (duck-typed: anything with ``mem_addresses``, ``cond_branches``,
        ``branch_targets``).  Data lines are replayed into L1D+L2 in
        last-touch order, so LRU replacement leaves each set holding its
        most recently used lines — reconstructing the cache contents of a
        continuous run at this point.  Branch targets fill the BTB and
        conditional outcomes train the TAGE tables through the normal
        predict/update path.  The program text is warmed like
        steady-state fetch leaves it.  Windows use this INSTEAD of the
        constructor's ``warm_caches`` whole-working-set warming (which
        models program *entry*, not a mid-program cut).  Must be called
        before the first :meth:`step`.
        """
        line = self.machine.memory.line_size
        for addr in warmup.mem_addresses:
            line_addr = addr // line
            self.hierarchy.l2.insert(line_addr)
            self.hierarchy.l1d.insert(line_addr)
        for pc in range(len(self.program)):
            text_line = (pc * 4) // line
            self.hierarchy.l1i.insert(text_line)
            self.hierarchy.l2.insert(text_line)
        for pc, target in warmup.branch_targets:
            self.predictor.btb.insert(pc, target)
        tage = self.predictor.tage
        for pc, taken in warmup.cond_branches:
            tage.update(pc, taken, tage.predict(pc, 0), 0)

    def run_window(
        self,
        n_instructions: int,
        warmup_instructions: int = 0,
        max_cycles: int = 50_000_000,
    ) -> WindowResult:
        """Simulate ``warmup_instructions + n_instructions`` *sequential*
        instructions (or until the program halts) and report cycles for
        the post-warmup portion only.

        Progress is counted in sequential-stream instructions —
        ``arch_instructions + spec_committed_instructions`` — because
        successfully speculated loop iterations retire against the
        speculative threadlet, not the architectural one.  That is the
        same stream the fast-forward profiler counts, so window
        boundaries line up with interval boundaries on both baseline and
        LoopFrog machines.

        The exact :meth:`run` path is untouched: sampled windows go
        through this entry point exclusively.  Commit can retire several
        instructions per cycle — and a threadlet merge credits a whole
        speculated slice at once — so boundaries land on the first cycle
        *at or past* each target.  The measurement target is re-anchored
        to the *actual* warm-boundary overshoot (a merge during warmup
        can jump far past the nominal cut), so the measured portion is
        always ~``n_instructions`` long rather than silently empty.
        """
        stats = self.stats
        target_warm = warmup_instructions
        target_total = warmup_instructions + n_instructions
        warm_cycle = 0
        warm_instructions = 0
        warm_pending = warmup_instructions > 0
        progress = 0
        while not self.finished:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.program.name}: window exceeded {max_cycles} "
                    f"cycles (arch pc={self.order[0].pc})"
                )
            self.step()
            progress = (
                stats.arch_instructions + stats.spec_committed_instructions
            )
            if warm_pending and progress >= target_warm:
                warm_cycle = self.cycle
                warm_instructions = progress
                warm_pending = False
                target_total = progress + n_instructions
            if not warm_pending and progress >= target_total:
                break
        stats.cycles = self.cycle
        return WindowResult(
            stats=stats,
            warmup_instructions=warm_instructions,
            warmup_cycles=warm_cycle,
            measured_instructions=progress - warm_instructions,
            measured_cycles=self.cycle - warm_cycle,
            finished=self.finished,
        )

    def _run_loop(self, max_cycles: int) -> None:
        while not self.finished:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {max_cycles} cycles "
                    f"(arch pc={self.order[0].pc})"
                )
            self.step()

    def step(self) -> None:
        """Advance the machine by one cycle."""
        self.cycle += 1
        self._process_completions()
        self._commit()
        if self.finished:
            return
        self._threadlet_commit()
        self._issue()
        self._dispatch()
        self._fetch()
        self._per_cycle_stats()

    # ------------------------------------------------------------------
    # Memory views (functional access at fetch)
    # ------------------------------------------------------------------

    def _older_slots(self, threadlet: Threadlet) -> List[int]:
        idx = self.order.index(threadlet)
        return [t.slot for t in reversed(self.order[:idx])]

    def _younger_slots(self, threadlet: Threadlet) -> List[int]:
        idx = self.order.index(threadlet)
        return [t.slot for t in self.order[idx + 1 :]]

    def _spec_load(self, t: Threadlet, addr: int, size: int) -> int:
        result = self.ssb.read(addr, size, self._older_slots(t), t.slot)
        self.conflicts.on_speculative_read(t.slot, addr, size)
        self.stats.ssb_reads += 1
        if result.forwarded_from:
            self.stats.ssb_forwards += 1
        self._last_writers = list(result.writers)
        return result.value

    def _spec_store(self, t: Threadlet, addr: int, size: int, value: int) -> None:
        pi_writer = self._current_pi  # the instruction being fetched
        accepted = self.ssb.write(t.slot, addr, size, value, pi_writer)
        if not accepted:
            raise AssertionError("SSB overflow must be pre-checked in fetch")
        self.stats.ssb_writes += 1
        g = self.lf.granule_bytes
        first_granule = addr // g
        last_granule = (addr + size - 1) // g
        # Sub-granule stores read-modify-write the whole granule: the read
        # that fills the unwritten bytes joins the read set and can cause
        # false-sharing conflicts (section 4.1.1).  This is what makes
        # large granules hurt in figure 10.
        if addr % g or size % g:
            end = addr + size
            for granule in range(first_granule, last_granule + 1):
                g_start = granule * g
                if addr > g_start or end < g_start + g:
                    self.conflicts.on_speculative_read(t.slot, g_start, g)
        victim = self.conflicts.on_write(
            t.slot, addr, size, self._younger_slots(t)
        )
        if victim is not None:
            self._squash_restart(self._by_slot(victim), reason="conflict")
        store_writers = t.store_writers
        for granule in range(first_granule, last_granule + 1):
            store_writers[granule] = pi_writer

    def _arch_load(self, t: Threadlet, addr: int, size: int) -> int:
        # Architectural reads come straight from memory; no RD-set update is
        # needed (nothing older can write), see section 4.2.
        return self.memory.load(addr, size)

    def _arch_store(self, t: Threadlet, addr: int, size: int, value: int) -> None:
        self.memory.store(addr, size, value)
        victim = self.conflicts.on_write(
            t.slot, addr, size, self._younger_slots(t)
        )
        if victim is not None:
            self._squash_restart(self._by_slot(victim), reason="conflict")
        g = self.lf.granule_bytes
        pi_writer = self._current_pi
        store_writers = t.store_writers
        for granule in range(addr // g, (addr + size - 1) // g + 1):
            store_writers[granule] = pi_writer

    def _by_slot(self, slot: int) -> Threadlet:
        return self.threadlets[slot]

    # ------------------------------------------------------------------
    # Fetch (functional execution + front-end timing)
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        budget = self.core.fetch_width
        running = ThreadletState.RUNNING
        for t in list(self.order):
            if budget <= 0:
                break
            # Only RUNNING threadlets fetch (HALTED/FREE/faulted ones do not).
            if t.state is not running:
                continue
            budget = self._fetch_threadlet(t, budget)

    def _fetch_threadlet(self, t: Threadlet, budget: int) -> int:
        cycle = self.cycle
        program = self._instructions
        program_len = self._program_len
        hierarchy = self.hierarchy
        running = ThreadletState.RUNNING
        fetch_queue = t.fetch_queue
        queue_size = t.fetch_queue_size
        lf_enabled = self.lf.enabled
        while budget > 0:
            if t.fetch_done or t.state is not running:
                break
            if len(fetch_queue) >= queue_size:
                break
            # Mispredicted-branch gate: wait for resolution + redirect.
            branch = t.fetch_stall_branch
            if branch is not None:
                if branch.squashed:
                    t.fetch_stall_branch = None
                elif branch.done(cycle):
                    t.fetch_stall_branch = None
                    t.fetch_stall_until = (
                        branch.ready_cycle + self.core.mispredict_penalty
                    )
                else:
                    break
            if t.fetch_stall_until > cycle:
                break
            if not 0 <= t.pc < program_len:
                t.faulted = f"pc {t.pc} out of range"
                t.fetch_done = True
                break

            # Instruction cache: a hit (latency 1) does not stall fetch.
            ready = hierarchy.access_instruction(t.pc, cycle)
            if ready > cycle + 1:
                t.fetch_stall_until = ready
                break

            instr = program[t.pc]

            # SSB capacity pre-check for speculative stores: a full slice
            # stalls the threadlet (writes can never be dropped, 4.1.2).
            if instr.is_store and not t.is_arch and lf_enabled:
                addr = int(t.regs[instr.srcs[1]]) + int(instr.imm or 0)
                if not self._ssb_can_accept(t, addr, instr.size):
                    t.ssb_stalled = True
                    self._region_stats(t).ssb_stall_cycles += 1
                    break
            t.ssb_stalled = False

            consumed = self._fetch_one(t, instr)
            budget -= 1
            if not consumed:
                break
            if fetch_queue and fetch_queue[-1].taken:
                break  # at most one taken branch per threadlet per cycle
        return budget

    def _ssb_can_accept(self, t: Threadlet, addr: int, size: int) -> bool:
        budget = self.ssb.victim_capacity - self.ssb._victim_in_use
        sl = self.ssb.slice(t.slot)
        first = addr // sl.line_bytes
        last = (addr + size - 1) // sl.line_bytes
        for line_addr in range(first, last + 1):
            ok, use_victim = sl._can_take_line(line_addr, budget)
            if not ok:
                return False
            if use_victim:
                budget -= 1
        return True

    def _fetch_one(self, t: Threadlet, instr: Instruction) -> bool:
        """Functionally execute and enqueue one instruction for ``t``."""
        cycle = self.cycle
        stats = self.stats
        pi = PipelineInstr(self.seq, t.slot, t.pc, instr)
        self.seq += 1
        self._current_pi = pi
        self._last_writers = []

        t.note_register_reads(instr._reads)

        if instr.opcode is Opcode.HALT:
            t.fetch_done = True
            t.fetch_queue.append(pi)
            t.epoch_fetched += 1
            stats.fetched_instructions += 1
            return True

        view = self._view_for(t)
        try:
            result = _EXEC_DISPATCH[instr.opcode_index](instr, t.regs, view, t.pc)
        except ExecutionError as exc:
            t.faulted = str(exc)
            t.fetch_done = True
            return False
        t.note_register_writes(instr._writes)

        pi.mem_addr = result.mem_addr
        pi.mem_size = result.mem_size
        pi.taken = result.taken
        if instr.is_load:
            pi.mem_dep_writers = self._last_writers

        # Branch prediction accounting.
        if instr.is_branch:
            stats.branches += 1
            correct, target_known = self.predictor.predict_instruction(
                t.pc, instr, result.taken, result.next_pc, t.slot
            )
            if not correct:
                stats.branch_mispredicts += 1
                pi.mispredicted = True
                t.fetch_stall_branch = pi
            elif result.taken and not target_known:
                stats.btb_misses += 1
                t.fetch_stall_until = cycle + self.core.btb_miss_penalty

        t.fetch_queue.append(pi)
        t.epoch_fetched += 1
        stats.fetched_instructions += 1
        t.pc = result.next_pc

        # LoopFrog hint semantics (section 3.1).
        if instr.is_hint:
            self._handle_hint(t, instr)
        return True

    def _view_for(self, t: Threadlet):
        cached = t.mem_view
        if cached is not None and cached[0] is t.is_arch:
            return cached[1]
        view = (_ArchMemView if t.is_arch else _SpecMemView)(self, t)
        t.mem_view = (t.is_arch, view)
        return view

    # ------------------------------------------------------------------
    # Hints: detach / reattach / sync
    # ------------------------------------------------------------------

    def _handle_hint(self, t: Threadlet, instr: Instruction) -> None:
        region = instr.region_index
        op = instr.opcode

        if op is Opcode.DETACH:
            if t.region is None and t.stat_region is None:
                t.stat_region = instr.region
            if t.region is not None:
                return  # already detached: ignore nested regions
            if not self.lf.enabled:
                return
            t.detach_seq += 1
            self._try_spawn(t, region, instr.region)
            return

        if op is Opcode.REATTACH:
            if t.region != region or t.successor is None:
                return  # not detached on this region: plain nop
            if t.skip_reattaches > 0:
                t.skip_reattaches -= 1
                self._region_stats(t).packed_iterations += 1
                return
            self._halt_epoch(t)
            return

        if op is Opcode.SYNC:
            if t.stat_region == instr.region and t.region is None:
                t.stat_region = None
            if t.region == region:
                # Successors were misspeculation: recycle the whole chain.
                self._squash_chain(t, reason="sync")
                t.region = None
                t.region_label = None
                t.stat_region = None
            return

    def _try_spawn(self, t: Threadlet, region: int, region_label: str) -> None:
        if t.successor is not None or self.order[-1] is not t:
            return
        state = self.packer.region(region)
        # Observe each *new* detach exactly once: keyed by (epoch, detach
        # sequence) so squash-restarts do not re-train the predictors but a
        # spawn-starved threadlet flowing into the next iteration does.
        key = (t.epoch, t.detach_seq)
        if key > state.last_observed_key:
            iterations = max(1, state.last_factor)
            state.observe_detach(dict(t.regs), iterations)
            state.last_observed_key = key
            state.last_factor = 1  # until a packed spawn says otherwise

        free = next(
            (x for x in self.threadlets if x.state is ThreadletState.FREE), None
        )
        if free is None:
            return

        decision = state.decide(self.core.rob_size)
        regs = dict(t.regs)
        if decision.factor > 1:
            regs.update(decision.predicted_regs)
            t.skip_reattaches = decision.factor - 1
            t.packed_factor = decision.factor
            self.stats.packing_factor_sum += decision.factor
            self.stats.packing_events += 1
            self.stats.max_packing_factor = max(
                self.stats.max_packing_factor, decision.factor
            )
            self._region_stats(t, region_label).packing_detaches += 1
        else:
            t.packed_factor = 1
        state.last_factor = decision.factor

        free.activate(
            epoch=t.epoch + 1,
            regs=regs,
            pc=region,
            rename=dict(t.rename),
            region=region,
            region_label=region_label,
        )
        free.packed_prediction = dict(decision.predicted_regs)
        free.predecessor = t
        # Duplicate the spawner's RAS so speculative returns predict well.
        self.predictor.ras[free.slot] = self.predictor.ras[t.slot].copy()
        t.successor = free
        t.region = region
        t.region_label = region_label
        self.order.append(free)
        self.stats.threadlets_spawned += 1
        self._region_stats(t, region_label).epochs_spawned += 1
        if self._tracer is not None:
            self._tracer.event(
                "epoch.spawn", cycle=self.cycle, slot=free.slot,
                epoch=free.epoch, region=region_label,
            )

    def _halt_epoch(self, t: Threadlet) -> None:
        t.state = ThreadletState.HALTED
        t.halt_cycle = self.cycle
        if t.region is not None:
            # Train the epoch-size EMA on the per-iteration size, and feed
            # the IV detector the registers this epoch consumed.
            per_iteration = max(1, t.epoch_fetched // max(1, t.packed_factor))
            state = self.packer.region(t.region)
            state.observe_epoch_size(per_iteration)
            state.note_consumed(t.regs_read_before_write)
        if t.packed_factor > 1 and t.successor is not None:
            self._verify_packing(t)
        if t.successor is not None and t.successor.active:
            self._reconcile_successor_regs(t)

    def _reconcile_successor_regs(self, t: Threadlet) -> None:
        """Forward the spawner's final epoch state into dead successor regs.

        The successor's register file is a snapshot taken at the spawn
        point; anything the spawner wrote *later* in its epoch is missing
        from it.  Registers the successor consumed are validated elsewhere
        (packing verification, conflict detection), but a register the
        successor neither read nor wrote would keep its stale snapshot
        value all the way through the final merge — visible when an engine
        is resumed mid-program from a sampling checkpoint and the last
        epoch's scratch registers become the final architectural state.
        Copying values is timing-neutral: dependencies are tracked through
        the rename map, never through the value file.
        """
        s = t.successor
        for reg, actual in t.regs.items():
            if s.start_regs.get(reg) == actual:
                continue
            if reg in s.regs_read_before_write or reg in s.regs_written:
                continue
            s.regs[reg] = actual
            s.start_regs[reg] = actual
            if s.checkpoint is not None:
                s.checkpoint.regs[reg] = actual

    def _verify_packing(self, t: Threadlet) -> None:
        """Check the successor's predicted start state (section 4.3)."""
        s = t.successor
        assert s is not None
        consumed_mismatch = any(
            s.start_regs.get(r) != t.regs.get(r)
            for r in s.regs_read_before_write
            if r in s.start_regs
        )
        if consumed_mismatch:
            assert s.checkpoint is not None
            s.checkpoint.regs = dict(t.regs)
            self.packer.region(t.region).note_misprediction()
            self._squash_restart(s, reason="packing")
            return
        for reg in s.packed_prediction:
            actual = t.regs.get(reg)
            if actual is None or s.start_regs.get(reg) == actual:
                continue
            # Safe update: the stale value has not been consumed.
            if reg not in s.regs_written:
                s.regs[reg] = actual
            s.start_regs[reg] = actual
            if s.checkpoint is not None:
                s.checkpoint.regs[reg] = actual

    # ------------------------------------------------------------------
    # Squashing
    # ------------------------------------------------------------------

    def _squash_chain(self, t: Threadlet, reason: str) -> None:
        """Recycle all successors of ``t`` (no restart): sync semantics."""
        victim = t.successor
        count = 0
        while victim is not None:
            nxt = victim.successor
            self._drop_threadlet(victim, reason)
            victim.recycle()
            count += 1
            victim = nxt
        t.successor = None
        if count:
            self._refresh_order()

    def _squash_restart(self, victim: Threadlet, reason: str) -> None:
        """Squash ``victim`` and everything younger; restart only ``victim``
        (section 4: "only the oldest one is restarted")."""
        if not victim.active:
            return
        chain = victim.successor
        while chain is not None:
            nxt = chain.successor
            self._drop_threadlet(chain, reason)
            chain.recycle()
            chain = nxt
        self._drop_threadlet(victim, reason)
        victim.restart_from_checkpoint()
        victim.successor = None
        self._refresh_order()

    def _drop_threadlet(self, t: Threadlet, reason: str) -> None:
        """Release a threadlet's pipeline and speculative state."""
        if self._tracer is not None:
            self._tracer.event(
                "epoch.squash", cycle=self.cycle, slot=t.slot,
                epoch=t.epoch, reason=reason,
            )
        region = self._region_stats(t)
        if reason != "end":
            self.stats.threadlets_squashed += 1
            region.epochs_squashed += 1
        self.stats.failed_spec_instructions += t.epoch_committed
        if reason == "conflict":
            self.stats.squash_conflicts += 1
            region.squash_conflicts += 1
        elif reason == "sync":
            self.stats.squash_syncs += 1
            region.squash_syncs += 1
        elif reason == "packing":
            self.stats.squash_packing += 1
            region.squash_packing += 1
        elif reason == "overflow":
            self.stats.squash_overflow += 1

        for pi in t.inflight:
            self._release_entry(pi, committed=False)
            pi.squashed = True
        for pi in t.fetch_queue:
            pi.squashed = True
        t.inflight.clear()
        t.fetch_queue.clear()
        self.ssb.squash(t.slot)
        self.conflicts.clear(t.slot)
        t.store_writers.clear()

    def _refresh_order(self) -> None:
        self.order = [t for t in self.order if t.active]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        core = self.core
        budget = core.dispatch_width
        rob_size = core.rob_size
        iq_size = core.iq_size
        lq_size = core.lq_size
        sq_size = core.sq_size
        # Dispatch never mutates ``order``; iterate it directly.
        for t in self.order:
            fetch_queue = t.fetch_queue
            while budget > 0 and fetch_queue:
                pi = fetch_queue[0]
                if self.rob_used >= rob_size:
                    return
                if self.iq_used >= iq_size:
                    return
                if pi.is_load and self.lq_used >= lq_size:
                    break
                if pi.is_store and self.sq_used >= sq_size:
                    break
                if pi.instr.dest is not None:
                    if pi.dest_is_fp:
                        if self.fp_regs_used >= core.fp_phys_regs:
                            return
                    elif self.int_regs_used >= core.int_phys_regs:
                        return
                fetch_queue.popleft()
                self._dispatch_one(t, pi)
                budget -= 1

    def _dispatch_one(self, t: Threadlet, pi: PipelineInstr) -> None:
        self.rob_used += 1
        self.iq_used += 1
        if pi.is_load:
            self.lq_used += 1
        if pi.is_store:
            self.sq_used += 1
        instr = pi.instr
        if instr.dest is not None:
            if pi.dest_is_fp:
                self.fp_regs_used += 1
            else:
                self.int_regs_used += 1

        deps: List[PipelineInstr] = []
        cycle = self.cycle
        rename = t.rename
        for reg in instr._reads:
            producer = rename.get(reg)
            if producer is not None and not producer.squashed and not producer.done(cycle):
                deps.append(producer)
        if pi.is_load:
            # Store->load forwarding: wait for the producing store.  The
            # granule map is updated at fetch, which runs ahead of dispatch,
            # so only stores *older in program order* are real producers.
            g = self.lf.granule_bytes
            seq = pi.seq
            store_writers = t.store_writers
            for granule in range(
                pi.mem_addr // g, (pi.mem_addr + pi.mem_size - 1) // g + 1
            ):
                writer = store_writers.get(granule)
                if (
                    writer is not None
                    and writer.seq < seq
                    and not writer.squashed
                    and not writer.done(cycle)
                ):
                    deps.append(writer)
            for writer in pi.mem_dep_writers:
                if (
                    writer is not None
                    and writer.seq < seq
                    and not writer.squashed
                    and not writer.done(cycle)
                ):
                    deps.append(writer)

        if deps:
            unique_deps = []
            seen: Set[int] = set()
            for d in deps:
                if id(d) not in seen:
                    seen.add(id(d))
                    unique_deps.append(d)
            pi.num_pending = len(unique_deps)
            for d in unique_deps:
                d.consumers.append(pi)

        for reg in instr._writes:
            rename[reg] = pi

        pi.dispatched = True
        t.inflight.append(pi)
        self.stats.dispatched_instructions += 1
        if pi.num_pending == 0:
            heapq.heappush(self.ready, (pi.seq, pi))

    # ------------------------------------------------------------------
    # Issue / completion
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        ready = self.ready
        if not ready:
            return
        budget = self.core.issue_width
        ports = self._fu_ports_template[:]
        retry: List[Tuple[int, PipelineInstr]] = []
        cycle = self.cycle
        heappop = heapq.heappop
        while budget > 0 and ready:
            seq, pi = heappop(ready)
            if pi.squashed or pi.issued:
                continue
            ci = pi.op_index
            if ports[ci] <= 0:
                retry.append((seq, pi))
                continue
            ports[ci] -= 1
            budget -= 1
            self._issue_one(pi, cycle)
        for item in retry:
            heapq.heappush(ready, item)

    def _issue_one(self, pi: PipelineInstr, cycle: int) -> None:
        pi.issued = True
        self.iq_used -= 1
        self.stats.issued_instructions += 1
        done_at = cycle + self._fu_latency_by_index[pi.op_index]

        if pi.is_load:
            fill = self.hierarchy.access_data(
                pi.mem_addr, cycle, is_write=False, pc=pi.pc
            )
            t = self.threadlets[pi.slot]
            if self.lf.enabled and not t.is_arch:
                done_at = max(cycle + self.lf.ssb_read_latency, fill)
            else:
                done_at = max(done_at, fill)
        elif pi.is_store:
            t = self.threadlets[pi.slot]
            if self.lf.enabled and not t.is_arch:
                done_at = cycle + self.lf.ssb_write_latency
            else:
                # Architectural stores go to the L1D write path.
                self.hierarchy.access_data(pi.mem_addr, cycle, is_write=True, pc=pi.pc)
                done_at = cycle + 1

        pi.ready_cycle = done_at
        heapq.heappush(self.completions, (done_at, pi.seq, pi))

    def _process_completions(self) -> None:
        cycle = self.cycle
        completions = self.completions
        ready = self.ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        while completions and completions[0][0] <= cycle:
            _, _, pi = heappop(completions)
            if pi.squashed:
                continue
            for consumer in pi.consumers:
                if consumer.squashed or consumer.issued:
                    continue
                consumer.num_pending -= 1
                if consumer.num_pending <= 0 and consumer.dispatched:
                    heappush(ready, (consumer.seq, consumer))

    # ------------------------------------------------------------------
    # Commit (instruction level and threadlet level)
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        budget = self.core.commit_width
        cycle = self.cycle
        stats = self.stats
        # Safe to iterate directly: order is only mutated on the _finish
        # path, which returns out of the loop immediately.
        for t in self.order:
            inflight = t.inflight
            while budget > 0 and inflight:
                pi = inflight[0]
                if not (pi.issued and pi.ready_cycle is not None
                        and pi.ready_cycle <= cycle):
                    break
                inflight.popleft()
                self._release_entry(pi, committed=True)
                t.epoch_committed += 1
                budget -= 1
                if t.is_arch:
                    stats.arch_instructions += 1
                    region = t.stat_region
                    if region is not None:
                        stats.region(region).arch_instructions += 1
                    if pi.instr.opcode is Opcode.HALT:
                        self._finish()
                        return
                else:
                    t.committed_while_spec += 1
            if t.faulted and t.is_arch and not t.inflight and t.fetch_done:
                raise ExecutionError(
                    f"{self.program.name}: architectural fault: {t.faulted}"
                )

    def _release_entry(self, pi: PipelineInstr, committed: bool) -> None:
        self.rob_used -= 1
        if not pi.issued:
            self.iq_used -= 1
        if pi.is_load:
            self.lq_used -= 1
        if pi.is_store:
            self.sq_used -= 1
        if pi.instr.dest is not None:
            if pi.dest_is_fp:
                self.fp_regs_used -= 1
            else:
                self.int_regs_used -= 1
        pi.committed = committed

    def _threadlet_commit(self) -> None:
        """Advance S_arch when the oldest threadlet finishes its epoch."""
        while True:
            t = self.order[0]
            # The threadlet that leaves the parallel region runs to the end
            # of the program; it may commit HALT to itself while still
            # speculative, so detect program end when it drains as arch.
            if (
                t.fetch_done
                and t.faulted is None
                and not t.inflight
                and not t.fetch_queue
            ):
                self._finish()
                return
            if (
                t.state is not ThreadletState.HALTED
                or t.inflight
                or t.fetch_queue
            ):
                return
            # Small delay for in-progress conflict checks (section 4.2).
            if self.cycle < t.halt_cycle + self.lf.conflict_check_latency:
                return
            successor = t.successor
            if successor is None:
                return
            self._region_stats(t).epochs_committed += 1
            self.stats.threadlets_committed += 1
            if self._tracer is not None:
                self._tracer.event(
                    "epoch.commit", cycle=self.cycle, slot=t.slot,
                    epoch=t.epoch,
                )
            # Retire the old architectural threadlet's context.
            self.conflicts.clear(t.slot)
            self.ssb.squash(t.slot)  # slice is empty (arch wrote directly)
            t.recycle()
            self.order.pop(0)
            # The successor becomes architectural: merge its slice (atomic
            # commit, section 4.1.4) and expose its lines to the cache.
            new_arch = self.order[0]
            new_arch.is_arch = True
            self.stats.spec_committed_instructions += new_arch.committed_while_spec
            flushed = self._flush_slice_to_caches(new_arch.slot)
            successor.predecessor = None

    def _flush_slice_to_caches(self, slot: int) -> int:
        sl = self.ssb.slice(slot)
        line_addrs = {
            addr // self.machine.memory.line_size for addr in sl.data
        }
        flushed = self.ssb.commit(slot)
        for line in line_addrs:
            self.hierarchy.l1d.insert(line)
        return flushed

    def _finish(self) -> None:
        self.finished = True
        # Outstanding speculative threadlets die with the program.
        for t in self.order[1:]:
            self._drop_threadlet(t, reason="end")
            t.recycle()
        self.order = self.order[:1]

    # ------------------------------------------------------------------
    # Per-cycle statistics
    # ------------------------------------------------------------------

    def _region_stats(self, t: Threadlet, label: Optional[str] = None):
        name = label or t.stat_region or t.region_label or "<none>"
        return self.stats.region(name)

    def _per_cycle_stats(self) -> None:
        # ``order`` holds exactly the active (RUNNING/HALTED) threadlets:
        # spawn appends, and every recycle is followed by a _refresh_order
        # or an order.pop — so its length IS the active count.
        stats = self.stats
        active = len(self.order)
        cycles = stats.active_threadlet_cycles
        cycles[active] = cycles.get(active, 0) + 1
        region = self.order[0].stat_region
        if region is not None:
            stats.region(region).arch_cycles += 1

    # Current PipelineInstr whose functional execution is in progress; used
    # by the memory views to attribute SSB writes to instructions.
    _current_pi: Optional[PipelineInstr] = None


# ---------------------------------------------------------------------------
# Metrics catalog for the core pipeline (SimStats stays the storage; the
# registry is the documented observation schema — see repro.obs.metrics).
# ---------------------------------------------------------------------------

register(
    MetricSpec("uarch.core.cycles", COUNTER, "uarch.core",
               "Simulated cycles to program completion",
               unit="cycles", source="cycles"),
    MetricSpec("uarch.core.arch_instructions", COUNTER, "uarch.core",
               "Instructions committed by the architectural threadlet",
               unit="instructions", source="arch_instructions"),
    MetricSpec("uarch.core.spec_committed_instructions", COUNTER,
               "uarch.core",
               "Instructions committed while speculative whose threadlet "
               "later committed",
               unit="instructions", source="spec_committed_instructions"),
    MetricSpec("uarch.core.failed_spec_instructions", COUNTER, "uarch.core",
               "Instructions committed to threadlets that were squashed",
               unit="instructions", source="failed_spec_instructions"),
    MetricSpec("uarch.core.fetched_instructions", COUNTER, "uarch.core",
               "Instructions fetched (all threadlets, all paths)",
               unit="instructions", source="fetched_instructions"),
    MetricSpec("uarch.core.dispatched_instructions", COUNTER, "uarch.core",
               "Instructions allocated into the shared back end",
               unit="instructions", source="dispatched_instructions"),
    MetricSpec("uarch.core.issued_instructions", COUNTER, "uarch.core",
               "Instructions issued to functional units",
               unit="instructions", source="issued_instructions"),
    MetricSpec("uarch.core.branches", COUNTER, "uarch.core",
               "Conditional and indirect branches fetched",
               unit="instructions", source="branches"),
    MetricSpec("uarch.core.branch_mispredicts", COUNTER, "uarch.core",
               "Direction or target mispredictions",
               unit="instructions", source="branch_mispredicts"),
    MetricSpec("uarch.core.btb_misses", COUNTER, "uarch.core",
               "Taken branches whose target was unknown to the BTB",
               unit="instructions", source="btb_misses"),
    MetricSpec("uarch.core.threadlets_spawned", COUNTER, "uarch.core",
               "Speculative threadlet epochs spawned at detach hints",
               unit="epochs", source="threadlets_spawned"),
    MetricSpec("uarch.core.threadlets_committed", COUNTER, "uarch.core",
               "Epochs that became architectural and merged their slice",
               unit="epochs", source="threadlets_committed"),
    MetricSpec("uarch.core.threadlets_squashed", COUNTER, "uarch.core",
               "Epochs squashed for any reason",
               unit="epochs", source="threadlets_squashed"),
    MetricSpec("uarch.core.active_threadlets", HISTOGRAM, "uarch.core",
               "Cycles with exactly k threadlets active (figure 7)",
               unit="cycles", source="active_threadlet_cycles"),
    MetricSpec("uarch.core.ipc", GAUGE, "uarch.core",
               "Architectural instructions per cycle",
               derive=lambda s: s.ipc),
    MetricSpec("uarch.core.total_committed_ipc", GAUGE, "uarch.core",
               "All commit activity per cycle (arch + spec + failed)",
               derive=lambda s: s.total_committed_ipc),
    MetricSpec("uarch.core.branch_mpki", GAUGE, "uarch.core",
               "Branch mispredictions per 1000 architectural instructions",
               derive=lambda s: s.branch_mpki),
)
